"""Integration tests for the SoC-level simulation."""

import random

import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError
from repro.interconnects.axi_icrt import AxiIcRtInterconnect
from repro.interconnects.bluetree import BlueTreeInterconnect
from repro.memory.controller import MemoryController
from repro.memory.dram import DramDevice, FixedLatencyDevice
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def simple_clients(n, period=100, wcet=2):
    return [
        TrafficGenerator(
            c, TaskSet([PeriodicTask(period=period, wcet=wcet, name=f"t{c}", client_id=c)])
        )
        for c in range(n)
    ]


class TestWiring:
    def test_rejects_duplicate_clients(self):
        clients = simple_clients(2)
        clients[1].client_id = 0
        with pytest.raises(ConfigurationError):
            SoCSimulation(clients, BlueScaleInterconnect(4))

    def test_rejects_client_beyond_interconnect(self):
        with pytest.raises(ConfigurationError):
            SoCSimulation(simple_clients(5), BlueScaleInterconnect(4))

    def test_rejects_empty_clients(self):
        with pytest.raises(ConfigurationError):
            SoCSimulation([], BlueScaleInterconnect(4))

    def test_rejects_bad_horizon(self):
        sim = SoCSimulation(simple_clients(4), BlueScaleInterconnect(4))
        with pytest.raises(ConfigurationError):
            sim.run(0)


class TestConservationAndCompletion:
    def test_light_load_all_requests_complete(self):
        sim = SoCSimulation(simple_clients(4), BlueScaleInterconnect(4))
        result = sim.run(1000, drain=200)
        assert result.requests_released > 0
        assert result.requests_completed == result.requests_released
        assert result.requests_in_flight == 0
        assert result.requests_dropped == 0

    def test_conservation_under_load_with_short_drain(self):
        """Even when the drain window leaves work in flight, the ledger
        balances (the run() method raises otherwise)."""
        clients = simple_clients(4, period=10, wcet=4)  # heavy
        sim = SoCSimulation(clients, BlueTreeInterconnect(4, fifo_capacity=2))
        result = sim.run(500, drain=0)
        assert (
            result.requests_completed
            + result.requests_dropped
            + result.requests_in_flight
            == result.requests_released
        )

    def test_no_misses_on_trivially_light_load(self):
        sim = SoCSimulation(
            simple_clients(4, period=500, wcet=1), BlueScaleInterconnect(4)
        )
        result = sim.run(5000)
        assert result.deadline_miss_ratio == 0.0
        assert result.success

    def test_overload_produces_misses(self):
        # four clients each demanding 60% of one shared slot stream
        clients = simple_clients(4, period=10, wcet=6)  # total U = 2.4
        sim = SoCSimulation(clients, BlueScaleInterconnect(4))
        result = sim.run(2000, drain=500)
        assert result.deadline_miss_ratio > 0.2
        assert not result.success


class TestDeterminism:
    def build(self, seed):
        rng = random.Random(seed)
        tasksets = generate_client_tasksets(rng, 16, 2, 0.75)
        interconnect = BlueScaleInterconnect(16)
        interconnect.configure(tasksets)
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        return SoCSimulation(clients, interconnect)

    def test_same_seed_same_results(self):
        a = self.build(11).run(3000)
        b = self.build(11).run(3000)
        assert a.requests_completed == b.requests_completed
        assert a.recorder.response_times == b.recorder.response_times
        assert a.recorder.blocking_times == b.recorder.blocking_times

    def test_different_seed_differs(self):
        a = self.build(11).run(3000)
        b = self.build(12).run(3000)
        assert a.recorder.response_times != b.recorder.response_times


class TestAlternativeProviders:
    def test_dram_backed_controller(self):
        """The full DRAM model composes with any interconnect."""
        controller = MemoryController(DramDevice(), queue_capacity=8)
        sim = SoCSimulation(
            simple_clients(4, period=400, wcet=4),
            AxiIcRtInterconnect(4),
            controller=controller,
        )
        result = sim.run(4000, drain=2000)
        assert result.requests_completed == result.requests_released
        device = controller.device
        assert device.total_accesses == result.requests_completed
        # sequential bursts give row-buffer hits
        assert device.row_hit_ratio > 0.5

    def test_slow_fixed_latency_device_stretches_responses(self):
        fast = SoCSimulation(
            simple_clients(4, period=200, wcet=1),
            BlueScaleInterconnect(4),
            controller=MemoryController(FixedLatencyDevice(1), queue_capacity=4),
        ).run(2000)
        slow = SoCSimulation(
            simple_clients(4, period=200, wcet=1),
            BlueScaleInterconnect(4),
            controller=MemoryController(FixedLatencyDevice(20), queue_capacity=4),
        ).run(2000)
        assert slow.response_summary().mean > fast.response_summary().mean


class TestWarmup:
    def test_warmup_excludes_transient_from_stats(self):
        """The synchronous start produces a latency transient; with a
        warmup window the recorded sample is smaller but conservation
        still holds over the whole run."""
        full = SoCSimulation(
            simple_clients(4, period=50, wcet=2), BlueScaleInterconnect(4)
        ).run(2_000, drain=500)
        warm = SoCSimulation(
            simple_clients(4, period=50, wcet=2), BlueScaleInterconnect(4)
        ).run(2_000, drain=500, warmup=500)
        assert warm.recorder.completed < full.recorder.completed
        assert warm.requests_completed == full.requests_completed
        assert (
            warm.requests_completed
            + warm.requests_dropped
            + warm.requests_in_flight
            == warm.requests_released
        )

    def test_warmup_validation(self):
        sim = SoCSimulation(simple_clients(4), BlueScaleInterconnect(4))
        with pytest.raises(ConfigurationError):
            sim.run(100, warmup=100)
        with pytest.raises(ConfigurationError):
            sim.run(100, warmup=-1)


class TestWriteTraffic:
    def test_writes_pay_the_dram_penalty(self):
        """write_ratio=1 traffic takes longer end to end than pure reads
        on the DRAM device (write recovery penalty)."""

        def run(write_ratio):
            import random

            clients = [
                TrafficGenerator(
                    c,
                    TaskSet(
                        [PeriodicTask(period=200, wcet=2, name="t", client_id=c)]
                    ),
                    rng=random.Random(c),
                    write_ratio=write_ratio,
                )
                for c in range(4)
            ]
            controller = MemoryController(DramDevice(), queue_capacity=8)
            sim = SoCSimulation(
                clients, BlueScaleInterconnect(4), controller=controller
            )
            return sim.run(3_000, drain=2_000).response_summary().mean

        assert run(1.0) > run(0.0)


class TestTrialResultApi:
    def test_job_outcomes_cover_all_clients(self):
        sim = SoCSimulation(simple_clients(4), BlueScaleInterconnect(4))
        result = sim.run(1000)
        assert sorted(result.job_outcomes) == [0, 1, 2, 3]
        assert result.jobs_judged > 0
        assert result.jobs_missed == 0

    def test_mean_blocking_zero_without_samples(self):
        sim = SoCSimulation(
            simple_clients(1, period=10_000, wcet=1), BlueScaleInterconnect(4)
        )
        result = sim.run(5)
        assert result.mean_blocking == 0.0
