"""Cross-module integration scenarios spanning the extensions."""

import random

from repro.analysis.response_time import holistic_response_bounds
from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.core.multi_memory import MultiMemorySystem, run_multi_memory_trial
from repro.sim.timeline import Timeline, format_timeline
from repro.sim.trace import TraceReplayClient, split_by_client, trace_from_clients
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.workloads.avionics import assign_partitions


class TestTraceReplayOnMultiMemory:
    def test_replayed_trace_drives_two_channels(self):
        """A trace captured on a single-tree system replays through the
        dual-channel system, exercising both trees."""
        rng = random.Random(14)
        tasksets = generate_client_tasksets(rng, 8, 4, 0.7)
        generators = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        capture = BlueScaleInterconnect(8, buffer_capacity=2)
        SoCSimulation(generators, capture).run(3_000, drain=2_000)
        per_client = split_by_client(trace_from_clients(generators))

        system = MultiMemorySystem(8, n_channels=2)
        system.configure(tasksets)
        replay_clients = [
            TraceReplayClient(c, recs) for c, recs in per_client.items()
        ]
        result = run_multi_memory_trial(replay_clients, system, 3_000)
        assert result.requests_completed > 0
        assert all(count > 0 for count in result.per_channel_completed)
        assert (
            result.requests_completed
            + result.requests_dropped
            + result.requests_in_flight
            == result.requests_released
        )


class TestTimelineExplainsWcrtBound:
    def test_slowest_request_stays_within_its_task_bound(self):
        """The timeline's slowest journey is still within the holistic
        WCRT bound of its task — the two tools agree."""
        rng = random.Random(23)
        tasksets = generate_client_tasksets(rng, 16, 2, 0.55)
        interconnect = BlueScaleInterconnect(16, buffer_capacity=2)
        composition = interconnect.configure(tasksets)
        if not composition.schedulable:
            return  # seed-dependent; the property only binds when composed
        timeline = Timeline(interconnect)
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        SoCSimulation(clients, interconnect).run(8_000, drain=4_000)
        bounds = holistic_response_bounds(tasksets, composition)
        slowest = timeline.slowest(1)[0]
        # find the job this request belonged to via its client
        client = clients[slowest.client_id]
        job = next(
            (
                j
                for j in client.jobs
                if j.release == slowest.release and j.finished
            ),
            None,
        )
        if job is None:
            return
        observed = job.last_completion - job.release
        assert observed <= bounds[slowest.client_id].bound_for(job.task_name)
        # the rendering carries the hop structure for diagnosis
        assert "SE(0, 0)" in format_timeline(slowest)


class TestAvionicsOnMultiMemory:
    def test_partitions_with_dedicated_channels(self):
        """Four avionics partitions across two memory channels: both
        compose and nothing misses."""
        assignment = assign_partitions(4)
        system = MultiMemorySystem(4, n_channels=2)
        system.configure(assignment)
        assert system.schedulable
        clients = [TrafficGenerator(c, ts) for c, ts in assignment.items()]
        result = run_multi_memory_trial(clients, system, 8_000, drain=4_000)
        assert result.deadline_miss_ratio == 0.0
