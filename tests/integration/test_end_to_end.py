"""End-to-end integration tests: the analysis predicts the simulator.

The headline property of the reproduction: when the interface-selection
composition reports *schedulable*, the cycle-level BlueScale simulation
meets every deadline; and across designs, the orderings the paper's
figures report hold on fixed seeds.
"""

import random

import pytest

from repro.analysis.composition import compose
from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.experiments.factory import build_interconnect
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.topology import quadtree


def run_bluescale(tasksets, n_clients, horizon=20_000):
    interconnect = BlueScaleInterconnect(n_clients, buffer_capacity=2)
    composition = interconnect.configure(tasksets)
    clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
    result = SoCSimulation(clients, interconnect).run(horizon, drain=6_000)
    return composition, result


class TestAnalysisPredictsSimulation:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_schedulable_composition_has_no_misses_16(self, seed):
        rng = random.Random(seed)
        tasksets = generate_client_tasksets(rng, 16, 3, 0.75, period_min=100)
        composition, result = run_bluescale(tasksets, 16)
        if composition.schedulable:
            assert result.deadline_miss_ratio == 0.0, (
                f"seed {seed}: analysis said schedulable but "
                f"{result.recorder.missed} requests missed"
            )

    def test_schedulable_composition_has_no_misses_64(self):
        # Composition inflates bandwidth at every level (integer (Pi,
        # Theta) granularity + analysis margins), so a 64-client system
        # is analytically schedulable at moderate utilization.
        rng = random.Random(101)
        tasksets = generate_client_tasksets(rng, 64, 2, 0.5, period_min=200)
        composition, result = run_bluescale(tasksets, 64, horizon=10_000)
        assert composition.schedulable
        assert result.deadline_miss_ratio == 0.0

    def test_unschedulable_workload_detected_before_simulation(self):
        """Overload is caught analytically (root bandwidth > 1)."""
        rng = random.Random(9)
        tasksets = generate_client_tasksets(rng, 16, 3, 3.0)
        composition = compose(quadtree(16), tasksets)
        assert not composition.schedulable


class TestCrossDesignOrdering:
    """Fig. 6's qualitative ordering on a fixed seed batch."""

    @pytest.fixture(scope="class")
    def results(self):
        outcomes = {}
        for name in ("BlueScale", "AXI-IC^RT", "BlueTree", "GSMTree-TDM"):
            misses, blockings = [], []
            for seed in (21, 22, 23):
                rng = random.Random(seed)
                tasksets = generate_client_tasksets(rng, 16, 3, 0.85)
                interconnect = build_interconnect(name, 16, tasksets)
                clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
                result = SoCSimulation(clients, interconnect).run(
                    15_000, drain=5_000
                )
                misses.append(result.deadline_miss_ratio)
                blockings.append(result.mean_blocking)
            outcomes[name] = (
                sum(misses) / len(misses),
                sum(blockings) / len(blockings),
            )
        return outcomes

    def test_bluescale_has_lowest_miss_ratio(self, results):
        blue_miss = results["BlueScale"][0]
        for name, (miss, _) in results.items():
            assert blue_miss <= miss, f"{name} beat BlueScale on misses"

    def test_bluescale_blocks_less_than_heuristic_designs(self, results):
        """Deadline-blind arbitration (BlueTree) accumulates more
        priority inversion than BlueScale's budgeted EDF.  (BlueScale
        vs AXI-IC^RT blocking is statistically close on arbitrary
        seeds; the Fig. 6 harness compares them at its default seeds.)"""
        blue_blocking = results["BlueScale"][1]
        assert blue_blocking <= results["BlueTree"][1]

    def test_demand_blind_tdm_worst_on_misses(self, results):
        tdm_miss = results["GSMTree-TDM"][0]
        assert tdm_miss >= results["BlueScale"][0]
        assert tdm_miss >= results["AXI-IC^RT"][0]


class TestWcrtBoundsHoldInSimulation:
    """The holistic WCRT analysis upper-bounds every simulated job."""

    @pytest.mark.parametrize("n_clients,utilization", [(16, 0.6), (64, 0.5)])
    def test_no_job_exceeds_its_bound(self, n_clients, utilization):
        from repro.analysis.response_time import holistic_response_bounds

        rng = random.Random(4)
        tasksets = generate_client_tasksets(rng, n_clients, 2, utilization)
        interconnect = BlueScaleInterconnect(n_clients, buffer_capacity=2)
        composition = interconnect.configure(tasksets)
        assert composition.schedulable
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        horizon = 20_000 if n_clients == 16 else 12_000
        SoCSimulation(clients, interconnect).run(horizon, drain=8_000)
        bounds = holistic_response_bounds(tasksets, composition)
        for client in clients:
            for job in client.jobs:
                if not (job.finished and job.dropped == 0):
                    continue
                observed = job.last_completion - job.release
                bound = bounds[client.client_id].bound_for(job.task_name)
                assert observed <= bound, (
                    f"client {client.client_id} task {job.task_name}: "
                    f"observed {observed} > bound {bound}"
                )


class TestScaleSensitivity:
    def test_bluetree_degrades_faster_than_bluescale(self):
        """Obs 4: the gap widens from 16 to 64 clients."""

        def miss_ratio(name, n_clients, seed=31):
            rng = random.Random(seed)
            tasksets = generate_client_tasksets(rng, n_clients, 3, 0.85)
            interconnect = build_interconnect(name, n_clients, tasksets)
            clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
            horizon = 12_000 if n_clients == 16 else 8_000
            return SoCSimulation(clients, interconnect).run(
                horizon, drain=4_000
            ).deadline_miss_ratio

        blue_gap = miss_ratio("BlueScale", 64) - miss_ratio("BlueScale", 16)
        tree_gap = miss_ratio("BlueTree", 64) - miss_ratio("BlueTree", 16)
        assert tree_gap > blue_gap
