"""Property-based integration tests across the whole stack."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.interconnects.axi_icrt import AxiIcRtInterconnect
from repro.interconnects.bluetree import BlueTreeInterconnect
from repro.interconnects.gsmtree import gsmtree_tdm
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def build_clients(seed: int, n_clients: int, utilization: float):
    rng = random.Random(seed)
    tasksets = generate_client_tasksets(
        rng, n_clients, 2, utilization, period_min=50, period_max=800
    )
    return tasksets, [TrafficGenerator(c, ts) for c, ts in tasksets.items()]


INTERCONNECT_FACTORIES = [
    lambda n: BlueScaleInterconnect(n, buffer_capacity=2),
    lambda n: AxiIcRtInterconnect(n),
    lambda n: BlueTreeInterconnect(n),
    lambda n: gsmtree_tdm(n),
]


class TestConservationProperty:
    @given(
        seed=st.integers(0, 10_000),
        n_clients=st.sampled_from([4, 8, 16]),
        utilization=st.floats(0.2, 1.4),
        factory_index=st.integers(0, len(INTERCONNECT_FACTORIES) - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_request_ledger_always_balances(
        self, seed, n_clients, utilization, factory_index
    ):
        """For any workload (including overload) on any interconnect,
        released == completed + dropped + in flight — the SoC simulator
        enforces it internally, this drives it across the input space."""
        tasksets, clients = build_clients(seed, n_clients, utilization)
        interconnect = INTERCONNECT_FACTORIES[factory_index](n_clients)
        result = SoCSimulation(clients, interconnect).run(800, drain=200)
        assert (
            result.requests_completed
            + result.requests_dropped
            + result.requests_in_flight
            == result.requests_released
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_all_metrics_well_formed(self, seed):
        tasksets, clients = build_clients(seed, 8, 0.7)
        interconnect = BlueScaleInterconnect(8, buffer_capacity=2)
        interconnect.configure(tasksets)
        result = SoCSimulation(clients, interconnect).run(1_000, drain=500)
        assert 0.0 <= result.deadline_miss_ratio <= 1.0
        summary = result.response_summary()
        if summary.count:
            assert summary.minimum >= 1  # at least one cycle of transport
        assert all(b >= 0 for b in result.recorder.blocking_times)


class TestResponsesBelongToIssuer:
    @given(seed=st.integers(0, 1_000))
    @settings(max_examples=10, deadline=None)
    def test_every_completion_returns_to_its_client(self, seed):
        rng = random.Random(seed)
        n_clients = 8
        tasksets = {
            c: TaskSet(
                [
                    PeriodicTask(
                        period=rng.randint(40, 300),
                        wcet=rng.randint(1, 4),
                        name=f"t{c}",
                        client_id=c,
                    )
                ]
            )
            for c in range(n_clients)
        }
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        interconnect = BlueScaleInterconnect(n_clients, buffer_capacity=2)
        simulation = SoCSimulation(clients, interconnect)
        simulation.run(600, drain=400)
        # each client's accounting is internally consistent
        for client in clients:
            completed_jobs = [job for job in client.jobs if job.finished]
            for job in completed_jobs:
                assert job.outstanding == 0
                assert job.task_name == f"t{client.client_id}"
