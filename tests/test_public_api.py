"""Public-API smoke tests: the documented entry points exist and the
error hierarchy behaves."""

import pytest

import repro
from repro import errors


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.campaigns
        import repro.clients
        import repro.core
        import repro.experiments
        import repro.hardware
        import repro.interconnects
        import repro.memory
        import repro.noc
        import repro.runtime
        import repro.service
        import repro.sim
        import repro.tasks
        import repro.workloads

        for module in (
            repro.analysis,
            repro.campaigns,
            repro.clients,
            repro.core,
            repro.experiments,
            repro.hardware,
            repro.interconnects,
            repro.memory,
            repro.noc,
            repro.runtime,
            repro.service,
            repro.sim,
            repro.tasks,
            repro.workloads,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module.__name__, name)

    def test_readme_quickstart_snippet_runs(self):
        """The code block in README.md works as written."""
        import random

        from repro import BlueScaleInterconnect, SoCSimulation
        from repro.clients import TrafficGenerator
        from repro.tasks import generate_client_tasksets

        tasksets = generate_client_tasksets(
            random.Random(0), n_clients=16, tasks_per_client=3,
            system_utilization=0.8,
        )
        interconnect = BlueScaleInterconnect(16, buffer_capacity=2)
        composition = interconnect.configure(tasksets)
        assert composition is not None
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        result = SoCSimulation(clients, interconnect).run(horizon=2_000)
        assert 0.0 <= result.deadline_miss_ratio <= 1.0


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "CapacityError",
            "InfeasibleError",
            "SimulationError",
            "ProtocolError",
        ):
            klass = getattr(errors, name)
            assert issubclass(klass, errors.ReproError)

    def test_single_except_clause_catches_everything(self):
        caught = []
        for klass in (
            errors.ConfigurationError,
            errors.CapacityError,
            errors.InfeasibleError,
        ):
            try:
                raise klass("boom")
            except errors.ReproError as exc:
                caught.append(type(exc))
        assert len(caught) == 3

    def test_repro_error_is_an_exception(self):
        with pytest.raises(Exception):
            raise errors.ReproError("base")
