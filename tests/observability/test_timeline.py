"""Unit tests for per-request timeline reconstruction and rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.observability.spans import Span
from repro.observability.timeline import (
    build_timeline,
    format_timeline,
    worst_blocking_rid,
)


def _journey(rid=5, client=1):
    """A complete inject-to-deliver span stream for one request."""
    mk = lambda site, kind, cycle, attrs=None: Span(
        rid=rid, client_id=client, site=site, kind=kind, cycle=cycle, attrs=attrs
    )
    return [
        mk(f"client:{client}", "inject", 2, {"release": 0}),
        mk("se:1:0", "enqueue", 2, {"port": 1, "occupancy": 3}),
        mk("se:1:0", "arbitration_win", 8, {"port": 1}),
        mk("se:0:0", "enqueue", 8, {"port": 0, "occupancy": 1}),
        mk("se:0:0", "arbitration_win", 9, {"port": 0}),
        mk("mc", "enqueue", 10, {"occupancy": 2}),
        mk("mc", "service_start", 14, {"cost": 3}),
        mk("mc", "service_end", 17),
        mk("response-path", "response_enqueue", 17, {"deliver_at": 20}),
        mk(f"client:{client}", "deliver", 20, {"blocking": 4}),
    ]


class TestBuildTimeline:
    def test_unknown_rid_rejected(self):
        with pytest.raises(ConfigurationError, match="request 99"):
            build_timeline(_journey(), 99)

    def test_filters_to_one_request(self):
        spans = _journey(rid=5) + _journey(rid=6)
        timeline = build_timeline(spans, 5)
        assert timeline.rid == 5
        assert all(s.rid == 5 for s in timeline.spans)

    def test_endpoints_and_latency(self):
        timeline = build_timeline(_journey(), 5)
        assert timeline.inject_cycle == 2
        assert timeline.deliver_cycle == 20
        assert timeline.latency == 18
        assert timeline.complete

    def test_partial_trace_has_no_latency(self):
        spans = [s for s in _journey() if s.kind != "inject"]
        timeline = build_timeline(spans, 5)
        assert timeline.inject_cycle is None
        assert timeline.latency is None
        assert not timeline.complete

    def test_out_of_order_stream_is_sorted_stably(self):
        spans = list(reversed(_journey()))
        timeline = build_timeline(spans, 5)
        assert [s.cycle for s in timeline.spans] == sorted(
            s.cycle for s in spans
        )


class TestHops:
    def test_hop_waits_per_site(self):
        hops = build_timeline(_journey(), 5).hops()
        assert [(h.site, h.wait_cycles) for h in hops] == [
            ("se:1:0", 6),
            ("se:0:0", 1),
            ("mc", 4),
        ]

    def test_ungranted_hop_reports_none(self):
        spans = [
            s
            for s in _journey()
            if not (s.site == "mc" and s.kind == "service_start")
        ]
        hops = build_timeline(spans, 5).hops()
        mc = [h for h in hops if h.site == "mc"][0]
        assert mc.grant_cycle is None
        assert mc.wait_cycles is None


class TestFormatTimeline:
    def test_render_contains_header_events_and_waits(self):
        rendered = format_timeline(build_timeline(_journey(), 5))
        assert "request 5 (client 1)" in rendered
        assert "latency 18 cycles" in rendered
        assert "service_start" in rendered
        assert "hop waits:" in rendered
        assert "se:1:0" in rendered

    def test_partial_trace_is_flagged(self):
        spans = [s for s in _journey() if s.kind != "inject"]
        rendered = format_timeline(build_timeline(spans, 5))
        assert "partial trace" in rendered


class TestWorstBlockingRid:
    def test_picks_max_blocking_deliver(self):
        spans = _journey(rid=1) + _journey(rid=2)
        spans.append(
            Span(
                rid=2,
                client_id=0,
                site="client:0",
                kind="deliver",
                cycle=50,
                attrs={"blocking": 99},
            )
        )
        assert worst_blocking_rid(spans) == 2

    def test_none_without_deliver_spans(self):
        spans = [s for s in _journey() if s.kind != "deliver"]
        assert worst_blocking_rid(spans) is None
