"""Differential tests: tracing is observation-only on both engine paths.

The claim under test is ISSUE acceptance-grade: a traced trial produces
bit-for-bit the same completion-trace digest as an untraced one, on both
the quiescence fast path and the cycle-by-cycle path — and a traced
fast-path run records the *same span stream* as a traced slow-path run.
Workloads here are real fig6/fig7 trials (re-derived through
``repro.experiments.trace_replay``), just at CI-sized horizons.
"""

import dataclasses

import pytest

from repro.experiments.fig6 import Fig6Config, build_fig6_specs, run_fig6_trial
from repro.experiments.fig7 import Fig7Config, build_fig7_specs, run_fig7_trial
from repro.experiments.trace_replay import trace_fig6_trial, trace_fig7_trial
from repro.observability import load_spans_jsonl, validate_spans_jsonl
from repro.runtime import SerialExecutor, make_executor

# one design per arbitration code path: SE tree, mux tree, AXI switch
DESIGNS = ("BlueScale", "GSMTree-TDM", "AXI-IC^RT")

FIG7_CONFIG = Fig7Config(trials=1, horizon=1_500, drain=800, utilizations=(0.8,))
FIG6_CONFIG = Fig6Config(trials=1, horizon=1_500, drain=800)


@pytest.mark.parametrize("name", DESIGNS)
def test_fig7_traced_equals_untraced_on_both_paths(name):
    digests = {}
    streams = {}
    for fast in (True, False):
        config = dataclasses.replace(FIG7_CONFIG, fast_path=fast)
        untraced = run_fig7_trial(build_fig7_specs(config, (name,))[0])
        traced = trace_fig7_trial(config, 0, name)
        # tracing did not perturb the simulation
        assert traced.trace_digest == untraced.tags[f"{name}/trace"]
        digests[fast] = traced.trace_digest
        streams[fast] = [
            span.as_dict() for span in traced.tracer.recorder.spans()
        ]
    # both engine paths agree — on results AND on the observed spans
    assert digests[True] == digests[False]
    assert streams[True] == streams[False]
    assert streams[True], "trial recorded no spans"


def test_fig6_traced_equals_untraced_on_both_paths():
    name = "BlueScale"
    digests = {}
    streams = {}
    for fast in (True, False):
        config = dataclasses.replace(FIG6_CONFIG, fast_path=fast)
        untraced = run_fig6_trial(build_fig6_specs(config, (name,))[0])
        traced = trace_fig6_trial(config, 0, name)
        assert traced.trace_digest == untraced.tags[f"{name}/trace"]
        digests[fast] = traced.trace_digest
        streams[fast] = [
            span.as_dict() for span in traced.tracer.recorder.spans()
        ]
    assert digests[True] == digests[False]
    assert streams[True] == streams[False]


def test_sampled_tracing_is_deterministic_across_paths():
    """Sampling counts issue attempts in rid order, so fast and slow
    runs must trace the identical request subset."""
    streams = {}
    for fast in (True, False):
        config = dataclasses.replace(FIG6_CONFIG, fast_path=fast)
        traced = trace_fig6_trial(config, 0, "BlueScale", sample_every=5)
        streams[fast] = [
            span.as_dict() for span in traced.tracer.recorder.spans()
        ]
    assert streams[True] == streams[False]
    full = trace_fig6_trial(FIG6_CONFIG, 0, "BlueScale")
    sampled_rids = {span["rid"] for span in streams[True]}
    full_rids = {span.rid for span in full.tracer.recorder.spans()}
    assert sampled_rids < full_rids


def test_observability_flag_through_trial_function():
    """``Fig6Config(observability=True)`` folds obs scalars into the
    metric set without changing any measured result."""
    plain = run_fig6_trial(build_fig6_specs(FIG6_CONFIG, ("BlueScale",))[0])
    config = dataclasses.replace(FIG6_CONFIG, observability=True)
    traced = run_fig6_trial(build_fig6_specs(config, ("BlueScale",))[0])
    assert traced.tags["BlueScale/trace"] == plain.tags["BlueScale/trace"]
    assert traced.scalars["BlueScale/blocking"] == plain.scalars["BlueScale/blocking"]
    assert traced.scalars["BlueScale/miss"] == plain.scalars["BlueScale/miss"]
    obs = {k: v for k, v in traced.scalars.items() if "/obs/" in k}
    assert obs["BlueScale/obs/requests/traced"] > 0
    assert obs["BlueScale/obs/spans_dropped"] >= 0.0
    assert all(isinstance(v, float) for v in obs.values())


def test_obs_scalars_survive_process_fanout():
    """Traced trials fan out over processes bit-identically to serial."""
    config = dataclasses.replace(
        FIG6_CONFIG, trials=2, horizon=800, drain=400, observability=True
    )
    specs = build_fig6_specs(config, ("BlueScale",))
    serial = SerialExecutor().map(run_fig6_trial, specs, None)
    parallel = make_executor(2).map(run_fig6_trial, specs, None)
    for left, right in zip(serial, parallel):
        assert left.metrics == right.metrics


def test_trace_cli_reconstructs_timeline_and_validates_export(tmp_path, capsys):
    from repro.cli import main

    export = tmp_path / "spans.jsonl"
    code = main(
        [
            "trace",
            "--figure",
            "fig6",
            "--horizon",
            "1500",
            "--export",
            str(export),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "spans recorded" in out
    assert "hop waits:" in out
    assert "deliver" in out
    spans = load_spans_jsonl(export)
    assert spans
    assert validate_spans_jsonl(export) == len(spans)
