"""Unit tests for span records, the ring recorder, and the JSONL schema."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.spans import (
    SPAN_KINDS,
    Span,
    TraceRecorder,
    load_spans_jsonl,
    spans_by_request,
    validate_spans_jsonl,
)


def span(rid=0, kind="enqueue", cycle=0, site="se:0:0", attrs=None):
    return Span(rid=rid, client_id=rid % 4, site=site, kind=kind, cycle=cycle, attrs=attrs)


class TestSpan:
    def test_wire_roundtrip_with_attrs(self):
        original = span(rid=7, kind="inject", cycle=12, attrs={"release": 3})
        assert Span.from_dict(original.as_dict()) == original

    def test_wire_roundtrip_without_attrs(self):
        original = span(rid=7, kind="service_end", cycle=12)
        record = original.as_dict()
        assert "attrs" not in record
        assert Span.from_dict(record) == original

    def test_wire_key_is_client_not_client_id(self):
        assert span().as_dict()["client"] == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            span(kind="teleport")

    def test_negative_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            span(cycle=-1)

    @pytest.mark.parametrize("missing", ["rid", "client", "site", "kind", "cycle"])
    def test_from_dict_missing_field(self, missing):
        record = span(cycle=5).as_dict()
        del record[missing]
        with pytest.raises(ConfigurationError, match=missing):
            Span.from_dict(record)

    def test_from_dict_rejects_bool_as_int(self):
        # bool is an int subclass; the schema must still reject it
        record = span().as_dict()
        record["cycle"] = True
        with pytest.raises(ConfigurationError):
            Span.from_dict(record)

    def test_from_dict_rejects_wrong_types(self):
        record = span().as_dict()
        record["site"] = 9
        with pytest.raises(ConfigurationError):
            Span.from_dict(record)

    def test_every_declared_kind_constructs(self):
        for kind in SPAN_KINDS:
            assert span(kind=kind).kind == kind


class TestTraceRecorder:
    def test_records_in_emission_order(self):
        recorder = TraceRecorder(capacity=8)
        for cycle in range(5):
            recorder.record(span(rid=1, cycle=cycle))
        assert [s.cycle for s in recorder.spans()] == list(range(5))
        assert recorder.emitted == 5
        assert recorder.dropped == 0

    def test_ring_keeps_newest_and_counts_dropped(self):
        recorder = TraceRecorder(capacity=4)
        for cycle in range(10):
            recorder.record(span(rid=1, cycle=cycle))
        assert len(recorder) == 4
        assert recorder.dropped == 6
        assert [s.cycle for s in recorder.spans()] == [6, 7, 8, 9]

    def test_per_request_filter_and_first_seen_order(self):
        recorder = TraceRecorder()
        for rid in (3, 1, 3, 2, 1):
            recorder.record(span(rid=rid, cycle=rid))
        assert [s.rid for s in recorder.spans(rid=3)] == [3, 3]
        assert recorder.request_ids() == [3, 1, 2]

    def test_clear_resets_counters(self):
        recorder = TraceRecorder(capacity=2)
        for cycle in range(5):
            recorder.record(span(cycle=cycle))
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.emitted == 0
        assert recorder.dropped == 0

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(capacity=0)


class TestJsonlExport:
    def _recorder(self):
        recorder = TraceRecorder()
        recorder.record(span(rid=1, kind="inject", cycle=0, site="client:1"))
        recorder.record(span(rid=1, kind="enqueue", cycle=0, attrs={"port": 2}))
        recorder.record(span(rid=2, kind="inject", cycle=1, site="client:2"))
        recorder.record(span(rid=1, kind="arbitration_win", cycle=4))
        return recorder

    def test_export_load_roundtrip(self, tmp_path):
        recorder = self._recorder()
        path = tmp_path / "spans.jsonl"
        assert recorder.export_jsonl(path) == 4
        assert load_spans_jsonl(path) == recorder.spans()

    def test_validate_counts_valid_spans(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        self._recorder().export_jsonl(path)
        assert validate_spans_jsonl(path) == 4

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        self._recorder().export_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert validate_spans_jsonl(path) == 4

    def test_malformed_json_names_the_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        self._recorder().export_jsonl(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(ConfigurationError, match=r":5"):
            validate_spans_jsonl(path)

    def test_unknown_kind_rejected_on_validate(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        record = span().as_dict()
        record["kind"] = "warp"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ConfigurationError, match="warp"):
            validate_spans_jsonl(path)

    def test_time_travel_rejected(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        lines = [
            json.dumps(span(rid=9, cycle=10).as_dict()),
            json.dumps(span(rid=9, kind="arbitration_win", cycle=4).as_dict()),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="goes back in time"):
            validate_spans_jsonl(path)

    def test_interleaved_requests_each_monotone_passes(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        lines = [
            json.dumps(span(rid=1, cycle=5).as_dict()),
            json.dumps(span(rid=2, cycle=0).as_dict()),
            json.dumps(span(rid=1, kind="arbitration_win", cycle=6).as_dict()),
        ]
        path.write_text("\n".join(lines) + "\n")
        assert validate_spans_jsonl(path) == 3


def test_spans_by_request_groups_in_order():
    spans = [span(rid=2, cycle=0), span(rid=1, cycle=1), span(rid=2, cycle=3)]
    grouped = spans_by_request(spans)
    assert list(grouped) == [2, 1]
    assert [s.cycle for s in grouped[2]] == [0, 3]
