"""Unit tests for the counter/histogram registry and cross-trial merge."""

import pytest

from repro.errors import ConfigurationError
from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    merge_registry_snapshots,
)


class TestInstruments:
    def test_counter_is_monotone(self):
        counter = Counter("events")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        with pytest.raises(ConfigurationError):
            counter.increment(-1)

    def test_histogram_summary_uses_nearest_rank(self):
        histogram = Histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        stats = histogram.summary()
        assert histogram.count == 100
        assert stats.mean == pytest.approx(50.5)
        assert stats.p95 == 95.0
        assert stats.p99 == 99.0
        assert stats.maximum == 100.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_cross_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError, match="already a counter"):
            registry.histogram("x")
        registry.histogram("y")
        with pytest.raises(ConfigurationError, match="already a histogram"):
            registry.counter("y")

    def test_snapshot_is_plain_json_dicts(self):
        registry = MetricsRegistry()
        registry.counter("hits").increment(3)
        registry.histogram("wait").observe(2.0)
        snapshot = registry.snapshot()
        assert snapshot == {
            "counters": {"hits": 3},
            "histograms": {"wait": [2.0]},
        }
        # the snapshot is detached from the live instruments
        registry.histogram("wait").observe(9.0)
        assert snapshot["histograms"]["wait"] == [2.0]

    def test_merge_snapshot_adds_and_concatenates(self):
        a = MetricsRegistry()
        a.counter("hits").increment(2)
        a.histogram("wait").observe(1.0)
        b = MetricsRegistry()
        b.counter("hits").increment(5)
        b.histogram("wait").observe(3.0)
        a.merge_snapshot(b.snapshot())
        assert a.counter("hits").value == 7
        assert a.histogram("wait").samples == [1.0, 3.0]

    def test_merge_rejects_malformed_sections(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.merge_snapshot({"counters": [1, 2]})
        with pytest.raises(ConfigurationError):
            registry.merge_snapshot({"histograms": "nope"})

    def test_summary_scalars_shape_and_prefix(self):
        registry = MetricsRegistry()
        registry.counter("requests/traced").increment(4)
        for value in (1.0, 3.0):
            registry.histogram("client/0/latency").observe(value)
        scalars = registry.summary_scalars(prefix="obs/")
        assert scalars["obs/requests/traced"] == 4.0
        assert scalars["obs/client/0/latency_count"] == 2.0
        assert scalars["obs/client/0/latency_mean"] == pytest.approx(2.0)
        assert scalars["obs/client/0/latency_max"] == 3.0
        assert all(isinstance(v, float) for v in scalars.values())


def test_merge_registry_snapshots_pools_percentiles():
    """Merged percentiles equal percentiles of the pooled sample."""
    trials = []
    for offset in range(4):
        registry = MetricsRegistry()
        registry.counter("n").increment(1)
        for value in range(25):
            registry.histogram("lat").observe(float(offset * 25 + value))
        trials.append(registry.snapshot())
    merged = merge_registry_snapshots(trials)
    assert merged.counter("n").value == 4
    assert merged.histogram("lat").count == 100
    pooled = Histogram("lat", samples=[float(v) for v in range(100)])
    assert merged.histogram("lat").summary() == pooled.summary()
