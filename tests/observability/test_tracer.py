"""Unit tests for the opt-in tracer: attach/sampling, span fan-in, metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.request import reset_request_ids
from repro.observability.tracer import (
    ObservabilityConfig,
    TraceContext,
    Tracer,
    make_tracer,
)
from tests.conftest import make_request


class TestMakeTracer:
    def test_off_values_mean_no_tracer(self):
        assert make_tracer(None) is None
        assert make_tracer(False) is None

    def test_true_builds_default_tracer(self):
        tracer = make_tracer(True)
        assert isinstance(tracer, Tracer)
        assert tracer.config == ObservabilityConfig()

    def test_config_and_tracer_pass_through(self):
        config = ObservabilityConfig(ring_capacity=8, sample_every=2)
        tracer = make_tracer(config)
        assert tracer.config is config
        assert make_tracer(tracer) is tracer

    def test_junk_rejected(self):
        with pytest.raises(ConfigurationError):
            make_tracer("yes please")

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(sample_every=0)


class TestAttachAndSampling:
    def test_attach_every_request_by_default(self):
        tracer = Tracer()
        requests = [make_request(deadline=100) for _ in range(4)]
        assert all(tracer.attach(r) is not None for r in requests)

    def test_sampling_by_request_id(self):
        reset_request_ids()
        tracer = Tracer(ObservabilityConfig(sample_every=3))
        requests = [make_request(deadline=100) for _ in range(9)]
        traced = [tracer.attach(r) is not None for r in requests]
        assert traced == [True, False, False] * 3

    def test_sampling_is_stateless_across_retries(self):
        # a refused injection retries attach(); the sampling decision is
        # a pure function of the rid, so retries cannot skew it
        reset_request_ids()
        tracer = Tracer(ObservabilityConfig(sample_every=2))
        sampled = make_request(deadline=100)  # rid 0
        unsampled = make_request(deadline=100)  # rid 1
        third = make_request(deadline=100)  # rid 2
        ctx = tracer.attach(sampled)
        assert tracer.attach(sampled) is ctx
        for _ in range(3):  # refused offers retry attach every cycle
            assert tracer.attach(unsampled) is None
        assert tracer.attach(third) is not None


class TestWrapInject:
    def test_inject_span_lands_on_acceptance_cycle(self):
        tracer = Tracer()
        outcomes = iter([False, False, True])
        inject = tracer.wrap_inject(lambda request, cycle: next(outcomes))
        request = make_request(client_id=3, deadline=100)
        assert not inject(request, 5)
        assert not inject(request, 6)
        assert inject(request, 7)
        spans = tracer.recorder.spans()
        assert len(spans) == 1
        assert spans[0].kind == "inject"
        assert spans[0].site == "client:3"
        assert spans[0].cycle == 7
        assert spans[0].attrs == {"release": request.release_cycle}

    def test_unsampled_requests_pass_through_untraced(self):
        reset_request_ids()
        tracer = Tracer(ObservabilityConfig(sample_every=2))
        inject = tracer.wrap_inject(lambda request, cycle: True)
        first = make_request(deadline=100)  # rid 0: sampled
        second = make_request(deadline=100)  # rid 1: not
        assert inject(first, 0) and inject(second, 0)
        assert first.trace_ctx is not None
        assert second.trace_ctx is None
        assert len(tracer.recorder.spans()) == 1


class TestEmissionFanIn:
    def test_enqueue_then_grant_attributes_wait(self):
        tracer = Tracer()
        request = make_request(deadline=100)
        ctx = tracer.attach(request)
        ctx.emit("se:1:0", "enqueue", 10, {"port": 2, "occupancy": 5})
        ctx.emit("se:1:0", "arbitration_win", 17, {"port": 2})
        registry = tracer.registry
        assert registry.histogram("site/se:1:0/wait").samples == [7.0]
        assert registry.histogram("site/se:1:0/occupancy").samples == [5.0]

    def test_service_start_also_closes_enqueue(self):
        tracer = Tracer()
        ctx = tracer.attach(make_request(deadline=100))
        ctx.emit("mc", "enqueue", 4, {"occupancy": 1})
        ctx.emit("mc", "service_start", 9)
        assert tracer.registry.histogram("site/mc/wait").samples == [5.0]

    def test_grant_without_enqueue_is_tolerated(self):
        # ring eviction or sampling can orphan a grant; no metric emitted
        tracer = Tracer()
        ctx = tracer.attach(make_request(deadline=100))
        ctx.emit("se:0:0", "arbitration_win", 3)
        assert "site/se:0:0/wait" not in tracer.registry.histograms

    def test_collect_metrics_off_still_records_spans(self):
        tracer = Tracer(ObservabilityConfig(collect_metrics=False))
        ctx = tracer.attach(make_request(deadline=100))
        ctx.emit("mc", "enqueue", 0, {"occupancy": 1})
        ctx.emit("mc", "service_start", 2)
        assert len(tracer.recorder.spans()) == 2
        assert not tracer.registry.histograms
        assert not tracer.registry.counters


class TestCompletionAndTrialEnd:
    def test_on_completion_emits_deliver_and_metrics(self):
        tracer = Tracer()
        request = make_request(client_id=2, deadline=100)
        request.blocking_cycles = 6
        tracer.attach(request)
        request.mark_complete(40)
        tracer.on_completion(request, 40)
        deliver = tracer.recorder.spans()[-1]
        assert deliver.kind == "deliver"
        assert deliver.site == "client:2"
        assert deliver.attrs == {"blocking": 6}
        registry = tracer.registry
        assert registry.counter("requests/traced").value == 1
        assert registry.histogram("client/2/latency").samples == [40.0]
        assert registry.histogram("client/2/blocking").samples == [6.0]

    def test_on_completion_ignores_untraced_requests(self):
        tracer = Tracer()
        request = make_request(deadline=100)
        request.mark_complete(10)
        tracer.on_completion(request, 10)
        assert tracer.recorder.emitted == 0

    def test_controller_stats_fold_in_reorders(self):
        class FakeController:
            reorder_count = 11

        tracer = Tracer()
        tracer.record_controller_stats(FakeController())
        assert tracer.registry.counter("controller/reorder_total").value == 11
        tracer.record_controller_stats(object())  # no counter attr: no-op
        assert tracer.registry.counter("controller/reorder_total").value == 11

    def test_summary_scalars_report_ring_health(self):
        tracer = Tracer(ObservabilityConfig(ring_capacity=2))
        ctx = tracer.attach(make_request(deadline=100))
        for cycle in range(5):
            ctx.emit("mc", "enqueue", cycle)
        scalars = tracer.summary_scalars(prefix="obs/")
        assert scalars["obs/spans_emitted"] == 5.0
        assert scalars["obs/spans_dropped"] == 3.0


def test_trace_context_is_slotted():
    """The per-request handle must stay allocation-light."""
    assert not hasattr(TraceContext(0, 0, Tracer()), "__dict__")
