"""Golden-trace regression tests for the Fig. 6 / Fig. 7 experiments.

Each experiment trial emits a sha256 digest over its completion stream
(request ids, release/completion cycles, blocking charges — see
``_ResponseStage._trace_record``).  The digests of a small, fixed
configuration are pinned in ``tests/fixtures/golden_traces.json``: any
change to scheduling, arbitration, client behaviour, or the engine's
fast path that alters even one completion shows up as a digest flip.

When a *deliberate* behavioural change invalidates the fixtures,
regenerate them with::

    PYTHONPATH=src python scripts/regen_golden.py traces

and review the diff alongside the change that caused it.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments.fig6 import Fig6Config, build_fig6_specs, run_fig6_trial
from repro.experiments.fig7 import Fig7Config, build_fig7_specs, run_fig7_trial

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "fixtures" / "golden_traces.json"
)

REGEN_HINT = (
    "golden trace mismatch — if the behaviour change is intentional, "
    "regenerate with: PYTHONPATH=src python scripts/regen_golden.py traces"
)


def fig6_config(**overrides) -> Fig6Config:
    """Small, fixed Fig. 6 draw (fast to run, stable by construction)."""
    params = dict(n_clients=8, trials=2, horizon=4_000, drain=2_000)
    params.update(overrides)
    return Fig6Config(**params)


def fig7_config(**overrides) -> Fig7Config:
    """Small, fixed Fig. 7 draw: 4 processors + the accelerator."""
    params = dict(
        n_processors=4,
        trials=1,
        horizon=4_000,
        drain=2_000,
        utilizations=(0.3, 0.6),
    )
    params.update(overrides)
    return Fig7Config(**params)


def collect_digests(fast_path: bool = True) -> dict[str, str]:
    """Run the pinned configurations and gather every trace digest."""
    digests: dict[str, str] = {}
    config6 = fig6_config(fast_path=fast_path)
    for spec in build_fig6_specs(config6):
        metrics = run_fig6_trial(spec)
        for key, value in sorted(metrics.tags.items()):
            if key.endswith("/trace"):
                digests[f"fig6/trial{spec.index}/{key[:-6]}"] = value
    config7 = fig7_config(fast_path=fast_path)
    for spec in build_fig7_specs(config7):
        metrics = run_fig7_trial(spec)
        utilization = spec.param("utilization")
        for key, value in sorted(metrics.tags.items()):
            if key.endswith("/trace"):
                digests[f"fig7/u{utilization}/{key[:-6]}"] = value
    return digests


@pytest.fixture(scope="module")
def golden() -> dict[str, str]:
    assert GOLDEN_PATH.exists(), f"missing fixture {GOLDEN_PATH}; {REGEN_HINT}"
    return json.loads(GOLDEN_PATH.read_text())["digests"]


def test_trace_digests_match_golden(golden):
    observed = collect_digests()
    assert observed.keys() == golden.keys(), REGEN_HINT
    mismatched = {
        key: (observed[key], golden[key])
        for key in golden
        if observed[key] != golden[key]
    }
    assert not mismatched, f"{REGEN_HINT}\n{mismatched}"


def test_reference_path_matches_golden(golden):
    """The cycle-by-cycle reference path reproduces the same traces:
    the fixture pins the *semantics*, not a fast-path artifact.

    One Fig. 6 trial is enough here (the full differential matrix lives
    in tests/sim/test_engine_equivalence.py)."""
    config = dataclasses.replace(fig6_config(), trials=1, fast_path=False)
    spec = build_fig6_specs(config)[0]
    metrics = run_fig6_trial(spec)
    for key, value in metrics.tags.items():
        if key.endswith("/trace"):
            assert golden[f"fig6/trial0/{key[:-6]}"] == value, REGEN_HINT


def test_golden_fixture_is_well_formed():
    payload = json.loads(GOLDEN_PATH.read_text())
    digests = payload["digests"]
    # Two fig6 trials and two fig7 utilization points, six designs each.
    assert len([k for k in digests if k.startswith("fig6/")]) == 12
    assert len([k for k in digests if k.startswith("fig7/")]) == 12
    assert all(
        isinstance(v, str) and len(v) == 64 for v in digests.values()
    ), "digests must be sha256 hex strings"
