"""Tests for the per-client fairness extension experiment."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fairness import (
    FairnessOutcome,
    format_fairness,
    jain_index,
    run_fairness,
)


class TestJainIndex:
    def test_perfectly_even(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog(self):
        # one active of n: index -> 1/n
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounded(self):
        values = [1.0, 2.0, 3.0, 10.0]
        index = jain_index(values)
        assert 1 / len(values) <= index <= 1.0

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([])

    def test_scale_invariant(self):
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(
            jain_index([10.0, 20.0, 30.0])
        )


class TestFairnessExperiment:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return run_fairness(
            seeds=(1,),
            horizon=8_000,
            interconnects=("BlueScale", "BlueTree", "GSMTree-TDM"),
        )

    def test_one_outcome_per_design(self, outcomes):
        assert [o.interconnect for o in outcomes] == [
            "BlueScale",
            "BlueTree",
            "GSMTree-TDM",
        ]

    def test_metrics_in_range(self, outcomes):
        for o in outcomes:
            assert 0.0 < o.jain_response <= 1.0
            assert o.worst_best_ratio >= 1.0
            assert 0.0 <= o.miss_concentration <= 1.0

    def test_bluescale_misses_nothing_despite_shaped_responses(self, outcomes):
        """BlueScale shapes responses proportionally to demand (low Jain
        on means) but concentrates misses on nobody — the fairness that
        matters for deadlines."""
        blue = next(o for o in outcomes if o.interconnect == "BlueScale")
        assert blue.miss_concentration == 0.0

    def test_tdm_starves_heavy_clients(self, outcomes):
        """Equal-share TDM gives wildly uneven response ratios under a
        heterogeneous workload."""
        tdm = next(o for o in outcomes if o.interconnect == "GSMTree-TDM")
        others = [o for o in outcomes if o.interconnect != "GSMTree-TDM"]
        assert tdm.worst_best_ratio > max(o.worst_best_ratio for o in others)

    def test_formatting(self, outcomes):
        text = format_fairness(outcomes)
        assert "Jain" in text and "BlueScale" in text

    def test_outcome_is_frozen(self):
        outcome = FairnessOutcome("X", 1.0, 1.0, 0.0)
        with pytest.raises(AttributeError):
            outcome.jain_response = 0.5
