"""Smoke and shape tests for the Fig. 6 / Fig. 7 experiment harnesses.

These run miniature configurations (few trials, short horizons, a
subset of interconnects) so the whole suite stays fast; the benchmark
harness runs the fuller versions.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig6 import Fig6Config, format_fig6, run_fig6
from repro.experiments.fig7 import Fig7Config, format_fig7, run_fig7


MICRO_FIG6 = Fig6Config(n_clients=16, trials=2, horizon=6_000, drain=2_000)


class TestFig6Harness:
    def test_micro_run_produces_metrics(self):
        result = run_fig6(MICRO_FIG6, interconnects=("BlueScale", "BlueTree"))
        assert set(result.metrics) == {"BlueScale", "BlueTree"}
        for metrics in result.metrics.values():
            assert len(metrics.miss_ratios) == 2
            assert len(metrics.blocking_means) == 2
            assert all(0 <= m <= 1 for m in metrics.miss_ratios)
            assert all(b >= 0 for b in metrics.blocking_means)

    def test_bluescale_beats_bluetree_on_misses(self):
        result = run_fig6(MICRO_FIG6, interconnects=("BlueScale", "BlueTree"))
        blue = result.metrics["BlueScale"].mean_miss_ratio
        tree = result.metrics["BlueTree"].mean_miss_ratio
        assert blue <= tree

    def test_best_selectors(self):
        result = run_fig6(MICRO_FIG6, interconnects=("BlueScale", "BlueTree"))
        assert result.best_miss_ratio() in ("BlueScale", "BlueTree")

    def test_deterministic(self):
        a = run_fig6(MICRO_FIG6, interconnects=("BlueTree",))
        b = run_fig6(MICRO_FIG6, interconnects=("BlueTree",))
        assert a.metrics["BlueTree"].miss_ratios == b.metrics["BlueTree"].miss_ratios

    def test_formatting(self):
        result = run_fig6(MICRO_FIG6, interconnects=("BlueTree",))
        text = format_fig6(result)
        assert "BlueTree" in text
        assert "16 traffic generators" in text

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            Fig6Config(utilization_low=0.9, utilization_high=0.7)
        with pytest.raises(ConfigurationError):
            Fig6Config(trials=0)

    def test_paper_scale_preset(self):
        config = Fig6Config.paper_scale(64)
        assert config.n_clients == 64
        assert config.trials == 200
        assert config.horizon >= 100_000


MICRO_FIG7 = Fig7Config(
    n_processors=16,
    trials=2,
    horizon=6_000,
    drain=3_000,
    utilizations=(0.4, 0.9),
)


class TestFig7Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(MICRO_FIG7, interconnects=("BlueScale", "GSMTree-TDM"))

    def test_success_ratios_in_range(self, result):
        for series in result.success_ratio.values():
            assert len(series) == 2
            assert all(0.0 <= value <= 1.0 for value in series)

    def test_bluescale_dominates_tdm(self, result):
        assert result.dominated_by_bluescale("GSMTree-TDM")

    def test_bluescale_succeeds_at_low_utilization(self, result):
        assert result.success_ratio["BlueScale"][0] == 1.0

    def test_formatting(self, result):
        text = format_fig7(result)
        assert "success ratio" in text
        assert "BlueScale" in text

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            Fig7Config(n_processors=0)
        with pytest.raises(ConfigurationError):
            Fig7Config(utilizations=(0.5, 1.4))

    def test_n_clients_includes_accelerator(self):
        assert Fig7Config(n_processors=16).n_clients == 17

    def test_paper_scale_preset(self):
        config = Fig7Config.paper_scale()
        assert config.trials == 200
        assert len(config.utilizations) == 17
        assert config.utilizations[0] == 0.10
        assert config.utilizations[-1] == 0.90


class TestFig7WithAnalysis:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(
            Fig7Config(
                n_processors=16,
                trials=2,
                horizon=4_000,
                drain=2_000,
                utilizations=(0.3, 0.9),
                analysis=True,
            ),
            interconnects=("BlueScale",),
        )

    def test_analysis_ratio_per_utilization_point(self, result):
        assert len(result.analysis_ratio) == 2
        assert all(0.0 <= r <= 1.0 for r in result.analysis_ratio)
        # low utilization composes, way-over-ceiling cannot
        assert result.analysis_ratio[0] == 1.0
        assert result.analysis_ratio[-1] == 0.0

    def test_analysis_is_sound_wrt_simulation(self, result):
        """Analytical admission is conservative: wherever the analysis
        says schedulable, simulation agrees (the reverse need not
        hold)."""
        for ratio, simulated in zip(
            result.analysis_ratio, result.success_ratio["BlueScale"]
        ):
            if ratio == 1.0:
                assert simulated == 1.0

    def test_metric_set_and_formatting_carry_analysis(self, result):
        assert "analysis/schedulable_mean" in result.metric_set().scalars
        assert "analysis (BlueScale)" in format_fig7(result)

    def test_backend_override_identical(self, result):
        scalar = run_fig7(
            Fig7Config(
                n_processors=16,
                trials=2,
                horizon=4_000,
                drain=2_000,
                utilizations=(0.3, 0.9),
                analysis=True,
                analysis_backend="scalar",
            ),
            interconnects=("BlueScale",),
        )
        assert scalar.analysis_ratio == result.analysis_ratio
        assert scalar.success_ratio == result.success_ratio
