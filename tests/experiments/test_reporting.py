"""Unit tests for report formatting."""

import pytest

from repro.experiments.reporting import format_series, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["alpha", 1], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) == {"-"}
        # columns align: 'alpha' and 'b' rows put values in same column
        assert lines[3].index("1") == lines[4].index("2")

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [1234.5678]])
        assert "0.123" in text
        assert "1234.6" in text

    def test_no_title(self):
        text = format_table(["a"], [["v"]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].startswith("a")


class TestFormatBarChart:
    def test_bars_scale_to_peak(self):
        from repro.experiments.reporting import format_bar_chart

        text = format_bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_values_render_empty(self):
        from repro.experiments.reporting import format_bar_chart

        text = format_bar_chart({"a": 0.0, "b": 2.0})
        assert "#" not in text.splitlines()[0]

    def test_empty_data(self):
        from repro.experiments.reporting import format_bar_chart

        assert "(no data)" in format_bar_chart({}, title="T")

    def test_invalid_width(self):
        from repro.experiments.reporting import format_bar_chart

        with pytest.raises(ValueError):
            format_bar_chart({"a": 1.0}, width=0)

    def test_unit_suffix(self):
        from repro.experiments.reporting import format_bar_chart

        assert "ms" in format_bar_chart({"a": 3.0}, unit="ms")


class TestFormatCurves:
    def test_markers_and_legend(self):
        from repro.experiments.reporting import format_curves

        text = format_curves(
            [0, 1, 2], {"up": [0.0, 0.5, 1.0], "down": [1.0, 0.5, 0.0]}
        )
        assert "o = up" in text
        assert "x = down" in text
        grid_lines = [l for l in text.splitlines() if l.startswith("|")]
        assert any("o" in line for line in grid_lines)
        assert any("x" in line for line in grid_lines)

    def test_flat_series_does_not_crash(self):
        from repro.experiments.reporting import format_curves

        text = format_curves([0, 1], {"flat": [1.0, 1.0]})
        assert "flat" in text

    def test_empty_series(self):
        from repro.experiments.reporting import format_curves

        assert "(no data)" in format_curves([], {})

    def test_too_small_grid_rejected(self):
        from repro.experiments.reporting import format_curves

        with pytest.raises(ValueError):
            format_curves([0, 1], {"s": [0, 1]}, height=1)


class TestFormatSupplyDemand:
    def test_schedulable_pair_reports_ok(self):
        from repro.analysis.prm import ResourceInterface
        from repro.experiments.reporting import format_supply_demand
        from repro.tasks.task import PeriodicTask
        from repro.tasks.taskset import TaskSet

        taskset = TaskSet([PeriodicTask(period=40, wcet=4)])
        text = format_supply_demand(taskset, ResourceInterface(10, 3))
        assert "dbf" in text and "sbf" in text
        assert "demand ≤ supply" in text

    def test_violation_reported_with_witness(self):
        from repro.analysis.prm import ResourceInterface
        from repro.experiments.reporting import format_supply_demand
        from repro.tasks.task import PeriodicTask
        from repro.tasks.taskset import TaskSet

        # demand 4 by t=10 but blackout 2*(10-4)=12: infeasible
        taskset = TaskSet([PeriodicTask(period=10, wcet=4)])
        text = format_supply_demand(
            taskset, ResourceInterface(10, 4), horizon=60
        )
        assert "VIOLATION" in text


class TestFormatSeries:
    def test_one_row_per_curve(self):
        text = format_series(
            "x", [1, 2, 3], {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]}
        )
        lines = text.splitlines()
        assert any(line.startswith("up") for line in lines)
        assert any(line.startswith("down") for line in lines)

    def test_x_values_in_header(self):
        text = format_series("η", [1, 2], {"s": [0.5, 0.6]})
        header = text.splitlines()[0]
        assert "η" in header and "1" in header and "2" in header
