"""Tests for the scalability-sweep extension experiment."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scalability_sweep import (
    format_scalability,
    run_scalability_sweep,
)


class TestScalabilitySweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scalability_sweep(
            client_counts=(4, 16),
            utilization=0.4,
            seeds=(1,),
            interconnects=("BlueScale", "BlueTree"),
            with_admission_ceiling=False,
        )

    def test_point_per_size_and_design(self, result):
        assert len(result.points) == 4
        assert result.sizes() == [4, 16]

    def test_series_extraction(self, result):
        miss = result.series("miss_ratio")
        assert set(miss) == {"BlueScale", "BlueTree"}
        assert all(len(values) == 2 for values in miss.values())

    def test_metrics_well_formed(self, result):
        for point in result.points:
            assert 0.0 <= point.miss_ratio <= 1.0
            assert point.mean_response > 0

    def test_formatting_without_ceiling(self, result):
        text = format_scalability(result)
        assert "miss ratio" in text
        assert "admission ceiling" not in text

    def test_admission_ceiling_recorded_when_requested(self):
        result = run_scalability_sweep(
            client_counts=(4,),
            utilization=0.3,
            seeds=(1,),
            interconnects=("BlueScale",),
            with_admission_ceiling=True,
        )
        assert 4 in result.admission_ceiling
        assert result.admission_ceiling[4] > 0.3
        assert "admission ceiling" in format_scalability(result)

    def test_empty_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scalability_sweep(client_counts=())
