"""Tests for the experiment-level interconnect factory."""

import random

import pytest

from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError
from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    INTERCONNECT_NAMES,
    FactoryConfig,
    axi_budgets,
    build_interconnect,
)
from repro.interconnects.axi_icrt import AxiIcRtInterconnect
from repro.interconnects.gsmtree import GsmTreeInterconnect
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@pytest.fixture
def tasksets(rng):
    return generate_client_tasksets(rng, 16, 2, 0.6)


class TestBuildInterconnect:
    def test_builds_all_six(self, tasksets):
        for name in INTERCONNECT_NAMES:
            interconnect = build_interconnect(name, 16, tasksets)
            assert interconnect.name == name
            assert interconnect.n_clients == 16

    def test_unknown_name_rejected(self, tasksets):
        with pytest.raises(ConfigurationError):
            build_interconnect("CrossbarXL", 16, tasksets)

    def test_bluescale_is_configured(self, tasksets):
        interconnect = build_interconnect("BlueScale", 16, tasksets)
        assert isinstance(interconnect, BlueScaleInterconnect)
        assert interconnect.composition is not None
        assert interconnect.composition.schedulable

    def test_axi_is_regulated(self, tasksets):
        interconnect = build_interconnect("AXI-IC^RT", 16, tasksets)
        assert isinstance(interconnect, AxiIcRtInterconnect)
        assert interconnect._window == DEFAULT_FACTORY_CONFIG.axi_window

    def test_fbsp_frame_reflects_workloads(self, tasksets):
        interconnect = build_interconnect("GSMTree-FBSP", 16, tasksets)
        assert isinstance(interconnect, GsmTreeInterconnect)
        heaviest = max(tasksets, key=lambda c: tasksets[c].utilization_float)
        lightest = min(tasksets, key=lambda c: tasksets[c].utilization_float)
        assert interconnect.frame.count(heaviest) >= interconnect.frame.count(lightest)

    def test_factory_config_is_applied(self, tasksets):
        config = FactoryConfig(bluetree_alpha=3, axi_arbitration_interval=2)
        bluetree = build_interconnect("BlueTree", 16, tasksets, config)
        assert bluetree.alpha == 3
        axi = build_interconnect("AXI-IC^RT", 16, tasksets, config)
        assert axi.arbitration_interval == 2

    def test_missing_clients_treated_as_idle(self, rng):
        sparse = {0: TaskSet([PeriodicTask(period=100, wcet=2, client_id=0)])}
        for name in INTERCONNECT_NAMES:
            interconnect = build_interconnect(name, 16, sparse)
            assert interconnect.n_clients == 16


class TestAxiBudgets:
    def test_burst_floor_applied(self):
        tasksets = {0: TaskSet([PeriodicTask(period=1000, wcet=9, client_id=0)])}
        budgets = axi_budgets(4, tasksets, window=200, margin=1.5)
        # utilization share is ~3 slots but the burst floor demands 18
        assert budgets[0] == 18

    def test_proportional_term_dominates_for_heavy_clients(self):
        tasksets = {0: TaskSet([PeriodicTask(period=10, wcet=5, client_id=0)])}
        budgets = axi_budgets(1, tasksets, window=200, margin=1.5)
        assert budgets[0] == 150  # 0.5 * 200 * 1.5

    def test_budget_capped_at_window(self):
        tasksets = {0: TaskSet([PeriodicTask(period=10, wcet=9, client_id=0)])}
        budgets = axi_budgets(1, tasksets, window=100, margin=2.0)
        assert budgets[0] == 100

    def test_idle_clients_get_floor(self):
        budgets = axi_budgets(3, {}, window=100, margin=1.5)
        assert budgets == [1, 1, 1]
