"""Churn experiment: spec determinism, trial smoke, reducer, rendering."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.churn import (
    CHURN_POLICIES,
    ChurnConfig,
    ChurnResult,
    PolicyChurn,
    build_churn_specs,
    format_churn,
    reduce_churn,
    run_churn_trial,
)
from repro.runtime.executor import TrialOutcome
from repro.runtime.metrics import MetricSet
from repro.scenarios import ScenarioKind

SMOKE = ChurnConfig(n_clients=8, trials=1, horizon=3_000, drain=1_500)


@pytest.fixture(scope="module")
def smoke_metrics():
    (spec,) = build_churn_specs(SMOKE)
    return run_churn_trial(spec)


class TestConfigAndSpecs:
    def test_specs_are_deterministic_and_picklable(self):
        a = build_churn_specs(SMOKE)
        b = build_churn_specs(SMOKE)
        assert [s.seed for s in a] == [s.seed for s in b]
        assert pickle.loads(pickle.dumps(a[0])).seed == a[0].seed
        assert a[0].param("config") == SMOKE

    def test_seed_changes_specs(self):
        a = build_churn_specs(SMOKE)
        b = build_churn_specs(
            ChurnConfig(
                n_clients=8, trials=1, horizon=3_000, drain=1_500, seed=1
            )
        )
        assert a[0].seed != b[0].seed

    def test_joiner_ids_are_the_top_clients(self):
        assert SMOKE.joiner_ids == (6, 7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(joiners=0)
        with pytest.raises(ConfigurationError):
            ChurnConfig(n_clients=4, joiners=3)
        with pytest.raises(ConfigurationError):
            ChurnConfig(utilization_low=0.5, utilization_high=0.4)
        with pytest.raises(ConfigurationError):
            ChurnConfig(churner=7)  # a joiner, not initially active


class TestTrial:
    def test_all_policies_report_and_transients_hold(self, smoke_metrics):
        for policy in CHURN_POLICIES:
            assert f"{policy}/victim_miss" in smoke_metrics
            assert f"{policy}/reconfig_work" in smoke_metrics
            trace = smoke_metrics.tags[f"{policy}/trace"]
            assert len(trace) == 64 and int(trace, 16) >= 0
        assert smoke_metrics["BlueScale/transient_violations"] == 0.0
        assert smoke_metrics["BlueScale/events_applied"] >= 1

    def test_bluescale_work_is_path_local(self, smoke_metrics):
        """Per applied event BlueScale reprograms O(log n) ports while
        the dynamic-regulation baseline recomputes all n budgets."""
        applied = smoke_metrics["BlueScale/events_applied"]
        if applied:
            bluescale = smoke_metrics["BlueScale/reconfig_work"] / applied
            assert bluescale < SMOKE.n_clients
        dyn_applied = smoke_metrics["AXI-dynamic/events_applied"]
        if dyn_applied:
            dynamic = smoke_metrics["AXI-dynamic/reconfig_work"] / dyn_applied
            assert dynamic == SMOKE.n_clients
        assert smoke_metrics["AXI-static/reconfig_work"] == 0.0

    def test_trial_is_deterministic(self, smoke_metrics):
        (spec,) = build_churn_specs(SMOKE)
        again = run_churn_trial(spec)
        assert again.scalars == smoke_metrics.scalars
        assert again.tags == smoke_metrics.tags


def _outcome(metrics, error=None):
    (spec,) = build_churn_specs(SMOKE)
    return TrialOutcome(spec=spec, metrics=metrics, seconds=0.0, error=error)


class TestReduceAndRender:
    def test_reduce_folds_and_digests(self, smoke_metrics):
        result = reduce_churn(
            SMOKE, [_outcome(smoke_metrics), _outcome(smoke_metrics)]
        )
        bluescale = result.metrics["BlueScale"]
        assert len(bluescale.victim_miss) == 2
        assert result.failed_trials == 0
        assert len(result.campaign_digest) == 64
        # same outcomes -> same campaign digest (the CI diff anchor)
        again = reduce_churn(
            SMOKE, [_outcome(smoke_metrics), _outcome(smoke_metrics)]
        )
        assert again.campaign_digest == result.campaign_digest

    def test_digest_tracks_traces(self, smoke_metrics):
        tweaked = MetricSet(
            scalars=dict(smoke_metrics.scalars),
            tags={**smoke_metrics.tags, "BlueScale/trace": "0" * 64},
        )
        a = reduce_churn(SMOKE, [_outcome(smoke_metrics)])
        b = reduce_churn(SMOKE, [_outcome(tweaked)])
        assert a.campaign_digest != b.campaign_digest

    def test_failed_trials_counted_not_folded(self, smoke_metrics):
        result = reduce_churn(
            SMOKE,
            [
                _outcome(smoke_metrics),
                _outcome(MetricSet(scalars={}), error="RuntimeError: boom"),
            ],
        )
        assert result.failed_trials == 1
        assert len(result.metrics["BlueScale"].victim_miss) == 1

    def test_metric_set_and_format(self, smoke_metrics):
        result = reduce_churn(SMOKE, [_outcome(smoke_metrics)])
        folded = result.metric_set()
        assert folded["transient_violations"] == 0.0
        assert folded.tags["campaign_digest"] == result.campaign_digest
        rendered = format_churn(result)
        assert "campaign digest" in rendered
        assert "transient-safe" in rendered
        for policy in CHURN_POLICIES:
            assert policy in rendered

    def test_cli_verify_exit_code(self, smoke_metrics, monkeypatch):
        """`repro churn --verify` exits 1 exactly when a monitored
        deadline was missed inside a reconfiguration transient."""
        import repro.experiments.churn as churn_mod
        from repro.cli import main

        clean = reduce_churn(SMOKE, [_outcome(smoke_metrics)])

        def fake_run(config, executor=None, hooks=None):
            return clean

        monkeypatch.setattr(churn_mod, "run_churn", fake_run)
        assert main(["churn", "--verify"]) == 0
        clean.metrics["BlueScale"].transient_violations = 1
        assert main(["churn", "--verify"]) == 1
        assert main(["churn"]) == 0

    def test_format_flags_violations(self):
        metrics = {name: PolicyChurn(name) for name in CHURN_POLICIES}
        metrics["BlueScale"].transient_violations = 2
        result = ChurnResult(
            config=SMOKE, metrics=metrics, campaign_digest="ab" * 32
        )
        assert result.total_transient_violations == 2
        assert "FAIL" in format_churn(result)
