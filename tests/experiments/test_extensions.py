"""Tests for the extension experiments (ablation, DRAM sensitivity,
update latency) and result persistence."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ablation import (
    VARIANTS,
    FifoPortBuffer,
    RoundRobinLocalScheduler,
    build_variant,
    evaluate_variant,
)
from repro.experiments.dram_sensitivity import (
    DeviceOutcome,
    format_dram_sensitivity,
    run_dram_sensitivity,
)
from repro.experiments.persistence import (
    load_json,
    save_csv,
    save_json,
    series_rows,
)
from repro.experiments.update_latency import (
    format_update_latency,
    measure_update_cost,
)
from repro.analysis.prm import ResourceInterface
from repro.tasks.generators import generate_client_tasksets

from tests.conftest import make_request


class TestAblationVariants:
    def test_unknown_variant_rejected(self, rng):
        tasksets = generate_client_tasksets(rng, 16, 2, 0.5)
        with pytest.raises(ConfigurationError):
            build_variant("no-such-variant", 16, tasksets)

    def test_binary_variant_has_more_elements(self, rng):
        tasksets = generate_client_tasksets(rng, 16, 2, 0.5)
        quad = build_variant("paper", 16, tasksets)
        binary = build_variant("binary_fanout", 16, tasksets)
        assert binary.n_elements > quad.n_elements

    def test_round_robin_scheduler_installed(self, rng):
        tasksets = generate_client_tasksets(rng, 16, 2, 0.5)
        variant = build_variant("round_robin", 16, tasksets)
        for element in variant.elements.values():
            assert isinstance(element.scheduler, RoundRobinLocalScheduler)

    def test_fifo_buffers_installed(self, rng):
        tasksets = generate_client_tasksets(rng, 16, 2, 0.5)
        variant = build_variant("fifo_buffers", 16, tasksets)
        for element in variant.elements.values():
            assert all(isinstance(b, FifoPortBuffer) for b in element.buffers)

    def test_naive_interfaces_are_equal_share(self, rng):
        tasksets = generate_client_tasksets(rng, 16, 2, 0.5)
        variant = build_variant("naive_interfaces", 16, tasksets)
        for element in variant.elements.values():
            assert element.interfaces() == [ResourceInterface(4, 1)] * 4

    def test_round_robin_rotates(self):
        from repro.core.random_access_buffer import RandomAccessBuffer

        scheduler = RoundRobinLocalScheduler(
            [ResourceInterface(10, 5)] * 4
        )
        buffers = [RandomAccessBuffer() for _ in range(4)]
        for buffer in buffers:
            buffer.load(make_request())
        order = [scheduler.select_port(buffers) for _ in range(4)]
        assert order == [0, 1, 2, 3]

    def test_fifo_buffer_is_arrival_ordered(self):
        buffer = FifoPortBuffer(capacity=4)
        late = make_request(deadline=500)
        early = make_request(deadline=100)
        buffer.load(late)
        buffer.load(early)
        assert buffer.fetch_highest_priority() is late

    def test_evaluate_variant_returns_metrics(self):
        point = evaluate_variant("paper", seeds=(1,), horizon=4_000)
        assert point.variant == "paper"
        assert 0 <= point.mean_miss_ratio <= 1
        assert point.mean_response > 0

    def test_variant_list_stable(self):
        assert VARIANTS[0] == "paper"
        assert len(VARIANTS) == 5


class TestBlueTreeAlphaSweep:
    def test_sweep_covers_requested_alphas(self):
        from repro.experiments.ablation import run_bluetree_alpha_sweep

        points = run_bluetree_alpha_sweep(
            alphas=(1, 4), seeds=(1,), horizon=5_000
        )
        assert [p.alpha for p in points] == [1, 4]
        for point in points:
            assert 0.0 <= point.mean_miss_ratio <= 1.0
            assert point.mean_blocking >= 0.0

    def test_no_alpha_reaches_bluescale_quality(self):
        """The paper's point: the static heuristic cannot match the
        demand-aware scheduler at any setting."""
        from repro.experiments.ablation import (
            evaluate_variant,
            run_bluetree_alpha_sweep,
        )

        points = run_bluetree_alpha_sweep(
            alphas=(1, 2, 8), seeds=(1, 2), horizon=8_000
        )
        bluescale = evaluate_variant("paper", seeds=(1, 2), horizon=8_000)
        best_tree = min(p.mean_miss_ratio for p in points)
        assert bluescale.mean_miss_ratio <= best_tree


class TestDramSensitivity:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return run_dram_sensitivity(
            seeds=(1,), horizon=6_000, interconnects=("BlueScale", "AXI-IC^RT")
        )

    def test_three_configurations_per_interconnect(self, outcomes):
        configurations = {o.configuration for o in outcomes}
        assert configurations == {"unit-slot", "dram/worst-case", "dram/average"}
        assert len(outcomes) == 6

    def test_unit_slot_has_full_hit_ratio(self, outcomes):
        for o in outcomes:
            if o.configuration == "unit-slot":
                assert o.row_hit_ratio == 1.0

    def test_worst_case_provisioning_keeps_bluescale_safe(self, outcomes):
        worst_case = {
            o.interconnect: o
            for o in outcomes
            if o.configuration == "dram/worst-case"
        }
        assert worst_case["BlueScale"].miss_ratio <= 0.01

    def test_average_provisioning_degrades(self, outcomes):
        by_config = {
            (o.interconnect, o.configuration): o.miss_ratio for o in outcomes
        }
        assert (
            by_config[("BlueScale", "dram/average")]
            > by_config[("BlueScale", "dram/worst-case")]
        )

    def test_formatting(self, outcomes):
        text = format_dram_sensitivity(outcomes)
        assert "dram/worst-case" in text


class TestUpdateLatency:
    @pytest.fixture(scope="class")
    def cost16(self):
        return measure_update_cost(16)

    def test_path_is_logarithmic(self, cost16):
        assert cost16.path_ses == 2  # leaf + root on a 16-client quadtree
        assert cost16.total_ses == 5

    def test_path_update_equals_full_recompose(self, cost16):
        assert cost16.results_identical

    def test_centralized_touches_every_client(self, cost16):
        assert cost16.centralized_budgets == 16

    def test_locality_improves_with_scale(self):
        small = measure_update_cost(16)
        large = measure_update_cost(64)
        assert large.locality < small.locality

    def test_formatting(self, cost16):
        text = format_update_latency([cost16])
        assert "16" in text and "yes" in text


class TestPersistence:
    def test_json_roundtrip(self, tmp_path):
        outcome = DeviceOutcome("BlueScale", "unit-slot", 0.01, 42.0, 1.0)
        path = save_json([outcome], tmp_path / "out.json", label="dram")
        payload = load_json(path)
        assert payload["label"] == "dram"
        assert payload["result"][0]["interconnect"] == "BlueScale"

    def test_json_handles_fractions_and_nesting(self, tmp_path):
        from fractions import Fraction

        data = {"bw": Fraction(1, 3), "inner": [Fraction(1, 2), {"x": 1}]}
        path = save_json(data, tmp_path / "f.json")
        payload = load_json(path)
        assert payload["result"]["bw"] == pytest.approx(1 / 3)

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            load_json(path)

    def test_csv_rows(self, tmp_path):
        rows = series_rows("x", [1, 2], {"a": [10, 20], "b": [30, 40]})
        path = save_csv(rows, tmp_path / "out.csv")
        content = path.read_text().splitlines()
        assert content[0] == "x,a,b"
        assert content[1] == "1,10,30"

    def test_csv_rejects_mismatched_rows(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_csv([{"a": 1}, {"b": 2}], tmp_path / "bad.csv")

    def test_csv_rejects_empty(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_csv([], tmp_path / "empty.csv")


class TestCli:
    def test_table1_runs_and_saves(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t1.json"
        assert main(["table1", "--output", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "BlueScale" in captured
        assert out.exists()

    def test_fig5_custom_eta(self, capsys):
        from repro.cli import main

        assert main(["fig5", "--eta-max", "3"]) == 0
        assert "Fig 5(a)" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["warp-drive"])

    def test_update_latency_quick(self, capsys):
        from repro.cli import main

        assert main(["update-latency", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "path update" in out and "yes" in out

    def test_ablation_quick(self, capsys):
        from repro.cli import main

        assert main(["ablation", "--quick"]) == 0
        assert "naive_interfaces" in capsys.readouterr().out

    def test_dram_quick_saves_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "dram.json"
        assert main(["dram", "--quick", "--output", str(out)]) == 0
        assert out.exists()
        assert "dram/worst-case" in capsys.readouterr().out

    def test_fig6_with_small_args(self, capsys):
        from repro.cli import main

        assert main(["fig6", "--trials", "1", "--horizon", "3000"]) == 0
        out = capsys.readouterr().out
        assert "16 traffic generators" in out
        assert "BlueScale" in out

    def test_fig6_seed_changes_results(self, capsys):
        from repro.cli import main

        argv = ["fig6", "--trials", "1", "--horizon", "3000"]
        assert main(argv + ["--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--seed", "1"]) == 0
        repeat = capsys.readouterr().out
        assert main(argv + ["--seed", "2"]) == 0
        other = capsys.readouterr().out
        assert first == repeat
        assert first != other

    def test_fig6_workers_flag_matches_serial(self, capsys):
        from repro.cli import main

        argv = ["fig6", "--trials", "2", "--horizon", "3000"]
        assert main(argv + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_fig7_seed_flag_accepted(self, capsys):
        from repro.cli import main

        assert main(
            ["fig7", "--trials", "1", "--horizon", "2000", "--seed", "3"]
        ) == 0
        assert "success ratio" in capsys.readouterr().out

    def test_fairness_quick(self, capsys):
        from repro.cli import main

        assert main(["fairness", "--quick"]) == 0
        assert "Jain" in capsys.readouterr().out

    def test_campaign_cli(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments import campaign as campaign_module

        # shrink the standard campaign for the test
        original = campaign_module.default_specs

        def tiny_specs(quick=True, **kwargs):
            return [
                spec
                for spec in original(quick=True)
                if spec.name in ("table1", "fig5")
            ]

        campaign_module.default_specs = tiny_specs
        try:
            assert main(
                ["campaign", "archive",
                 "--results-dir", str(tmp_path), "--label", "t"]
            ) == 0
        finally:
            campaign_module.default_specs = original
        assert (tmp_path / "t" / "manifest.json").exists()
        assert "archived" in capsys.readouterr().out
