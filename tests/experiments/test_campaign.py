"""Tests for the campaign runner and regression comparison."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import (
    ExperimentSpec,
    MetricDelta,
    compare_campaigns,
    default_specs,
    format_deltas,
    load_manifest,
    run_campaign,
)


def toy_spec(name="toy", value=1.0, extra_metrics=()):
    metrics = {"value": value, **dict(extra_metrics)}
    return ExperimentSpec(
        name=name,
        runner=lambda: dict(metrics),
        metrics=lambda result: result,
    )


class TestRunCampaign:
    def test_archives_results_and_manifest(self, tmp_path):
        record = run_campaign([toy_spec()], tmp_path, label="run1")
        assert (tmp_path / "run1" / "toy.json").exists()
        manifest = load_manifest(tmp_path / "run1")
        assert manifest["experiments"] == ["toy"]
        assert manifest["metrics"]["toy"]["value"] == 1.0
        assert record.seconds["toy"] >= 0

    def test_metric_set_results_need_no_adapter(self, tmp_path):
        """Results exposing metric_set() archive without a metrics lambda."""
        from repro.runtime import MetricSet

        class Result:
            def metric_set(self):
                return MetricSet(scalars={"m": 2.5})

        spec = ExperimentSpec(name="schema", runner=Result)
        record = run_campaign([spec], tmp_path, label="s")
        assert record.metrics["schema"] == {"m": 2.5}
        assert load_manifest(tmp_path / "s")["metrics"]["schema"]["m"] == 2.5

    def test_manifest_records_wall_clock_and_workers(self, tmp_path):
        run_campaign([toy_spec()], tmp_path, label="wc", workers=4)
        manifest = load_manifest(tmp_path / "wc")
        assert manifest["workers"] == 4
        assert manifest["wall_clock"]["toy"]["workers"] == 4
        assert manifest["wall_clock"]["toy"]["seconds"] >= 0
        assert manifest["wall_clock"]["toy"]["seconds"] == (
            manifest["seconds"]["toy"]
        )

    def test_duplicate_names_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_campaign([toy_spec(), toy_spec()], tmp_path)

    def test_empty_campaign_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_campaign([], tmp_path)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_manifest(tmp_path)


class TestCompareCampaigns:
    def run_pair(self, tmp_path, before_value, after_value):
        run_campaign([toy_spec(value=before_value)], tmp_path, label="before")
        run_campaign([toy_spec(value=after_value)], tmp_path, label="after")
        return tmp_path / "before", tmp_path / "after"

    def test_regression_detected(self, tmp_path):
        before, after = self.run_pair(tmp_path, 1.0, 2.0)
        deltas = compare_campaigns(before, after, threshold=0.10)
        assert len(deltas) == 1
        assert deltas[0].relative_change == pytest.approx(1.0)

    def test_improvement_detected_with_sign(self, tmp_path):
        """A metric that moved down is reported with a negative change."""
        before, after = self.run_pair(tmp_path, 2.0, 1.0)
        deltas = compare_campaigns(before, after, threshold=0.10)
        assert len(deltas) == 1
        assert deltas[0].relative_change == pytest.approx(-0.5)
        assert deltas[0].before == 2.0 and deltas[0].after == 1.0

    def test_missing_metric_reported_explicitly(self, tmp_path):
        """Metrics present in only one manifest report as explicit
        added/removed deltas — never silently skipped."""
        run_campaign(
            [toy_spec(value=1.0, extra_metrics=(("only_before", 5.0),))],
            tmp_path,
            label="before",
        )
        run_campaign(
            [toy_spec(value=3.0, extra_metrics=(("only_after", 7.0),))],
            tmp_path,
            label="after",
        )
        deltas = compare_campaigns(
            tmp_path / "before", tmp_path / "after", threshold=0.10
        )
        by_metric = {d.metric: d for d in deltas}
        assert set(by_metric) == {"value", "only_before", "only_after"}
        assert by_metric["only_before"].status == "removed"
        assert by_metric["only_before"].after is None
        assert by_metric["only_after"].status == "added"
        assert by_metric["only_after"].before is None
        assert math.isnan(by_metric["only_before"].relative_change)

    def test_missing_experiment_reported_explicitly(self, tmp_path):
        run_campaign([toy_spec(name="shared"), toy_spec(name="gone")],
                     tmp_path, label="before")
        run_campaign(
            [toy_spec(name="shared", value=9.0), toy_spec(name="new")],
            tmp_path,
            label="after",
        )
        deltas = compare_campaigns(tmp_path / "before", tmp_path / "after")
        by_experiment = {d.experiment: d for d in deltas}
        assert set(by_experiment) == {"shared", "gone", "new"}
        assert by_experiment["gone"].status == "removed"
        assert by_experiment["new"].status == "added"

    def test_nan_values_reported_not_skipped(self, tmp_path):
        """A NaN on one side always exceeds any threshold; two NaNs
        count as unmoved."""
        nan = float("nan")
        run_campaign(
            [toy_spec(value=1.0, extra_metrics=(("both_nan", nan),))],
            tmp_path,
            label="before",
        )
        run_campaign(
            [toy_spec(value=nan, extra_metrics=(("both_nan", nan),))],
            tmp_path,
            label="after",
        )
        deltas = compare_campaigns(
            tmp_path / "before", tmp_path / "after", threshold=1e9
        )
        assert [d.metric for d in deltas] == ["value"]
        assert math.isnan(deltas[0].relative_change)
        assert deltas[0].exceeds(1e9)
        both = MetricDelta("e", "both_nan", before=nan, after=nan)
        assert both.relative_change == 0.0 and both.equal

    def test_zero_baseline_never_raises(self, tmp_path):
        """A zero-to-nonzero move is an infinite change, reported at
        any threshold; formatting survives inf and None."""
        run_campaign([toy_spec(value=0.0)], tmp_path, label="before")
        run_campaign([toy_spec(value=2.0)], tmp_path, label="after")
        deltas = compare_campaigns(
            tmp_path / "before", tmp_path / "after", threshold=1e9
        )
        assert len(deltas) == 1
        assert deltas[0].relative_change == float("inf")
        text = format_deltas(
            deltas + [MetricDelta("e", "m", before=None, after=1.0)]
        )
        assert "+inf" in text and "added" in text

    def test_small_change_below_threshold_ignored(self, tmp_path):
        before, after = self.run_pair(tmp_path, 1.0, 1.05)
        assert compare_campaigns(before, after, threshold=0.10) == []

    def test_negative_threshold_rejected(self, tmp_path):
        before, after = self.run_pair(tmp_path, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            compare_campaigns(before, after, threshold=-1)

    def test_zero_before_handled(self):
        delta = MetricDelta("e", "m", before=0.0, after=0.5)
        assert delta.relative_change == float("inf")
        assert MetricDelta("e", "m", 0.0, 0.0).relative_change == 0.0

    def test_format_deltas(self, tmp_path):
        before, after = self.run_pair(tmp_path, 1.0, 3.0)
        text = format_deltas(compare_campaigns(before, after))
        assert "toy" in text and "+200.0%" in text
        assert "no metric moved" in format_deltas([])


class TestDefaultCampaign:
    def test_default_specs_runnable_quickly(self, tmp_path):
        """The standard campaign runs end to end at quick scale and the
        archived metrics carry the headline quantities."""
        specs = default_specs(quick=True)
        # keep the test fast: drop the simulation-heavy fig6 run but
        # check it is part of the standard campaign
        names = [spec.name for spec in specs]
        assert "fig6-16" in names
        fast = [spec for spec in specs if spec.name in ("table1", "fig5")]
        record = run_campaign(fast, tmp_path, label="std")
        assert record.metrics["table1"]["BlueScale/luts"] == pytest.approx(
            2945, rel=0.05
        )
        assert record.metrics["fig5"]["crossover_eta"] == 6.0
