"""Tests for the Table 1 and Fig. 5 experiment harnesses."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.table1 import (
    PAPER_TABLE1,
    format_table1,
    run_table1,
)


class TestTable1Experiment:
    def test_all_seven_rows(self):
        rows = run_table1()
        assert [r.design for r in rows] == [
            "AXI-IC^RT",
            "BlueTree",
            "BlueTree-Smooth",
            "GSMTree",
            "MicroBlaze",
            "RISC-V",
            "BlueScale",
        ]

    def test_rows_close_to_paper(self):
        for row in run_table1():
            paper_luts = row.paper[0]
            assert row.report.luts == pytest.approx(paper_luts, rel=0.08), row.design

    def test_paper_reference_complete(self):
        assert set(PAPER_TABLE1) == {r.design for r in run_table1()}

    def test_formatting_contains_all_designs(self):
        text = format_table1(run_table1())
        for design in PAPER_TABLE1:
            assert design in text


class TestFig5Experiment:
    def test_series_cover_eta_range(self):
        result = run_fig5(1, 7)
        assert result.etas == list(range(1, 8))
        for series in result.area.values():
            assert len(series) == 7

    def test_area_shapes(self):
        """Fig 5(a): everything grows with eta; BlueScale adds less than
        AXI-IC^RT; legacy dominates both interconnects."""
        result = run_fig5()
        for name, series in result.area.items():
            assert series == sorted(series), f"{name} not monotone"
        # from 8 clients up, BlueScale is the smaller interconnect (at
        # eta <= 2 both are one-arbiter-sized and the comparison is noise)
        for blue, axi in zip(
            result.area["BlueScale"][2:], result.area["AXI-IC^RT"][2:]
        ):
            assert blue < axi
        for blue, legacy in zip(result.area["BlueScale"], result.area["Legacy"]):
            assert blue < legacy

    def test_area_margin_small_through_64_clients(self):
        """Obs 2: the added area stays a small margin (we verify < 5
        percentage points through eta = 6)."""
        result = run_fig5(1, 6)
        for legacy, combined in zip(
            result.area["Legacy"], result.area["Legacy+BlueScale"]
        ):
            assert combined - legacy < 0.05

    def test_power_linear_in_eta(self):
        """Fig 5(b): doubling the clients roughly doubles legacy power."""
        result = run_fig5()
        legacy = result.power_w["Legacy"]
        for smaller, larger in zip(legacy, legacy[1:]):
            assert larger == pytest.approx(2 * smaller, rel=0.01)

    def test_fmax_crossover_at_eta_6(self):
        """Obs 3: AXI-IC^RT limits the system past 32 clients."""
        result = run_fig5()
        assert result.crossover_eta() == 6
        for blue, legacy in zip(
            result.fmax_mhz["BlueScale"], result.fmax_mhz["Legacy"]
        ):
            assert blue > legacy

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            run_fig5(3, 2)
        with pytest.raises(ConfigurationError):
            run_fig5(0, 5)

    def test_formatting_mentions_crossover(self):
        text = format_fig5(run_fig5())
        assert "Fig 5(a)" in text and "Fig 5(c)" in text
        assert "η = 6" in text
