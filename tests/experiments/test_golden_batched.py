"""Golden regression for the batched campaign path.

The golden-trace fixtures (test_golden_traces.py) pin the *scalar*
per-trial runners.  This suite pins the other half of the tentpole:
the same small fig6/fig7 configurations — plus the fault-injection
isolation campaign, whose rogue-burst plans compile into the SoA
request schedule — executed through the **batch entry points**
(``run_fig6_batch`` / ``run_fig7_batch`` / ``run_isolation_batch``)
on the batched backend: every scalar metric and every
completion-trace digest, per trial, in
``tests/fixtures/golden_batched_metrics.json``.

Because the batched backend is bit-identical to the scalar engine, the
digests in this fixture must also equal the ones pinned in
``golden_traces.json`` — asserted below as a cross-fixture consistency
check, so the two fixtures can never drift apart silently.

Regenerate (together with the scalar fixture) after a deliberate
behavioural change::

    PYTHONPATH=src python scripts/regen_golden.py traces
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.fig6 import build_fig6_specs, run_fig6_batch
from repro.experiments.fig7 import build_fig7_specs, run_fig7_batch
from repro.experiments.isolation import (
    IsolationConfig,
    build_isolation_specs,
    run_isolation_batch,
)
from repro.sim import set_default_sim_backend
from tests.experiments.test_golden_traces import (
    GOLDEN_PATH,
    fig6_config,
    fig7_config,
)

GOLDEN_BATCHED_PATH = (
    Path(__file__).resolve().parent.parent
    / "fixtures"
    / "golden_batched_metrics.json"
)

REGEN_HINT = (
    "golden batched-campaign mismatch — if the behaviour change is "
    "intentional, regenerate with: "
    "PYTHONPATH=src python scripts/regen_golden.py traces"
)


def isolation_config() -> IsolationConfig:
    """The pinned isolation campaign: small, but with real rogue work."""
    return IsolationConfig(trials=2, horizon=2_000, drain=800)


def collect_batched_metrics() -> dict:
    """Run the pinned configurations through the batch entry points."""
    previous = set_default_sim_backend("batched")
    try:
        fig6_sets = run_fig6_batch(build_fig6_specs(fig6_config()))
        fig7_sets = run_fig7_batch(build_fig7_specs(fig7_config()))
        isolation_sets = run_isolation_batch(
            build_isolation_specs(isolation_config())
        )
    finally:
        set_default_sim_backend(previous)
    return {
        "fig6": [
            {"scalars": dict(ms.scalars), "tags": dict(ms.tags)}
            for ms in fig6_sets
        ],
        "fig7": [
            {"scalars": dict(ms.scalars), "tags": dict(ms.tags)}
            for ms in fig7_sets
        ],
        "isolation": [
            {"scalars": dict(ms.scalars), "tags": dict(ms.tags)}
            for ms in isolation_sets
        ],
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_BATCHED_PATH.exists(), (
        f"missing fixture {GOLDEN_BATCHED_PATH}; {REGEN_HINT}"
    )
    return json.loads(GOLDEN_BATCHED_PATH.read_text())


@pytest.fixture(scope="module")
def observed() -> dict:
    return collect_batched_metrics()


def test_batched_campaign_matches_golden(golden, observed):
    for experiment in ("fig6", "fig7", "isolation"):
        assert observed[experiment] == golden[experiment], (
            f"{experiment}: {REGEN_HINT}"
        )


def test_batched_digests_equal_scalar_golden_traces(golden):
    """Cross-fixture consistency: the batched campaign's trace digests
    are the very digests the scalar golden fixture pins."""
    scalar_digests = json.loads(GOLDEN_PATH.read_text())["digests"]
    for entry in golden["fig6"]:
        trial = entry["tags"]["trial"]
        for key, value in entry["tags"].items():
            if key.endswith("/trace"):
                assert (
                    scalar_digests[f"fig6/trial{trial}/{key[:-6]}"] == value
                ), REGEN_HINT
    for entry in golden["fig7"]:
        utilization = entry["tags"]["utilization"]
        for key, value in entry["tags"].items():
            if key.endswith("/trace"):
                assert (
                    scalar_digests[f"fig7/u{utilization}/{key[:-6]}"] == value
                ), REGEN_HINT


def test_golden_batched_fixture_is_well_formed(golden):
    # Two fig6 trials; two fig7 utilization points; six designs each.
    assert len(golden["fig6"]) == 2
    assert len(golden["fig7"]) == 2
    for entry in golden["fig6"] + golden["fig7"]:
        traces = [k for k in entry["tags"] if k.endswith("/trace")]
        assert len(traces) == 6
        assert all(len(entry["tags"][k]) == 64 for k in traces)
        assert all(
            isinstance(v, float) for v in entry["scalars"].values()
        )
    # Two isolation trials; four designs, each with a baseline and a
    # faulted digest — and a rogue aggressor that actually injected.
    assert len(golden["isolation"]) == 2
    for entry in golden["isolation"]:
        bases = [k for k in entry["tags"] if k.endswith("/trace_base")]
        faults = [k for k in entry["tags"] if k.endswith("/trace_fault")]
        assert len(bases) == len(faults) == 4
        assert all(
            len(entry["tags"][k]) == 64 for k in bases + faults
        )
        assert all(
            entry["scalars"][f"{k[: -len('/trace_base')]}/rogue_requests"] > 0
            for k in bases
        )
        assert entry["scalars"]["BlueScale/bound_violations"] == 0.0
