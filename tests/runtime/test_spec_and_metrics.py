"""Unit tests for the runtime's spec, seeding, and metrics layers."""

import pickle
import random

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    MetricSet,
    TrialSpec,
    derive_seeds,
    extract_metric_set,
    seed_stream,
    spawn_rng,
)


class TestTrialSpec:
    def test_make_sorts_params(self):
        spec = TrialSpec.make("e", 0, 1, zeta=1, alpha=2)
        assert [name for name, _ in spec.params] == ["alpha", "zeta"]

    def test_param_lookup(self):
        spec = TrialSpec.make("e", 0, 1, x=42)
        assert spec.param("x") == 42
        with pytest.raises(ConfigurationError):
            spec.param("missing")

    def test_specs_are_picklable(self):
        from repro.experiments.fig6 import Fig6Config

        spec = TrialSpec.make("fig6", 3, 99, config=Fig6Config(), names=("a",))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.param("config") == Fig6Config()

    def test_client_seed_distinct_per_client(self):
        spec = TrialSpec.make("e", 0, 7)
        assert spec.client_seed(0) != spec.client_seed(1)
        assert random.Random(spec.client_seed(0)).random() != random.Random(
            spec.client_seed(1)
        ).random()


class TestSeeding:
    def test_streams_deterministic(self):
        assert derive_seeds("s", 5) == derive_seeds("s", 5)
        assert derive_seeds("a", 5) != derive_seeds("b", 5)

    def test_prefix_property(self):
        assert derive_seeds("s", 8)[:3] == derive_seeds("s", 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_seeds("s", -1)

    def test_spawn_advances_parent(self):
        parent = seed_stream(1)
        first = spawn_rng(parent)
        second = spawn_rng(parent)
        assert first.random() != second.random()


class TestMetricSet:
    def test_lookup_and_contains(self):
        ms = MetricSet(scalars={"a/x": 1.0})
        assert ms["a/x"] == 1.0
        assert "a/x" in ms and "a/y" not in ms
        with pytest.raises(ConfigurationError):
            ms["a/y"]

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricSet(scalars={"a": "high"})
        with pytest.raises(ConfigurationError):
            MetricSet(scalars={"a": True})

    def test_prefixed(self):
        ms = MetricSet(scalars={"x": 1.0}).prefixed("fig6")
        assert ms["fig6/x"] == 1.0

    def test_merge_disjoint(self):
        merged = MetricSet(scalars={"a": 1.0}).merged_with(
            MetricSet(scalars={"b": 2.0})
        )
        assert merged.as_dict() == {"a": 1.0, "b": 2.0}

    def test_merge_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricSet(scalars={"a": 1.0}).merged_with(
                MetricSet(scalars={"a": 2.0})
            )


class TestExtractMetricSet:
    def test_passthrough(self):
        ms = MetricSet(scalars={"a": 1.0})
        assert extract_metric_set(ms) is ms

    def test_mapping_coerced(self):
        assert extract_metric_set({"a": 1.0})["a"] == 1.0

    def test_metric_set_method_used(self):
        class Result:
            def metric_set(self):
                return {"from_method": 3.0}

        assert extract_metric_set(Result())["from_method"] == 3.0

    def test_experiment_results_expose_metric_sets(self):
        from repro.experiments.fig6 import Fig6Config, run_fig6

        result = run_fig6(
            Fig6Config(trials=1, horizon=3_000, drain=1_000),
            interconnects=("BlueTree",),
        )
        ms = extract_metric_set(result)
        assert "BlueTree/miss" in ms and "BlueTree/blocking" in ms

    def test_unextractable_rejected(self):
        with pytest.raises(ConfigurationError):
            extract_metric_set(object())
