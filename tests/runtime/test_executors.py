"""Executor contract tests: ordering, hooks, and the determinism
guarantee that a parallel run is bit-for-bit identical to a serial one
(the acceptance criterion of the trial-execution runtime)."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    FAILURE_METRIC,
    ExecutionHooks,
    MetricSet,
    ParallelExecutor,
    SerialExecutor,
    TrialSpec,
    make_executor,
)


def square_runner(spec: TrialSpec) -> MetricSet:
    """Module-level so the process pool can pickle it by reference."""
    return MetricSet(scalars={"value": float(spec.seed) ** 2})


def flaky_runner(spec: TrialSpec) -> MetricSet:
    """Raises on odd trial indices (module-level for pickling)."""
    if spec.index % 2 == 1:
        raise ValueError(f"trial {spec.index} exploded")
    return square_runner(spec)


def backend_probe_runner(spec: TrialSpec) -> MetricSet:
    """Reports which analysis backend the executing process defaults to."""
    from repro.analysis import get_default_backend

    return MetricSet(
        scalars={"scalar": 1.0 if get_default_backend() == "scalar" else 0.0}
    )


def make_specs(n):
    return [TrialSpec.make("toy", i, i) for i in range(n)]


class RecordingHooks(ExecutionHooks):
    def __init__(self):
        self.started = 0
        self.trials = []
        self.finished = 0

    def on_batch_start(self, specs):
        self.started += 1

    def on_trial_done(self, outcome, done, total):
        self.trials.append((outcome.spec.index, done, total))

    def on_batch_done(self, outcomes):
        self.finished += 1


class TestSerialExecutor:
    def test_results_in_spec_order(self):
        outcomes = SerialExecutor().map(square_runner, make_specs(5))
        assert [o.metrics["value"] for o in outcomes] == [0, 1, 4, 9, 16]
        assert [o.spec.index for o in outcomes] == list(range(5))

    def test_hooks_fire_in_order(self):
        hooks = RecordingHooks()
        SerialExecutor().map(square_runner, make_specs(3), hooks)
        assert hooks.started == 1 and hooks.finished == 1
        assert hooks.trials == [(0, 1, 3), (1, 2, 3), (2, 3, 3)]

    def test_trial_seconds_measured(self):
        outcomes = SerialExecutor().map(square_runner, make_specs(1))
        assert outcomes[0].seconds >= 0

    def test_runner_must_return_metric_set(self):
        with pytest.raises(ConfigurationError):
            SerialExecutor().map(lambda spec: {"raw": 1}, make_specs(1))


class TestFailureCapture:
    """A raising trial must not abort the batch (serial or parallel)."""

    def test_failure_becomes_structured_outcome(self):
        outcomes = SerialExecutor().map(flaky_runner, make_specs(4))
        assert len(outcomes) == 4
        assert [o.failed for o in outcomes] == [False, True, False, True]
        bad = outcomes[1]
        assert bad.error == "ValueError: trial 1 exploded"
        assert bad.metrics[FAILURE_METRIC] == 1.0
        assert bad.metrics.tags["error_type"] == "ValueError"
        assert bad.metrics.tags["trial"] == "1"
        # healthy trials are untouched
        assert outcomes[2].metrics["value"] == 4.0
        assert outcomes[2].error is None

    def test_ordering_preserved_with_failures(self):
        outcomes = SerialExecutor().map(flaky_runner, make_specs(6))
        assert [o.spec.index for o in outcomes] == list(range(6))

    def test_parallel_matches_serial_with_failures(self):
        serial = SerialExecutor().map(flaky_runner, make_specs(8))
        parallel = ParallelExecutor(2, chunk_size=2).map(
            flaky_runner, make_specs(8)
        )
        assert [o.failed for o in parallel] == [o.failed for o in serial]
        assert [o.error for o in parallel] == [o.error for o in serial]
        for left, right in zip(serial, parallel):
            assert left.metrics.scalars == right.metrics.scalars

    def test_hooks_still_fire_for_failed_trials(self):
        hooks = RecordingHooks()
        SerialExecutor().map(flaky_runner, make_specs(3), hooks)
        assert hooks.trials == [(0, 1, 3), (1, 2, 3), (2, 3, 3)]


class TestParallelExecutor:
    def test_too_few_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(1)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(2, chunk_size=0)

    def test_matches_serial_on_toy_runner(self):
        serial = SerialExecutor().map(square_runner, make_specs(9))
        parallel = ParallelExecutor(3, chunk_size=2).map(
            square_runner, make_specs(9)
        )
        assert [o.metrics for o in parallel] == [o.metrics for o in serial]
        assert [o.spec for o in parallel] == [o.spec for o in serial]

    def test_hooks_fire_in_submitting_process(self):
        hooks = RecordingHooks()
        ParallelExecutor(2).map(square_runner, make_specs(4), hooks)
        assert hooks.started == 1 and hooks.finished == 1
        assert [t[0] for t in hooks.trials] == [0, 1, 2, 3]

    def test_empty_batch(self):
        assert ParallelExecutor(2).map(square_runner, []) == []

    def test_worker_init_configures_every_worker(self):
        """A worker_init callable runs in each pool process before its
        first trial — the mechanism the CLI uses to replicate
        --analysis-backend into parallel workers."""
        from functools import partial

        from repro.analysis import get_default_backend, set_default_backend

        assert get_default_backend() == "vectorized"  # submitting process
        outcomes = ParallelExecutor(
            2, worker_init=partial(set_default_backend, "scalar")
        ).map(backend_probe_runner, make_specs(4))
        assert [o.metrics["scalar"] for o in outcomes] == [1.0] * 4
        # the submitting process is untouched by the workers' init
        assert get_default_backend() == "vectorized"


class TestMakeExecutor:
    def test_serial_for_one_or_none(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)

    def test_parallel_above_one(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3

    def test_worker_init_forwarded(self):
        from functools import partial

        from repro.analysis import set_default_backend

        init = partial(set_default_backend, "scalar")
        executor = make_executor(2, init)
        assert isinstance(executor, ParallelExecutor)
        assert executor.worker_init is init


class TestParallelEqualsSerial:
    """Parallel ≡ serial, exact equality, on the real experiments."""

    def test_fig6_identical(self):
        from repro.experiments.fig6 import Fig6Config, run_fig6

        config = Fig6Config(trials=3, horizon=4_000, drain=1_500)
        interconnects = ("BlueScale", "BlueTree")
        serial = run_fig6(config, interconnects, SerialExecutor())
        parallel = run_fig6(config, interconnects, ParallelExecutor(2))
        for name in interconnects:
            assert (
                parallel.metrics[name].miss_ratios
                == serial.metrics[name].miss_ratios
            )
            assert (
                parallel.metrics[name].blocking_means
                == serial.metrics[name].blocking_means
            )

    def test_fig7_identical(self):
        from repro.experiments.fig7 import Fig7Config, run_fig7

        config = Fig7Config(
            trials=2, horizon=4_000, drain=1_500, utilizations=(0.4, 0.8)
        )
        interconnects = ("BlueScale", "GSMTree-TDM")
        serial = run_fig7(config, interconnects, SerialExecutor())
        parallel = run_fig7(config, interconnects, ParallelExecutor(2))
        assert parallel.success_ratio == serial.success_ratio


def batch_capable_runner(spec: TrialSpec) -> MetricSet:
    """Module-level batch-capable runner (picklable by reference)."""
    return square_runner(spec)


def _short_batch(specs) -> list[MetricSet]:
    # drops the last spec's metrics: a broken batch implementation
    return [square_runner(spec) for spec in specs[:-1]]


batch_capable_runner.batch = _short_batch


class TestBatchSeam:
    """The runner ``.batch`` attribute contract at the executor level."""

    def test_wrong_length_batch_return_is_a_loud_error(self):
        """A batch returning the wrong number of MetricSets is a
        programming error in the batch implementation — it must raise
        with the counts spelled out, never silently misalign specs and
        metrics."""
        with pytest.raises(ConfigurationError, match="got 2 for 3 specs"):
            SerialExecutor().map(batch_capable_runner, make_specs(3))


class TestProgressPrinter:
    """One status line per ~10% of the batch, never one per trial."""

    def run_batch(self, n: int) -> list[str]:
        import io

        from repro.runtime import ProgressPrinter

        stream = io.StringIO()
        SerialExecutor().map(
            square_runner, make_specs(n), ProgressPrinter(stream=stream)
        )
        return stream.getvalue().splitlines()

    def test_small_batch_does_not_print_every_trial(self):
        """Regression: ``total // 10 == 0`` for small batches made the
        cadence divisor 1, printing a line for every single trial."""
        lines = self.run_batch(8)
        progress = [line for line in lines if "/8 trials" in line]
        # the clamp to one-per-5-trials leaves 5/8 and the final 8/8
        assert len(progress) == 2
        assert progress[-1].startswith("[toy] 8/8 trials")

    def test_large_batch_prints_about_ten_lines(self):
        lines = self.run_batch(200)
        progress = [line for line in lines if "/200 trials" in line]
        assert len(progress) == 10
        assert progress[-1].startswith("[toy] 200/200 trials")

    def test_failures_always_reported(self):
        import io

        from repro.runtime import ProgressPrinter

        stream = io.StringIO()
        SerialExecutor().map(
            flaky_runner, make_specs(6), ProgressPrinter(stream=stream)
        )
        failures = [
            line for line in stream.getvalue().splitlines() if "FAILED" in line
        ]
        assert len(failures) == 3  # odd indices 1, 3, 5
