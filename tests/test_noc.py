"""Unit tests for the mesh NoC substrate."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.noc.mesh import MeshNoC, Message, Router


class TestRouting:
    def test_xy_routes_x_first(self):
        router = Router((2, 2))
        assert router.route(Message(source=(2, 2), destination=(5, 0))) == Router.EAST
        assert router.route(Message(source=(2, 2), destination=(0, 5))) == Router.WEST
        # x aligned: then y
        assert router.route(Message(source=(2, 2), destination=(2, 5))) == Router.NORTH
        assert router.route(Message(source=(2, 2), destination=(2, 0))) == Router.SOUTH

    def test_local_delivery(self):
        router = Router((1, 1))
        assert router.route(Message(source=(0, 0), destination=(1, 1))) == Router.LOCAL

    def test_hop_distance_is_manhattan(self):
        mesh = MeshNoC(4, 4)
        assert mesh.hop_distance((0, 0), (3, 2)) == 5
        assert mesh.hop_distance((2, 2), (2, 2)) == 0


class TestDelivery:
    def test_single_message_latency_is_hop_count(self):
        mesh = MeshNoC(4, 4)
        message = Message(source=(0, 0), destination=(3, 3))
        assert mesh.inject(message, 0)
        mesh.run_until_drained()
        assert message.delivered
        # one cycle per link traversal; local ejection is same-cycle
        assert message.latency == mesh.hop_distance((0, 0), (3, 3))

    def test_payload_serialization_adds_latency(self):
        mesh = MeshNoC(3, 3)
        small = Message(source=(0, 0), destination=(2, 2), payload_flits=1)
        mesh.inject(small, 0)
        mesh.run_until_drained()
        mesh2 = MeshNoC(3, 3)
        big = Message(source=(0, 0), destination=(2, 2), payload_flits=8)
        mesh2.inject(big, 0)
        mesh2.run_until_drained()
        assert big.latency == small.latency + 7

    def test_all_messages_delivered_under_load(self):
        rng = random.Random(1)
        mesh = MeshNoC(4, 4)
        messages = []
        for i in range(100):
            src = (rng.randrange(4), rng.randrange(4))
            dst = (rng.randrange(4), rng.randrange(4))
            if src == dst:
                continue
            messages.append(Message(source=src, destination=dst))
        cycle = 0
        pending = list(messages)
        while pending or mesh.in_flight:
            pending = [m for m in pending if not mesh.inject(m, cycle)]
            mesh.tick(cycle)
            cycle += 1
            assert cycle < 10_000
        assert len(mesh.delivered) == len(messages)
        assert all(m.delivered for m in messages)

    def test_latency_before_delivery_rejected(self):
        message = Message(source=(0, 0), destination=(1, 1))
        with pytest.raises(ConfigurationError):
            message.latency


class TestMeshProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        seed=st.integers(0, 10_000),
        width=st.integers(2, 6),
        height=st.integers(2, 6),
        n_messages=st.integers(1, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_message_lost_and_latency_bounded_below(
        self, seed, width, height, n_messages
    ):
        """Any random traffic drains completely, and no message beats
        the zero-load Manhattan bound."""
        rng = random.Random(seed)
        mesh = MeshNoC(width, height)
        messages = []
        for _ in range(n_messages):
            src = (rng.randrange(width), rng.randrange(height))
            dst = (rng.randrange(width), rng.randrange(height))
            if src != dst:
                messages.append(Message(source=src, destination=dst))
        cycle = 0
        pending = list(messages)
        while pending or mesh.in_flight:
            pending = [m for m in pending if not mesh.inject(m, cycle)]
            mesh.tick(cycle)
            cycle += 1
            assert cycle < 50_000
        for message in messages:
            assert message.delivered
            assert message.latency >= mesh.hop_distance(
                message.source, message.destination
            )

    @given(
        width=st.integers(2, 8),
        height=st.integers(2, 8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30)
    def test_xy_route_always_progresses(self, width, height, seed):
        """XY routing strictly decreases the Manhattan distance at each
        router, so it can never loop."""
        rng = random.Random(seed)
        mesh = MeshNoC(width, height)
        src = (rng.randrange(width), rng.randrange(height))
        dst = (rng.randrange(width), rng.randrange(height))
        position = src
        hops = 0
        while position != dst:
            router = mesh.routers[position]
            port = router.route(Message(source=src, destination=dst))
            assert port != Router.LOCAL
            position = mesh._neighbor(position, port)
            hops += 1
            assert hops <= width + height
        assert hops == mesh.hop_distance(src, dst)


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            MeshNoC(0, 3)

    def test_rejects_out_of_mesh_positions(self):
        mesh = MeshNoC(3, 3)
        with pytest.raises(ConfigurationError):
            mesh.inject(Message(source=(5, 5), destination=(0, 0)), 0)
        with pytest.raises(ConfigurationError):
            mesh.inject(Message(source=(0, 0), destination=(9, 0)), 0)

    def test_injection_backpressure(self):
        mesh = MeshNoC(2, 2, queue_capacity=1)
        first = Message(source=(0, 0), destination=(1, 1))
        second = Message(source=(0, 0), destination=(1, 1))
        assert mesh.inject(first, 0)
        assert not mesh.inject(second, 0)  # same output queue full

    def test_run_until_drained_reports_stall(self):
        mesh = MeshNoC(2, 2)
        mesh.inject(Message(source=(0, 0), destination=(1, 1)), 0)
        cycles = mesh.run_until_drained()
        assert cycles > 0
        assert mesh.in_flight == 0
