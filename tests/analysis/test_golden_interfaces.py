"""Golden-value regression: selected interfaces for canonical systems.

Pins the exact ``(Π, Θ)`` chosen at every quadtree port for three
canonical topologies (16/32/64 clients), as JSON under
``tests/fixtures/``.  Any change to selection semantics — Theorem-2
bounds, tie-breaking, candidate sampling, either backend — shows up
here as a concrete interface diff rather than a downstream experiment
drift.  Regenerate intentionally with
``scripts/regen_golden.py interfaces``.
"""

import json

import pytest

from repro.analysis import AnalysisCache, compose
from repro.analysis.cache import DISABLED

from .golden_utils import (
    FIXTURE_PATH,
    GOLDEN_SIZES,
    composition_snapshot,
    golden_system,
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE_PATH.read_text())


@pytest.mark.parametrize("n_clients", GOLDEN_SIZES)
class TestGoldenInterfaces:
    def test_scalar_backend_matches_fixture(self, golden, n_clients):
        topology, tasksets = golden_system(n_clients)
        result = compose(topology, tasksets, backend="scalar", cache=DISABLED)
        assert composition_snapshot(result) == golden[str(n_clients)]

    def test_vectorized_backend_matches_fixture(self, golden, n_clients):
        topology, tasksets = golden_system(n_clients)
        result = compose(
            topology, tasksets, backend="vectorized", cache=AnalysisCache()
        )
        assert composition_snapshot(result) == golden[str(n_clients)]

    def test_fixture_systems_are_schedulable(self, golden, n_clients):
        """The canonical draws compose — so the fixture pins real
        selections at every level, not an early-out failure record."""
        assert golden[str(n_clients)]["schedulable"] is True
