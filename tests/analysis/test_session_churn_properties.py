"""Property test: an AdmissionSession's incremental state is path-
independent — whatever admit/evict/retask/reset walk produced it, the
composition equals a from-scratch composition of the tasksets it ended
up holding.  This is the invariant the scenarios subsystem leans on:
replaying a churn plan incrementally must land on the same interfaces a
cold analysis of the post-churn workload would select."""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SystemModel, compose
from repro.analysis.cache import AnalysisCache
from repro.analysis.context import AnalysisContext
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet

N_CLIENTS = 8

#: a small palette of light tasks so most admits commit but some walks
#: still hit rejections (which must leave the session untouched)
PALETTE = tuple(
    PeriodicTask(period=period, wcet=wcet, name=f"p{period}w{wcet}")
    for period, wcet in ((400, 1), (650, 2), (900, 3), (1200, 2))
)

_MODEL = None


def model():
    global _MODEL
    if _MODEL is None:
        _MODEL = SystemModel.from_seed(
            N_CLIENTS, utilization=0.25, seed=13
        )
    return _MODEL


op = st.one_of(
    st.tuples(
        st.just("admit"),
        st.integers(0, N_CLIENTS - 1),
        st.integers(0, len(PALETTE) - 1),
    ),
    st.tuples(
        st.just("evict"), st.integers(0, N_CLIENTS - 1), st.just(0)
    ),
    st.tuples(
        st.just("retask"),
        st.integers(0, N_CLIENTS - 1),
        st.integers(0, len(PALETTE) - 1),
    ),
    st.tuples(st.just("reset"), st.just(0), st.just(0)),
)


def apply_ops(session, ops):
    for kind, client, index in ops:
        if kind == "admit":
            session.admit(client, PALETTE[index])
        elif kind == "evict":
            session.evict(client)
        elif kind == "retask":
            task = PALETTE[index].with_client(client)
            session.retask(client, TaskSet([task]))
        else:
            session.reset()


class TestSessionPathIndependence:
    @given(ops=st.lists(op, min_size=1, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_incremental_state_matches_cold_composition(self, ops):
        m = model()
        session = m.session()
        apply_ops(session, ops)
        final = dict(session.tasksets)
        populated = {c: ts for c, ts in final.items() if len(ts) > 0}
        if not populated:
            return
        cold = compose(
            m.topology,
            populated,
            deadline_margin=m.deadline_margin,
            ctx=AnalysisContext.resolve(
                None, AnalysisCache(), m.context.config
            ),
        )
        incremental = session.composition
        for client in populated:
            leaf, port = m.topology.leaf_of_client(client)
            assert incremental.interface_for(leaf, port) == (
                cold.interface_for(leaf, port)
            ), (ops, client)
        assert incremental.schedulable == cold.schedulable

    @given(ops=st.lists(op, min_size=1, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_same_final_multiset_same_interfaces_as_fresh_walk(self, ops):
        """Two different walks that end with identical tasksets hold
        identical interfaces: replay the final state into a fresh
        session as evict+retask and compare."""
        m = model()
        first = m.session()
        apply_ops(first, ops)
        final = dict(first.tasksets)

        second = m.session()
        for client in range(N_CLIENTS):
            taskset = final.get(client, TaskSet())
            if len(taskset) > 0:
                second.retask(client, taskset)
            else:
                second.evict(client)
        assert dict(second.tasksets) == {
            c: ts for c, ts in final.items()
        }
        assert (
            second.composition.interfaces == first.composition.interfaces
        )
