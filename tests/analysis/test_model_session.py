"""Tests for the SystemModel / AdmissionSession split: the frozen model
matches a direct composition, sessions answer exactly like the
stateless entry points, commits are atomic, and everything round-trips
through pickle and across backends."""

import pickle
import random
import threading

import pytest

from repro.analysis import AdmissionSession, SystemModel, compose
from repro.analysis.cache import AnalysisCache
from repro.analysis.composition import default_deadline_margin
from repro.analysis.sensitivity import can_admit
from repro.errors import ConfigurationError
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.topology import quadtree

SMALL = PeriodicTask(period=1000, wcet=1, name="small")
HEAVY = PeriodicTask(period=64, wcet=60, name="heavy")


def _model(n_clients: int = 16, **kwargs) -> SystemModel:
    return SystemModel.from_seed(n_clients, utilization=0.3, seed=7, **kwargs)


class TestSystemModel:
    def test_baseline_matches_direct_compose(self):
        model = _model()
        direct = compose(
            model.topology,
            dict(model.client_tasksets),
            deadline_margin=model.deadline_margin,
        )
        assert direct.interfaces == model.baseline.interfaces
        assert direct.root_bandwidth == model.baseline.root_bandwidth
        assert model.schedulable == direct.schedulable

    def test_build_freezes_task_sets(self):
        topology = quadtree(8)
        rng = random.Random("model-test")
        tasksets = generate_client_tasksets(rng, 8, 2, 0.3)
        model = SystemModel.build(topology, tasksets, label="frozen")
        with pytest.raises(TypeError):
            model.client_tasksets[0] = TaskSet()  # type: ignore[index]
        # mutating the caller's dict afterwards cannot reach the model
        tasksets[0] = TaskSet([PeriodicTask(period=10, wcet=10)])
        assert len(model.client_tasksets[0]) == 2

    def test_default_margin_matches_composition_default(self):
        model = _model()
        assert model.deadline_margin == default_deadline_margin(model.topology)

    def test_from_seed_is_deterministic(self):
        a, b = _model(), _model()
        assert dict(a.client_tasksets) == dict(b.client_tasksets)
        assert a.baseline.interfaces == b.baseline.interfaces

    def test_from_seed_rejects_empty_system(self):
        with pytest.raises(ConfigurationError):
            SystemModel.from_seed(0)

    def test_describe_is_json_shaped(self):
        import json

        summary = _model().describe()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["n_clients"] == 16
        assert summary["baseline_schedulable"] is True

    def test_pickle_round_trip_preserves_answers(self):
        model = _model()
        clone = pickle.loads(pickle.dumps(model))
        assert dict(clone.client_tasksets) == dict(model.client_tasksets)
        assert clone.baseline.interfaces == model.baseline.interfaces
        assert (
            clone.session().probe(3, SMALL).admitted
            == model.session().probe(3, SMALL).admitted
        )


class TestAdmissionSession:
    def test_probe_matches_can_admit(self):
        model = _model()
        session = model.session()
        for task in (SMALL, HEAVY):
            expected_ok, expected = can_admit(
                model.baseline,
                dict(model.client_tasksets),
                3,
                task,
                cache=AnalysisCache(),
            )
            decision = session.probe(3, task)
            assert decision.admitted == expected_ok
            assert decision.composition.interfaces == expected.interfaces

    def test_probe_does_not_mutate_state(self):
        session = _model().session()
        before = session.tasksets
        session.probe(3, SMALL)
        session.probe(3, HEAVY)
        assert session.tasksets == before
        assert session.composition is session.model.baseline

    def test_admit_commits_and_evict_rolls_back(self):
        model = _model()
        session = model.session()
        decision = session.admit(3, SMALL)
        assert decision.admitted and decision.committed
        assert len(session.tasksets[3]) == len(model.client_tasksets[3]) + 1
        assert session.composition is decision.composition
        evicted = session.evict(3)
        assert evicted.committed
        assert 3 not in session.tasksets
        session.reset()
        assert session.tasksets == dict(model.client_tasksets)
        assert session.composition is model.baseline

    def test_rejected_admit_leaves_state_untouched(self):
        session = _model().session()
        decision = session.admit(3, HEAVY)
        assert not decision.admitted
        assert not decision.committed
        assert decision.witness is not None
        assert session.composition is session.model.baseline

    def test_witness_carries_the_numbers(self):
        decision = _model().session().probe(3, HEAVY)
        witness = decision.witness
        assert witness.client_id == 3
        assert witness.reason
        assert witness.submitted_utilization == HEAVY.utilization
        payload = witness.as_dict()
        assert payload["root_bandwidth"] > 1.0

    def test_admitted_decision_exposes_leaf_interface_and_path(self):
        model = _model()
        decision = model.session().probe(3, SMALL)
        leaf, port = model.topology.leaf_of_client(3)
        assert decision.interface == decision.composition.interface_for(
            leaf, port
        )
        hops = decision.path_interfaces()
        assert [node for node, _, _ in hops] == model.topology.path_to_root(3)
        assert hops[0][1] == port

    def test_client_range_validated(self):
        session = _model().session()
        with pytest.raises(ConfigurationError):
            session.probe(99, SMALL)
        with pytest.raises(ConfigurationError):
            session.probe(0, TaskSet())

    def test_scalar_and_vectorized_sessions_agree(self):
        model_v = _model(backend="vectorized")
        model_s = _model(backend="scalar")
        assert model_v.baseline.interfaces == model_s.baseline.interfaces
        for task in (SMALL, HEAVY):
            dv = model_v.session().probe(5, task)
            ds = model_s.session().probe(5, task)
            assert dv.admitted == ds.admitted
            assert dv.composition.interfaces == ds.composition.interfaces

    def test_sessions_share_the_model_cache(self):
        model = _model()
        first = model.session()
        first.probe(3, SMALL)
        warm = model.cache.stats_snapshot()
        second = model.session()
        decision = second.probe(3, SMALL)
        after = model.cache.stats_snapshot()
        assert decision.admitted
        # the second session's identical probe is answered from cache
        assert after.selection_misses == warm.selection_misses

    def test_concurrent_admits_serialize(self):
        model = _model(n_clients=16)
        session = model.session()
        outcomes = []
        barrier = threading.Barrier(4)

        def worker(client: int) -> None:
            barrier.wait()
            outcomes.append(session.admit(client, SMALL))

        threads = [
            threading.Thread(target=worker, args=(c,)) for c in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(o.admitted for o in outcomes)
        for client in range(4):
            assert len(session.tasksets[client]) == len(
                model.client_tasksets[client]
            ) + 1
        assert session.composition.schedulable

    def test_breakdown_and_slack_views(self):
        session = _model().session()
        breakdown = session.breakdown(precision=0.1)
        assert breakdown.scale >= 1.0
        slack = session.slack()
        assert set(slack) == set(session.tasksets)
        assert all(value > -1.0 for value in slack.values())

    def test_session_context_overrides(self):
        model = _model()
        own_cache = AnalysisCache()
        session = AdmissionSession(model, cache=own_cache, backend="scalar")
        assert session.context.backend == "scalar"
        assert session.context.cache is own_cache
        assert session.probe(3, SMALL).admitted
        assert own_cache.stats.lookups > 0
