"""Tests for the WCRT analysis (supply inverse, Spuri-on-sbf, holistic)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.composition import compose
from repro.analysis.prm import ResourceInterface, sbf
from repro.analysis.response_time import (
    busy_period_length,
    end_to_end_bound,
    holistic_response_bounds,
    supply_inverse,
    wcrt_on_interface,
)
from repro.errors import ConfigurationError, InfeasibleError
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.topology import quadtree

interfaces = st.builds(
    lambda p, b: ResourceInterface(p, min(max(b, 1), p)),
    st.integers(1, 40),
    st.integers(1, 40),
)


class TestSupplyInverse:
    def test_zero_demand_is_instant(self):
        assert supply_inverse(0, ResourceInterface(10, 3)) == 0

    def test_full_bandwidth_is_identity(self):
        iface = ResourceInterface(5, 5)
        for demand in (1, 4, 17):
            assert supply_inverse(demand, iface) == demand

    def test_single_unit_spans_blackout(self):
        # (10, 3): blackout 2*(10-3)=14, then one unit at 15
        assert supply_inverse(1, ResourceInterface(10, 3)) == 15

    def test_zero_budget_rejected(self):
        with pytest.raises(InfeasibleError):
            supply_inverse(1, ResourceInterface(10, 0))

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            supply_inverse(-1, ResourceInterface(10, 3))

    @given(iface=interfaces, demand=st.integers(1, 200))
    @settings(max_examples=80)
    def test_closed_form_matches_linear_scan(self, iface, demand):
        """supply_inverse is the exact inverse of sbf."""
        t = supply_inverse(demand, iface)
        assert sbf(t, iface) >= demand
        assert sbf(t - 1, iface) < demand


class TestBusyPeriod:
    def test_empty_taskset(self):
        assert busy_period_length(TaskSet(), ResourceInterface(4, 2)) == 0

    def test_light_load_short_busy_period(self):
        taskset = TaskSet([PeriodicTask(period=100, wcet=1)])
        length = busy_period_length(taskset, ResourceInterface(2, 1))
        assert length == supply_inverse(1, ResourceInterface(2, 1))

    def test_jitter_extends_busy_period(self):
        taskset = TaskSet(
            [PeriodicTask(period=10, wcet=3, name="a"),
             PeriodicTask(period=15, wcet=4, name="b")]
        )
        iface = ResourceInterface(2, 2)
        plain = busy_period_length(taskset, iface)
        jittered = busy_period_length(taskset, iface, {"a": 30, "b": 30})
        assert jittered >= plain

    def test_overload_raises(self):
        taskset = TaskSet([PeriodicTask(period=4, wcet=3)])  # U = 0.75
        with pytest.raises(InfeasibleError):
            busy_period_length(taskset, ResourceInterface(2, 1))  # bw 0.5


class TestWcrtOnInterface:
    def test_single_task_full_resource(self):
        task = PeriodicTask(period=20, wcet=5, name="t")
        wcrt = wcrt_on_interface(task, TaskSet([task]), ResourceInterface(1, 1))
        assert wcrt == 5  # runs alone at full speed

    def test_single_task_throttled(self):
        task = PeriodicTask(period=40, wcet=4, name="t")
        iface = ResourceInterface(10, 2)
        wcrt = wcrt_on_interface(task, TaskSet([task]), iface)
        assert wcrt == supply_inverse(4, iface)

    def test_interference_raises_wcrt(self):
        victim = PeriodicTask(period=50, wcet=2, name="v")
        noisy = PeriodicTask(period=40, wcet=8, name="n")
        alone = wcrt_on_interface(
            victim, TaskSet([victim]), ResourceInterface(4, 2)
        )
        contended = wcrt_on_interface(
            victim, TaskSet([victim, noisy]), ResourceInterface(4, 2)
        )
        assert contended > alone

    def test_deadline_coincidence_offset_found(self):
        """The asynchronous worst case (interferer due just before the
        analyzed job) must be covered — a pure synchronous analysis
        under-estimates this instance."""
        light = PeriodicTask(period=311, wcet=1, name="light")
        burst = PeriodicTask(period=357, wcet=8, name="burst")
        iface = ResourceInterface(31, 1)
        wcrt = wcrt_on_interface(light, TaskSet([light, burst]), iface)
        # released just after the burst with a barely-later deadline, the
        # light job waits for all 9 units: supply_inverse(9) - offset 47
        assert wcrt >= supply_inverse(9, iface) - 47

    def test_jitter_increases_wcrt(self):
        victim = PeriodicTask(period=60, wcet=2, name="v")
        other = PeriodicTask(period=50, wcet=5, name="n")
        taskset = TaskSet([victim, other])
        iface = ResourceInterface(5, 2)
        plain = wcrt_on_interface(victim, taskset, iface)
        jittered = wcrt_on_interface(victim, taskset, iface, {"n": 45})
        assert jittered >= plain

    def test_unschedulable_pair_rejected(self):
        task = PeriodicTask(period=10, wcet=4, name="t")
        with pytest.raises(InfeasibleError):
            wcrt_on_interface(task, TaskSet([task]), ResourceInterface(10, 4))

    def test_wcrt_at_most_deadline_when_schedulable(self):
        rng = random.Random(8)
        for _ in range(10):
            period = rng.randint(20, 80)
            wcet = rng.randint(1, 6)
            task = PeriodicTask(period=period, wcet=wcet, name="t")
            iface = ResourceInterface(8, 4)
            try:
                wcrt = wcrt_on_interface(task, TaskSet([task]), iface)
            except InfeasibleError:
                continue
            assert wcrt <= task.deadline


class TestHolisticBounds:
    @pytest.fixture(scope="class")
    def system(self):
        rng = random.Random(5)
        tasksets = generate_client_tasksets(rng, 16, 2, 0.5)
        composition = compose(quadtree(16), tasksets)
        assert composition.schedulable
        return tasksets, composition

    def test_bounds_for_every_client_task(self, system):
        tasksets, composition = system
        bounds = holistic_response_bounds(tasksets, composition)
        assert sorted(bounds) == sorted(tasksets)
        for client, bound in bounds.items():
            for task in tasksets[client]:
                assert bound.bound_for(task.name) > 0

    def test_levels_match_tree_depth(self, system):
        tasksets, composition = system
        bounds = holistic_response_bounds(tasksets, composition)
        depth = composition.topology.depth
        for bound in bounds.values():
            assert len(bound.level_wcrt) == depth + 1

    def test_end_to_end_bound_single_client(self, system):
        tasksets, composition = system
        full = holistic_response_bounds(tasksets, composition)
        single = end_to_end_bound(3, tasksets, composition)
        for task in tasksets[3]:
            assert single.bound_for(task.name) == full[3].bound_for(task.name)

    def test_rejects_unknown_client(self, system):
        tasksets, composition = system
        with pytest.raises(ConfigurationError):
            end_to_end_bound(999, tasksets, composition)

    def test_bound_exceeds_path_latency(self, system):
        tasksets, composition = system
        bounds = holistic_response_bounds(tasksets, composition)
        for client, bound in bounds.items():
            for task in tasksets[client]:
                assert bound.bound_for(task.name) > bound.path_latency
