"""Analysis ⟷ simulator cross-validation (both engine backends).

Two directions, on seeded small topologies:

* **soundness of the bounds** — every *simulated* worst-case observed
  response time stays at or below the analytical bound from
  :mod:`repro.analysis.response_time`;
* **soundness of admission** — a task system the composition declares
  schedulable never misses a deadline in simulation.

Each scenario is analyzed with *both* backends first (and the two
compositions asserted identical), so a divergence between engine paths
would surface here as well as in the property suite.
"""

import random

import pytest

from repro.analysis import AnalysisCache, compose
from repro.analysis.cache import DISABLED
from repro.analysis.response_time import holistic_response_bounds
from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.topology import quadtree

#: (n_clients, utilization, seed) — all seeds chosen so the drawn
#: system composes (the admission direction needs schedulable systems;
#: asserted below so a generator change cannot silently vacuate them)
SCENARIOS = [
    (4, 0.30, 11),
    (4, 0.45, 12),
    (8, 0.30, 13),
    (8, 0.40, 14),
]


def _compose_both_backends(topology, tasksets):
    """Compose under both backends; assert they agree; return one."""
    scalar = compose(topology, tasksets, backend="scalar", cache=DISABLED)
    vectorized = compose(
        topology, tasksets, backend="vectorized", cache=AnalysisCache()
    )
    assert vectorized.interfaces == scalar.interfaces
    assert vectorized.schedulable == scalar.schedulable
    assert vectorized.root_bandwidth == scalar.root_bandwidth
    return vectorized


def _simulate(tasksets, composition, n_clients, fast_path, horizon=6_000):
    interconnect = BlueScaleInterconnect(n_clients)
    interconnect.apply_composition(composition)
    clients = [
        TrafficGenerator(c, ts, rng=random.Random(1000 + c))
        for c, ts in tasksets.items()
    ]
    trial = SoCSimulation(clients, interconnect, fast_path=fast_path).run(
        horizon, drain=3_000
    )
    return trial, clients


@pytest.mark.parametrize("n_clients,utilization,seed", SCENARIOS)
@pytest.mark.parametrize("fast_path", [True, False])
class TestCrossValidation:
    def test_schedulable_system_never_misses(
        self, n_clients, utilization, seed, fast_path
    ):
        rng = random.Random(seed)
        tasksets = generate_client_tasksets(rng, n_clients, 2, utilization)
        composition = _compose_both_backends(quadtree(n_clients), tasksets)
        assert composition.schedulable, (
            "scenario seed no longer composes — pick a seed that does, "
            "or the admission direction of this suite tests nothing"
        )
        trial, _ = _simulate(tasksets, composition, n_clients, fast_path)
        assert trial.deadline_miss_ratio == 0.0

    def test_observed_responses_within_analytical_bounds(
        self, n_clients, utilization, seed, fast_path
    ):
        rng = random.Random(seed)
        tasksets = generate_client_tasksets(rng, n_clients, 2, utilization)
        composition = _compose_both_backends(quadtree(n_clients), tasksets)
        assert composition.schedulable
        trial, clients = _simulate(
            tasksets, composition, n_clients, fast_path
        )
        bounds = holistic_response_bounds(tasksets, composition)
        checked = 0
        for client in clients:
            for job in client.jobs:
                if not job.finished:
                    continue
                observed = job.last_completion - job.release
                assert observed <= bounds[client.client_id].bound_for(
                    job.task_name
                ), (
                    f"client {client.client_id} task {job.task_name}: "
                    f"observed {observed} > analytical bound"
                )
                checked += 1
        assert checked > 0, "no finished jobs — the bound check was vacuous"
