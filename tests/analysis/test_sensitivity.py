"""Tests for the sensitivity / admission analysis."""

import random

import pytest

from repro.analysis.cache import AnalysisCache
from repro.analysis.composition import compose
from repro.analysis.sensitivity import (
    breakdown_scale,
    breakdown_utilization,
    can_admit,
    slack_per_client,
)
from repro.errors import ConfigurationError
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.topology import quadtree


def light_system(n_clients=16, utilization=0.3, seed=5):
    rng = random.Random(seed)
    tasksets = generate_client_tasksets(rng, n_clients, 2, utilization)
    topology = quadtree(n_clients)
    return topology, tasksets


class TestBreakdown:
    def test_breakdown_scale_above_one_for_light_load(self):
        topology, tasksets = light_system(utilization=0.2)
        result = breakdown_scale(topology, tasksets, precision=0.05)
        assert result.scale > 1.5
        assert result.composition.schedulable

    def test_scaled_past_breakdown_is_unschedulable(self):
        topology, tasksets = light_system(utilization=0.3)
        result = breakdown_scale(topology, tasksets, precision=0.05)
        over = {
            client: taskset.scaled(result.scale * 1.2)
            for client, taskset in tasksets.items()
        }
        assert not compose(topology, over).schedulable

    def test_breakdown_utilization_below_one(self):
        topology, tasksets = light_system(utilization=0.3)
        ceiling = breakdown_utilization(topology, tasksets, precision=0.05)
        assert 0.3 < ceiling <= 1.0

    def test_unschedulable_base_rejected(self):
        topology, tasksets = light_system(utilization=0.3)
        heavy = {c: ts.scaled(10.0) for c, ts in tasksets.items()}
        with pytest.raises(ConfigurationError):
            breakdown_scale(topology, heavy)

    def test_bad_precision_rejected(self):
        topology, tasksets = light_system()
        with pytest.raises(ConfigurationError):
            breakdown_scale(topology, tasksets, precision=0)

    def test_two_level_tree_has_higher_ceiling_than_three_level(self):
        """Composition overhead grows with depth: the 16-client system
        admits more utilization than a 64-client one."""
        topo16, ts16 = light_system(16, 0.25, seed=7)
        rng = random.Random(7)
        ts64 = generate_client_tasksets(rng, 64, 2, 0.25)
        ceiling16 = breakdown_utilization(topo16, ts16, precision=0.1)
        ceiling64 = breakdown_utilization(quadtree(64), ts64, precision=0.1)
        assert ceiling16 > ceiling64


class TestAdmission:
    def test_small_task_admitted(self):
        topology, tasksets = light_system(utilization=0.3)
        baseline = compose(topology, tasksets)
        admitted, updated = can_admit(
            baseline,
            tasksets,
            client_id=5,
            task=PeriodicTask(period=1000, wcet=1, name="tiny"),
        )
        assert admitted
        assert updated.schedulable

    def test_huge_task_rejected(self):
        topology, tasksets = light_system(utilization=0.5)
        baseline = compose(topology, tasksets)
        admitted, updated = can_admit(
            baseline,
            tasksets,
            client_id=5,
            task=PeriodicTask(period=100, wcet=90, name="hog"),
        )
        assert not admitted
        assert not updated.schedulable

    def test_admission_does_not_mutate_inputs(self):
        topology, tasksets = light_system(utilization=0.3)
        baseline = compose(topology, tasksets)
        sizes = {c: len(ts) for c, ts in tasksets.items()}
        can_admit(
            baseline, tasksets, 3, PeriodicTask(period=500, wcet=2, name="x")
        )
        assert {c: len(ts) for c, ts in tasksets.items()} == sizes

    def test_admitting_to_empty_client(self):
        topology, tasksets = light_system(utilization=0.3)
        del tasksets[7]
        baseline = compose(topology, tasksets)
        admitted, updated = can_admit(
            baseline,
            tasksets,
            client_id=7,
            task=PeriodicTask(period=400, wcet=2, name="newcomer"),
        )
        assert admitted
        leaf, port = topology.leaf_of_client(7)
        assert updated.interfaces[leaf][port].budget > 0


class TestSlack:
    def test_slack_positive_when_schedulable(self):
        topology, tasksets = light_system(utilization=0.3)
        composition = compose(topology, tasksets)
        slack = slack_per_client(composition, tasksets)
        assert sorted(slack) == sorted(tasksets)
        assert all(value > -1e9 for value in slack.values())
        # at least the lightest client has real head-room
        assert max(slack.values()) > 0

    def test_heavier_client_has_less_slack(self):
        topology = quadtree(4)
        tasksets = {
            0: TaskSet([PeriodicTask(period=100, wcet=30, name="big", client_id=0)]),
            1: TaskSet([PeriodicTask(period=100, wcet=2, name="small", client_id=1)]),
        }
        composition = compose(topology, tasksets)
        slack = slack_per_client(composition, tasksets)
        # the selected interfaces track demand, so both have bounded
        # slack; the comparison that matters: scaled-up demand shrinks it
        heavier = {
            0: tasksets[0].scaled(1.5),
            1: tasksets[1],
        }
        re_comp = compose(topology, heavier)
        re_slack = slack_per_client(re_comp, heavier)
        assert re_slack[0] <= slack[0] + 0.05

    def test_empty_clients_skipped(self):
        topology, tasksets = light_system(utilization=0.3)
        tasksets[2] = TaskSet()
        composition = compose(topology, tasksets)
        slack = slack_per_client(composition, tasksets)
        assert 2 not in slack


class TestBreakdownCacheReuse:
    """Regression for the per-perturbation re-derivation bug: every
    probe of a breakdown search used to recompose unchanged subtrees
    from scratch.  The search now routes all probes through one
    :class:`AnalysisCache`; these tests pin that the caching is (a)
    output-transparent and (b) actually happening."""

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_breakdown_identical_with_and_without_cache(self, backend):
        topology, tasksets = light_system(utilization=0.25)
        cold = breakdown_scale(
            topology,
            tasksets,
            precision=0.05,
            backend=backend,
            cache=AnalysisCache(enabled=False),
        )
        cache = AnalysisCache()
        warm = breakdown_scale(
            topology,
            tasksets,
            precision=0.05,
            backend=backend,
            cache=cache,
        )
        assert warm.scale == cold.scale
        assert warm.composition.interfaces == cold.composition.interfaces
        assert (
            warm.composition.root_bandwidth == cold.composition.root_bandwidth
        )
        # the probes really did share selections across sweep points
        assert cache.stats.selection_hits > 0

    def test_breakdown_utilization_identical_with_and_without_cache(self):
        topology, tasksets = light_system(utilization=0.25)
        cold = breakdown_utilization(
            topology,
            tasksets,
            precision=0.1,
            cache=AnalysisCache(enabled=False),
        )
        cache = AnalysisCache()
        warm = breakdown_utilization(
            topology, tasksets, precision=0.1, cache=cache
        )
        assert warm == cold
        assert cache.stats.selection_hits > 0
