"""Unit and property tests for the periodic resource model (sbf/dbf)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.prm import (
    ResourceInterface,
    dbf,
    dbf_step_points,
    dbf_task,
    sbf,
    sbf_linear_lower_bound,
)
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet

interfaces = st.builds(
    lambda p, b: ResourceInterface(p, min(b, p)),
    st.integers(1, 60),
    st.integers(0, 60),
)


class TestResourceInterface:
    def test_bandwidth_exact(self):
        assert ResourceInterface(10, 3).bandwidth == Fraction(3, 10)

    def test_rejects_budget_above_period(self):
        with pytest.raises(ConfigurationError):
            ResourceInterface(5, 6)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            ResourceInterface(0, 0)

    def test_zero_budget_allowed(self):
        assert ResourceInterface(4, 0).bandwidth == 0

    def test_as_server_task(self):
        server = ResourceInterface(20, 5).as_server_task(name="srv")
        assert server.period == 20
        assert server.wcet == 5

    def test_zero_budget_has_no_server_task(self):
        with pytest.raises(ConfigurationError):
            ResourceInterface(5, 0).as_server_task()


class TestSbfKnownValues:
    """Worked examples of the Shin & Lee formula quoted in Sec. 5."""

    def test_zero_before_blackout(self):
        # (Pi=10, Theta=3): no supply guaranteed before 2(Pi-Theta)=14.
        iface = ResourceInterface(10, 3)
        for t in range(0, 15):
            assert sbf(t, iface) == 0, t

    def test_supply_after_blackout(self):
        iface = ResourceInterface(10, 3)
        # t=15: t'=8, floor=0, eps=max(8-0-7,0)=1
        assert sbf(15, iface) == 1
        assert sbf(17, iface) == 3
        # a whole extra period adds exactly Theta
        assert sbf(27, iface) == 6

    def test_full_bandwidth_resource(self):
        iface = ResourceInterface(5, 5)
        for t in (0, 1, 7, 100):
            assert sbf(t, iface) == t

    def test_zero_budget_supplies_nothing(self):
        iface = ResourceInterface(7, 0)
        assert sbf(1000, iface) == 0

    def test_negative_t_rejected(self):
        with pytest.raises(ConfigurationError):
            sbf(-1, ResourceInterface(10, 3))


class TestSbfProperties:
    @given(iface=interfaces, t=st.integers(0, 500))
    def test_sbf_bounded_by_time_and_ideal(self, iface, t):
        value = sbf(t, iface)
        assert 0 <= value <= t
        # cannot exceed the long-run share plus one budget chunk
        assert value <= iface.bandwidth_float * t + iface.budget + 1e-9

    @given(iface=interfaces, t=st.integers(0, 300))
    def test_sbf_monotone_nondecreasing(self, iface, t):
        assert sbf(t + 1, iface) >= sbf(t, iface)

    @given(iface=interfaces, t=st.integers(0, 300))
    def test_sbf_lipschitz_one(self, iface, t):
        # supply grows at most one unit per time unit
        assert sbf(t + 1, iface) - sbf(t, iface) <= 1

    @given(iface=interfaces, t=st.integers(0, 400))
    def test_sbf_dominates_linear_lower_bound(self, iface, t):
        # the bound used in the proof of Theorem 1
        assert Fraction(sbf(t, iface)) >= sbf_linear_lower_bound(t, iface)

    @given(iface=interfaces, k=st.integers(0, 5), t=st.integers(0, 100))
    def test_sbf_periodicity(self, iface, k, t):
        # beyond the initial blackout (t' >= 0), shifting by k whole
        # periods adds exactly k budgets
        t += iface.period - iface.budget
        assert (
            sbf(t + k * iface.period, iface) == sbf(t, iface) + k * iface.budget
        )


class TestDbf:
    def test_single_task_steps_at_periods(self):
        task = PeriodicTask(period=10, wcet=3)
        assert dbf_task(9, task) == 0
        assert dbf_task(10, task) == 3
        assert dbf_task(19, task) == 3
        assert dbf_task(20, task) == 6

    def test_taskset_sums(self, small_taskset):
        assert dbf(100, small_taskset) == 2 * 4 + 10

    def test_empty_taskset_zero(self):
        assert dbf(1000, TaskSet()) == 0

    def test_negative_t_rejected(self):
        with pytest.raises(ConfigurationError):
            dbf_task(-5, PeriodicTask(period=10, wcet=1))

    @given(
        period=st.integers(1, 50),
        wcet=st.integers(1, 50),
        t=st.integers(0, 500),
    )
    @settings(max_examples=60)
    def test_dbf_below_utilization_line_plus_jitter(self, period, wcet, t):
        wcet = min(wcet, period)
        task = PeriodicTask(period=period, wcet=wcet)
        # floor(t/T)*C <= (t/T)*C
        assert dbf_task(t, task) <= t * wcet / period + 1e-9

    @given(period=st.integers(1, 30), wcet=st.integers(1, 30), t=st.integers(0, 200))
    def test_dbf_monotone(self, period, wcet, t):
        task = PeriodicTask(period=period, wcet=min(wcet, period))
        assert dbf_task(t + 1, task) >= dbf_task(t, task)


class TestDbfStepPoints:
    def test_step_points_are_period_multiples(self, small_taskset):
        points = dbf_step_points(small_taskset, 200)
        assert points == sorted(set(points))
        assert all(p % 40 == 0 or p % 100 == 0 for p in points)
        assert 40 in points and 100 in points
        # The scan covers (0, horizon]: a horizon landing exactly on a
        # demand step (200 = 5·40 = 2·100) must be included — Theorem
        # 1's bound β is part of the range the theorem requires.
        assert all(0 < p <= 200 for p in points)
        assert 200 in points

    def test_horizon_on_step_is_included(self, small_taskset):
        # Regression for the Theorem-1 boundary bug: with the old
        # exclusive scan (`while multiple < horizon`) a horizon equal
        # to a period multiple silently dropped the boundary point.
        assert 40 in dbf_step_points(small_taskset, 40)
        assert dbf_step_points(small_taskset, 39) == []

    def test_captures_every_dbf_change(self, small_taskset):
        points = set(dbf_step_points(small_taskset, 250))
        previous = dbf(0, small_taskset)
        for t in range(1, 251):
            current = dbf(t, small_taskset)
            if current != previous:
                assert t in points, f"dbf changed at {t} but not a step point"
            previous = current
