"""Property tests: the vectorized engine against the scalar oracle.

The vectorized backend's contract is *bit-identical results* — not
approximately equal, identical — so every property here is an exact
comparison on randomized tasksets and interfaces:

* pointwise dbf/sbf equality between the array evaluators and the
  scalar formulas;
* sbf is monotone in t and consistent with superadditivity of supply;
* the step grid's points are exactly the instants where dbf changes;
* full :func:`is_schedulable` result equality (witnesses included) and
  :func:`select_interface` equality between backends;
* a cache hit returns the *same object* the cold path produced.
"""

import random
from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AnalysisCache,
    is_schedulable,
    select_interface,
    taskset_key,
)
from repro.analysis.cache import DISABLED
from repro.analysis.prm import ResourceInterface, dbf, dbf_step_points, sbf
from repro.analysis.vectorized import (
    StepGrid,
    dbf_values,
    grid_for,
    sbf_values,
    schedulable_many,
)
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def random_taskset(seed: int, max_tasks: int = 6, max_period: int = 400):
    rng = random.Random(seed)
    tasks = []
    for index in range(rng.randint(1, max_tasks)):
        period = rng.randint(2, max_period)
        wcet = rng.randint(1, max(1, period // rng.randint(2, 10)))
        tasks.append(PeriodicTask(period=period, wcet=wcet, name=f"t{index}"))
    return TaskSet(tasks)


def random_interface(seed: int, max_period: int = 250):
    rng = random.Random(seed ^ 0x5EED)
    period = rng.randint(1, max_period)
    return ResourceInterface(period, rng.randint(0, period))


class TestPointwiseEquality:
    @given(seed=st.integers(0, 10_000), horizon=st.integers(1, 1_500))
    @settings(max_examples=60, deadline=None)
    def test_dbf_values_match_scalar(self, seed, horizon):
        taskset = random_taskset(seed)
        ts = np.arange(1, horizon + 1, dtype=np.int64)
        values = dbf_values(ts, taskset)
        for t, value in zip(ts, values):
            assert int(value) == dbf(int(t), taskset)

    @given(seed=st.integers(0, 10_000), horizon=st.integers(1, 1_500))
    @settings(max_examples=60, deadline=None)
    def test_sbf_values_match_scalar(self, seed, horizon):
        interface = random_interface(seed)
        ts = np.arange(0, horizon + 1, dtype=np.int64)
        values = sbf_values(ts, interface.period, interface.budget)
        for t, value in zip(ts, values):
            assert int(value) == sbf(int(t), interface)


class TestSupplyShape:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_sbf_monotone_in_t(self, seed):
        interface = random_interface(seed)
        ts = np.arange(0, 1_000, dtype=np.int64)
        values = sbf_values(ts, interface.period, interface.budget)
        assert np.all(np.diff(values) >= 0)

    @given(
        seed=st.integers(0, 10_000),
        t1=st.integers(0, 500),
        t2=st.integers(0, 500),
    )
    @settings(max_examples=60, deadline=None)
    def test_sbf_superadditive_consistent(self, seed, t1, t2):
        """sbf(t1 + t2) >= sbf(t1) + sbf(t2): splitting an interval can
        only add blackout, never supply — the guarantee composition
        leans on when it stacks child servers inside parent budgets."""
        interface = random_interface(seed)
        ts = np.array([t1, t2, t1 + t2], dtype=np.int64)
        s1, s2, joint = sbf_values(ts, interface.period, interface.budget)
        assert joint >= s1 + s2


class TestStepGrid:
    @given(seed=st.integers(0, 10_000), horizon=st.integers(1, 2_000))
    @settings(max_examples=60, deadline=None)
    def test_grid_points_are_exactly_the_demand_steps(self, seed, horizon):
        """The grid's points are precisely where dbf changes value —
        the same (Theorem-1) set the scalar scan walks, no more, no
        less."""
        taskset = random_taskset(seed)
        grid = StepGrid(taskset)
        ts, _ = grid.upto(horizon)
        assert list(int(t) for t in ts) == dbf_step_points(taskset, horizon)
        changes = [
            t
            for t in range(1, horizon + 1)
            if dbf(t, taskset) != dbf(t - 1, taskset)
        ]
        assert set(changes) <= set(int(t) for t in ts)

    @given(seed=st.integers(0, 10_000), horizon=st.integers(1, 2_000))
    @settings(max_examples=40, deadline=None)
    def test_grid_demands_match_dbf(self, seed, horizon):
        taskset = random_taskset(seed)
        ts, demands = StepGrid(taskset).upto(horizon)
        for t, demand in zip(ts, demands):
            assert int(demand) == dbf(int(t), taskset)


class TestBackendEquality:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=120, deadline=None)
    def test_is_schedulable_full_result_equal(self, seed):
        taskset = random_taskset(seed)
        interface = random_interface(seed)
        scalar = is_schedulable(taskset, interface, backend="scalar")
        vectorized = is_schedulable(
            taskset, interface, backend="vectorized", cache=AnalysisCache()
        )
        assert scalar == vectorized  # witnesses and test bound included

    @given(
        seed=st.integers(0, 50_000),
        sibling=st.fractions(
            min_value=0, max_value=Fraction(3, 4), max_denominator=16
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_select_interface_equal(self, seed, sibling):
        taskset = random_taskset(seed, max_tasks=4, max_period=300)
        def run(backend, cache):
            try:
                return select_interface(
                    taskset, sibling, backend=backend, cache=cache
                )
            except Exception as exc:  # InfeasibleError etc: compare type
                return type(exc).__name__

        assert run("scalar", DISABLED) == run("vectorized", AnalysisCache())

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_schedulable_many_matches_single_tests(self, seed):
        taskset = random_taskset(seed, max_tasks=4)
        utilization = taskset.utilization
        rng = random.Random(seed ^ 0xBA7C4)
        interfaces = []
        for _ in range(rng.randint(1, 8)):
            period = rng.randint(1, 200)
            floor = int(utilization * period) + 1
            if floor > period:
                continue
            interfaces.append((period, rng.randint(floor, period)))
        verdicts = schedulable_many(taskset, interfaces, AnalysisCache())
        for (period, budget), verdict in zip(interfaces, verdicts):
            expected = is_schedulable(
                taskset, ResourceInterface(period, budget), backend="scalar"
            ).schedulable
            assert verdict == expected


class TestFallbackPaths:
    """Force the engine's degenerate regimes — the lazy heap-merged
    scan (grid point budget exhausted) and tiny broadcast chunks — and
    require exact scalar equality there too."""

    def test_lazy_scan_matches_scalar(self, monkeypatch):
        import repro.analysis.vectorized as vectorized_module

        monkeypatch.setattr(vectorized_module, "MAX_GRID_POINTS", 8)
        for seed in range(300):
            taskset = random_taskset(seed, max_tasks=3, max_period=60)
            interface = random_interface(seed, max_period=50)
            scalar = is_schedulable(taskset, interface, backend="scalar")
            lazy = is_schedulable(
                taskset, interface, backend="vectorized", cache=AnalysisCache()
            )
            assert scalar == lazy

    def test_tiny_chunks_match_scalar_selection(self, monkeypatch):
        import repro.analysis.vectorized as vectorized_module

        monkeypatch.setattr(vectorized_module, "MAX_BATCH_CELLS", 16)
        for seed in range(12):
            taskset = random_taskset(seed, max_tasks=3, max_period=120)
            if taskset.utilization >= 1:
                continue
            scalar = select_interface(
                taskset, backend="scalar", cache=DISABLED
            )
            chunked = select_interface(
                taskset, backend="vectorized", cache=AnalysisCache()
            )
            assert chunked == scalar


class TestCacheTransparency:
    @given(
        seed=st.integers(0, 50_000),
        sibling=st.fractions(
            min_value=0, max_value=Fraction(1, 2), max_denominator=8
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_cache_hit_is_bit_identical_to_cold_path(self, seed, sibling):
        taskset = random_taskset(seed, max_tasks=4, max_period=300)
        if taskset.utilization >= 1:
            return
        cache = AnalysisCache()
        try:
            cold = select_interface(
                taskset, sibling, backend="vectorized", cache=cache
            )
        except Exception:
            return  # infeasible draws carry nothing to memoize
        hits_before = cache.stats.selection_hits
        warm = select_interface(
            taskset, sibling, backend="vectorized", cache=cache
        )
        assert warm == cold
        assert warm is cold  # the memo returns the stored object itself
        assert cache.stats.selection_hits == hits_before + 1

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=30, deadline=None)
    def test_grid_cache_returns_same_grid(self, seed):
        taskset = random_taskset(seed)
        cache = AnalysisCache()
        first = grid_for(taskset, cache)
        again = grid_for(taskset, cache)
        assert again is first
        assert cache.stats.grid_hits == 1
        # a name-permuted but (T, C)-identical task set shares the grid
        renamed = TaskSet(
            [
                PeriodicTask(period=t.period, wcet=t.wcet, name=f"x{i}")
                for i, t in enumerate(taskset)
            ]
        )
        assert taskset_key(renamed) == taskset_key(taskset)
        assert grid_for(renamed, cache) is first
