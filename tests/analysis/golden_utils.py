"""Shared builder/snapshot helpers for the golden interface fixtures.

Used by both the regression test (``test_golden_interfaces.py``) and
the regeneration script (``scripts/regen_golden.py interfaces``) so the
two can never drift apart on what a canonical system or snapshot is.
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.tasks.generators import generate_client_tasksets
from repro.topology import quadtree

#: the canonical topologies pinned by the fixture
GOLDEN_SIZES = (16, 32, 64)

FIXTURE_PATH = (
    Path(__file__).resolve().parent.parent
    / "fixtures"
    / "golden_interfaces.json"
)


def golden_system(n_clients: int):
    """The canonical (topology, tasksets) pair for one fixture size.

    The seed string pins the workload draw; changing it (or the
    generator) invalidates the fixture, which is exactly what the
    regression test should then report.
    """
    rng = random.Random(f"golden-ifc/{n_clients}")
    tasksets = generate_client_tasksets(rng, n_clients, 2, 0.3)
    return quadtree(n_clients), tasksets


def composition_snapshot(result) -> dict:
    """A JSON-stable snapshot of one composition's selected interfaces.

    ``(Π, Θ)`` per port per SE (node keys rendered ``"level/order"``),
    plus the verdict and the exact root bandwidth as a fraction string.
    """
    return {
        "schedulable": result.schedulable,
        "root_bandwidth": str(result.root_bandwidth),
        "interfaces": {
            f"{node[0]}/{node[1]}": [
                [interface.period, interface.budget]
                for interface in interfaces
            ]
            for node, interfaces in sorted(result.interfaces.items())
        },
    }
