"""Property-based tests of the hierarchical composition's internal
consistency on randomized workloads."""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.composition import (
    compose,
    default_deadline_margin,
    tighten_deadlines,
)
from repro.analysis.schedulability import is_schedulable
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.topology import quadtree


def random_tasksets(seed: int, n_clients: int, max_tasks: int = 2):
    rng = random.Random(seed)
    tasksets = {}
    for client in range(n_clients):
        if rng.random() < 0.2:
            continue  # some idle clients
        tasks = []
        for index in range(rng.randint(1, max_tasks)):
            period = rng.randint(60, 900)
            wcet = rng.randint(1, 6)
            tasks.append(
                PeriodicTask(
                    period=period, wcet=wcet, name=f"t{index}", client_id=client
                )
            )
        tasksets[client] = TaskSet(tasks)
    return tasksets


class TestCompositionConsistency:
    @given(
        seed=st.integers(0, 100_000),
        n_clients=st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=20, deadline=None)
    def test_schedulable_composition_is_internally_consistent(
        self, seed, n_clients
    ):
        """When compose() says schedulable:

        * every leaf port's interface schedules its (tightened) client
          task set;
        * every interior port's interface schedules its child's server
          tasks;
        * no SE's selected bandwidths sum above 1;
        * the root bandwidth equals the root SE's server sum.
        """
        topology = quadtree(n_clients)
        tasksets = random_tasksets(seed, n_clients)
        if not tasksets:
            return
        result = compose(topology, tasksets)
        if not result.schedulable:
            return
        margin = default_deadline_margin(topology)
        for client, taskset in tasksets.items():
            leaf, port = topology.leaf_of_client(client)
            interface = result.interfaces[leaf][port]
            tightened = tighten_deadlines(taskset, margin)
            assert is_schedulable(tightened, interface).schedulable, (
                seed, client
            )
        for node in result.interfaces:
            for port, child in enumerate(topology.children(node)):
                if child not in result.interfaces:
                    continue
                child_servers = result.server_taskset(child)
                if len(child_servers) == 0:
                    continue
                interface = result.interfaces[node][port]
                assert is_schedulable(child_servers, interface).schedulable, (
                    seed, node, port
                )
            assert result.node_bandwidth(node) <= 1, (seed, node)
        assert result.root_bandwidth == result.node_bandwidth((0, 0))

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_composition_is_deterministic(self, seed):
        topology = quadtree(8)
        tasksets = random_tasksets(seed, 8)
        if not tasksets:
            return
        first = compose(topology, tasksets)
        second = compose(topology, tasksets)
        assert first.interfaces == second.interfaces
        assert first.schedulable == second.schedulable

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_interface_bandwidth_covers_demand(self, seed):
        """Every selected (non-idle) interface's bandwidth strictly
        exceeds the utilization of the (tightened) demand behind it."""
        topology = quadtree(8)
        tasksets = random_tasksets(seed, 8)
        if not tasksets:
            return
        result = compose(topology, tasksets)
        if not result.schedulable:
            return
        margin = default_deadline_margin(topology)
        for client, taskset in tasksets.items():
            leaf, port = topology.leaf_of_client(client)
            interface = result.interfaces[leaf][port]
            tightened = tighten_deadlines(taskset, margin)
            assert interface.bandwidth > tightened.utilization - Fraction(
                1, 10**9
            )
