"""Tests for the thread-safe AnalysisCache: FIFO bounds, stats
semantics, the DISABLED sentinel, and concurrent-hammer integrity."""

import pickle
import threading
from fractions import Fraction

from repro.analysis.cache import (
    DISABLED,
    AnalysisCache,
    CacheStats,
    taskset_digest,
    taskset_key,
)
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def _selection_key(cache: AnalysisCache, i: int) -> tuple:
    return cache.selection_key(
        ((100 + i, 1),), Fraction(i, 7), (64, 1), "vectorized"
    )


class TestKeys:
    def test_key_is_order_and_metadata_insensitive(self):
        a = TaskSet(
            [
                PeriodicTask(period=100, wcet=2, name="a", client_id=1),
                PeriodicTask(period=50, wcet=1, name="b"),
            ]
        )
        b = TaskSet(
            [
                PeriodicTask(period=50, wcet=1, name="x", client_id=9),
                PeriodicTask(period=100, wcet=2),
            ]
        )
        assert taskset_key(a) == taskset_key(b)
        assert taskset_digest(a) == taskset_digest(b)

    def test_multiset_distinguishes_duplicates(self):
        one = TaskSet([PeriodicTask(period=100, wcet=2)])
        two = TaskSet(
            [
                PeriodicTask(period=100, wcet=2),
                PeriodicTask(period=100, wcet=2),
            ]
        )
        assert taskset_key(one) != taskset_key(two)


class TestFifoEviction:
    def test_selection_table_bounded_fifo(self):
        cache = AnalysisCache(max_selections=4, max_grids=4)
        for i in range(10):
            cache.put_selection(_selection_key(cache, i), f"sel{i}")
        assert len(cache) == 4
        # the four newest insertions survive, the oldest six are gone
        assert cache.get_selection(_selection_key(cache, 9)) == "sel9"
        assert cache.get_selection(_selection_key(cache, 6)) == "sel6"
        assert cache.get_selection(_selection_key(cache, 5)) is None

    def test_interleaved_selection_and_grid_inserts_bound_each_table(self):
        cache = AnalysisCache(max_selections=3, max_grids=2)
        for i in range(8):
            cache.put_selection(_selection_key(cache, i), f"sel{i}")
            cache.put_grid(((200 + i, 1),), f"grid{i}")
        # bounds are per table, not shared
        assert len(cache) == 3 + 2
        assert cache.get_grid(((207, 1),)) == "grid7"
        assert cache.get_grid(((205, 1),)) is None

    def test_reinserting_existing_key_at_capacity_evicts_nothing(self):
        cache = AnalysisCache(max_selections=2, max_grids=2)
        first = _selection_key(cache, 0)
        second = _selection_key(cache, 1)
        cache.put_selection(first, "a")
        cache.put_selection(second, "b")
        cache.put_selection(first, "a2")  # overwrite, table already full
        assert cache.get_selection(first) == "a2"
        assert cache.get_selection(second) == "b"


class TestStats:
    def test_stats_survive_clear(self):
        cache = AnalysisCache()
        key = _selection_key(cache, 1)
        cache.get_selection(key)  # miss
        cache.put_selection(key, "sel")
        cache.get_selection(key)  # hit
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.selection_hits == 1
        assert cache.stats.selection_misses == 1
        # cleared tables miss again, counters keep accumulating
        assert cache.get_selection(key) is None
        assert cache.stats.selection_misses == 2

    def test_reset_stats_returns_retired_counters(self):
        cache = AnalysisCache()
        cache.get_grid(((100, 1),))
        retired = cache.reset_stats()
        assert retired.grid_misses == 1
        assert cache.stats.grid_misses == 0
        assert cache.stats_snapshot().lookups == 0

    def test_snapshot_is_a_copy(self):
        cache = AnalysisCache()
        snap = cache.stats_snapshot()
        cache.get_grid(((100, 1),))
        assert snap.grid_misses == 0
        assert cache.stats.grid_misses == 1

    def test_hit_rate(self):
        stats = CacheStats(selection_hits=3, selection_misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0


class TestDisabled:
    def test_disabled_never_stores(self):
        key = _selection_key(DISABLED, 0)
        DISABLED.put_selection(key, "sel")
        DISABLED.put_grid(((100, 1),), "grid")
        assert len(DISABLED) == 0
        assert DISABLED.get_selection(key) is None
        assert DISABLED.get_grid(((100, 1),)) is None

    def test_disabled_instance_never_counts(self):
        cache = AnalysisCache(enabled=False)
        cache.get_selection(_selection_key(cache, 0))
        cache.get_grid(((100, 1),))
        assert cache.stats.lookups == 0


class TestConcurrency:
    def test_hammer_keeps_tables_bounded_and_stats_consistent(self):
        """Interleaved get/put/clear from many threads must neither
        overflow the FIFO bounds nor corrupt the counters."""
        cache = AnalysisCache(max_selections=16, max_grids=8)
        n_threads, per_thread = 8, 300
        barrier = threading.Barrier(n_threads)

        def hammer(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                key = _selection_key(cache, (tid * per_thread + i) % 40)
                if cache.get_selection(key) is None:
                    cache.put_selection(key, f"{tid}/{i}")
                gkey = ((100 + (i % 10), 1),)
                if cache.get_grid(gkey) is None:
                    cache.put_grid(gkey, f"g{tid}/{i}")
                if i % 97 == 0:
                    cache.clear()

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with cache._lock:
            assert len(cache._selections) <= 16
            assert len(cache._grids) <= 8
        stats = cache.stats_snapshot()
        assert (
            stats.selection_hits + stats.selection_misses
            == n_threads * per_thread
        )
        assert stats.grid_hits + stats.grid_misses == n_threads * per_thread


class TestPickling:
    def test_round_trip_recreates_lock_and_contents(self):
        cache = AnalysisCache(max_selections=4)
        key = _selection_key(cache, 0)
        cache.put_selection(key, "sel")
        cache.get_selection(key)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get_selection(key) == "sel"
        assert clone.stats.selection_hits >= 1
        # the clone's lock is functional and independent
        clone.clear()
        assert len(clone) == 0
        assert cache.get_selection(key) == "sel"
