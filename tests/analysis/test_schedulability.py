"""Tests for the dbf<=sbf schedulability test and Theorem 1."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.prm import ResourceInterface, dbf, dbf_step_points, sbf
from repro.analysis.schedulability import (
    is_schedulable,
    is_schedulable_exhaustive,
    theorem1_bound,
)
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def random_small_taskset(rng: random.Random) -> TaskSet:
    tasks = []
    for _ in range(rng.randint(1, 3)):
        period = rng.randint(4, 30)
        wcet = rng.randint(1, max(1, period // 2))
        tasks.append(PeriodicTask(period=period, wcet=wcet))
    return TaskSet(tasks)


class TestTheorem1Bound:
    def test_known_value(self):
        # (Pi=10, Theta=5), U=1/4: beta = 2*0.5*5 / (0.5-0.25) = 20
        iface = ResourceInterface(10, 5)
        from fractions import Fraction

        assert theorem1_bound(iface, Fraction(1, 4)) == 20

    def test_requires_strict_bandwidth(self):
        from fractions import Fraction

        with pytest.raises(ConfigurationError):
            theorem1_bound(ResourceInterface(10, 5), Fraction(1, 2))

    def test_theorem1_statement_holds(self):
        """If dbf<=sbf for all t < beta, then for all t (checked far out)."""
        rng = random.Random(42)
        checked = 0
        while checked < 30:
            taskset = random_small_taskset(rng)
            period = rng.randint(2, 15)
            budget = rng.randint(1, period)
            iface = ResourceInterface(period, budget)
            if iface.bandwidth <= taskset.utilization:
                continue
            beta = theorem1_bound(iface, taskset.utilization)
            holds_below_beta = all(
                dbf(t, taskset) <= sbf(t, iface) for t in range(beta)
            )
            if not holds_below_beta:
                continue
            # Theorem 1 claims it then holds everywhere; probe well beyond.
            horizon = max(4 * beta, 4 * taskset.hyperperiod(), 500)
            for t in range(horizon):
                assert dbf(t, taskset) <= sbf(t, iface), (
                    f"Theorem 1 violated at t={t} for {taskset.tasks} on "
                    f"({period},{budget}), beta={beta}"
                )
            checked += 1


class TestTheorem1BoundaryRegression:
    """The scan must cover t ∈ (0, β] — including β itself.

    ``theorem1_bound`` returns ceil(β); when β lands exactly on a
    demand step (a period multiple), the pre-fix exclusive scan
    (`while multiple < horizon`) silently never checked ``t == β``.
    These cases are crafted so β is integral AND a period multiple.
    """

    # (interface, task): each yields an integral β equal to the task
    # period, so the boundary point is the ONLY demand step in range.
    BOUNDARY_CASES = [
        # Π=2, Θ=1 → bw=1/2, slack=1; task (4,1) → U=1/4, β=4=T
        (ResourceInterface(2, 1), PeriodicTask(period=4, wcet=1)),
        # Π=3, Θ=1 → bw=1/3, slack=2; task (16,4) → U=1/4, β=16=T
        (ResourceInterface(3, 1), PeriodicTask(period=16, wcet=4)),
    ]

    @pytest.mark.parametrize("iface,task", BOUNDARY_CASES)
    def test_scan_includes_integral_beta(self, iface, task):
        taskset = TaskSet([task])
        beta = theorem1_bound(iface, taskset.utilization)
        assert beta == task.period, "case must put β exactly on a step"
        points = dbf_step_points(taskset, beta)
        # Pre-fix this was [] — the single step point in (0, β] is β.
        assert beta in points

    @pytest.mark.parametrize("iface,task", BOUNDARY_CASES)
    def test_boundary_verdict_matches_exhaustive(self, iface, task):
        taskset = TaskSet([task])
        beta = theorem1_bound(iface, taskset.utilization)
        result = is_schedulable(taskset, iface)
        horizon = 4 * taskset.hyperperiod() + 4 * iface.period + beta
        assert result.schedulable == is_schedulable_exhaustive(
            taskset, iface, horizon
        )
        if not result.schedulable:
            t = result.violation_time
            assert t is not None and 0 < t <= beta

    def test_integer_beta_sweep_agrees_with_exhaustive(self):
        """Directed sweep over interfaces/tasks that make β integral and
        a period multiple — the exact shape the old scan mishandled."""
        covered = 0
        for period in range(2, 8):
            for budget in range(1, period):
                iface = ResourceInterface(period, budget)
                for task_period in range(2, 33):
                    for wcet in range(1, task_period + 1):
                        taskset = TaskSet(
                            [PeriodicTask(period=task_period, wcet=wcet)]
                        )
                        if iface.bandwidth <= taskset.utilization:
                            continue
                        beta = theorem1_bound(iface, taskset.utilization)
                        if beta % task_period != 0:
                            continue  # β not on a demand step
                        covered += 1
                        fast = is_schedulable(taskset, iface).schedulable
                        horizon = 3 * task_period * period + beta
                        slow = is_schedulable_exhaustive(
                            taskset, iface, horizon
                        )
                        assert fast == slow, (
                            f"disagreement for ({task_period},{wcet}) on "
                            f"({period},{budget}), β={beta}"
                        )
        assert covered > 50  # the sweep genuinely exercises the boundary


class TestBandwidthFailureWitness:
    """The bandwidth-failure branch must return a real violation witness."""

    def test_witness_is_concrete_and_real(self, tight_taskset):
        # U = 0.9 but bandwidth 0.5: long-run demand outpaces supply.
        iface = ResourceInterface(10, 5)
        result = is_schedulable(tight_taskset, iface)
        assert not result.schedulable
        assert result.violation_time is not None
        t = result.violation_time
        assert result.demand_at_violation == dbf(t, tight_taskset)
        assert result.supply_at_violation == sbf(t, iface)
        assert result.demand_at_violation > result.supply_at_violation

    def test_witness_is_first_step_violation(self):
        taskset = TaskSet([PeriodicTask(period=4, wcet=3)])  # U = 3/4
        iface = ResourceInterface(2, 1)  # bw = 1/2
        result = is_schedulable(taskset, iface)
        assert not result.schedulable
        t = result.violation_time
        assert t is not None
        # no earlier instant violates (the witness is the first)
        for earlier in range(1, t):
            assert dbf(earlier, taskset) <= sbf(earlier, iface)

    def test_equal_bandwidth_with_slack_fails_with_witness(self):
        # bw == U == 1/2 but Π−Θ > 0: sbf lags by the blackout, so the
        # hyperperiod (or earlier) witnesses the violation.
        taskset = TaskSet([PeriodicTask(period=4, wcet=2)])
        iface = ResourceInterface(8, 4)
        result = is_schedulable(taskset, iface)
        assert not result.schedulable
        assert result.violation_time is not None
        t = result.violation_time
        assert dbf(t, taskset) > sbf(t, iface)

    def test_dedicated_resource_full_utilization_is_schedulable(self):
        # Degenerate Θ == Π with U exactly 1: dbf(t) <= t = sbf(t).
        taskset = TaskSet(
            [PeriodicTask(period=2, wcet=1), PeriodicTask(period=4, wcet=2)]
        )
        iface = ResourceInterface(5, 5)
        result = is_schedulable(taskset, iface)
        assert result.schedulable
        assert is_schedulable_exhaustive(taskset, iface, 1000)


class TestIsSchedulable:
    def test_empty_taskset_always_schedulable(self):
        assert is_schedulable(TaskSet(), ResourceInterface(1, 0)).schedulable

    def test_full_resource_schedules_feasible_set(self, small_taskset):
        assert is_schedulable(small_taskset, ResourceInterface(1, 1)).schedulable

    def test_zero_budget_never_schedules_demand(self, small_taskset):
        result = is_schedulable(small_taskset, ResourceInterface(10, 0))
        assert not result.schedulable
        assert result.violation_time == small_taskset.min_period

    def test_insufficient_bandwidth_fails(self, tight_taskset):
        # U = 0.9 but bandwidth 0.5
        result = is_schedulable(tight_taskset, ResourceInterface(10, 5))
        assert not result.schedulable

    def test_violation_witness_is_real(self, small_taskset):
        result = is_schedulable(small_taskset, ResourceInterface(40, 10))
        if not result.schedulable and result.violation_time is not None:
            t = result.violation_time
            assert dbf(t, small_taskset) > sbf(t, ResourceInterface(40, 10))
            assert result.demand_at_violation == dbf(t, small_taskset)

    def test_known_schedulable_example(self):
        # One task (40, 4) on (10, 2): sbf(40)=6 >= 4, and rate suffices.
        taskset = TaskSet([PeriodicTask(period=40, wcet=4)])
        assert is_schedulable(taskset, ResourceInterface(10, 2)).schedulable

    def test_known_unschedulable_example(self):
        # (10, 4) needs 4 units by t=10, but (10, 4)-interface blackout
        # 2*(10-4)=12 > 10 means sbf(10)=0.
        taskset = TaskSet([PeriodicTask(period=10, wcet=4)])
        assert not is_schedulable(taskset, ResourceInterface(10, 4)).schedulable

    @given(
        seed=st.integers(0, 10_000),
        period=st.integers(2, 16),
        budget=st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_exhaustive_scan(self, seed, period, budget):
        """The step-point + Theorem 1 test equals brute force over a long
        horizon on random small instances."""
        budget = min(budget, period)
        taskset = random_small_taskset(random.Random(seed))
        iface = ResourceInterface(period, budget)
        fast = is_schedulable(taskset, iface).schedulable
        horizon = 3 * taskset.hyperperiod() + 6 * period + 100
        slow = is_schedulable_exhaustive(taskset, iface, horizon)
        if fast:
            assert slow, "fast test accepted an unschedulable instance"
        else:
            # the fast test may reject via the bandwidth condition whose
            # violation only shows past any fixed horizon; verify demand
            # genuinely outpaces supply asymptotically in that case
            if slow:
                assert iface.bandwidth <= taskset.utilization

    def test_budget_monotonicity(self, small_taskset):
        """If (Pi, Theta) schedules the set, so does (Pi, Theta+1)."""
        period = 12
        schedulable_budgets = [
            budget
            for budget in range(0, period + 1)
            if is_schedulable(
                small_taskset, ResourceInterface(period, budget)
            ).schedulable
        ]
        if schedulable_budgets:
            lo = schedulable_budgets[0]
            assert schedulable_budgets == list(range(lo, period + 1))
