"""Tests for the minimum-bandwidth interface selection (Sec. 5)."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.interface_selection import (
    SelectionConfig,
    brute_force_minimum_bandwidth,
    minimal_budget_for_period,
    select_interface,
    theorem2_period_bound,
)
from repro.analysis.prm import ResourceInterface
from repro.analysis.schedulability import is_schedulable
from repro.errors import ConfigurationError, InfeasibleError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestTheorem2:
    def test_known_bound(self):
        # min T = 40, siblings' utilization 1/2: Pi <= 40 / (2 * 1/2) = 40
        taskset = TaskSet([PeriodicTask(period=40, wcet=4)])
        assert theorem2_period_bound(taskset, Fraction(1, 2)) == 40

    def test_heavier_siblings_tighten_bound(self):
        taskset = TaskSet([PeriodicTask(period=60, wcet=6)])
        loose = theorem2_period_bound(taskset, Fraction(1, 4))
        tight = theorem2_period_bound(taskset, Fraction(3, 4))
        assert tight < loose

    def test_no_siblings_caps_at_min_period(self):
        taskset = TaskSet([PeriodicTask(period=25, wcet=2)])
        assert theorem2_period_bound(taskset, Fraction(0)) == 25

    def test_empty_taskset_rejected(self):
        with pytest.raises(ConfigurationError):
            theorem2_period_bound(TaskSet(), Fraction(0))

    def test_bound_is_necessary(self):
        """Violating the Theorem-2 bound really is unschedulable.

        With sibling utilization U_s, the VE's bandwidth caps at
        1 - U_s; any period above the bound leaves a supply blackout
        longer than the shortest deadline.
        """
        taskset = TaskSet([PeriodicTask(period=20, wcet=2)])
        sibling = Fraction(1, 2)
        bound = theorem2_period_bound(taskset, sibling)
        period = bound + 1
        max_budget = int((1 - sibling) * period)  # bandwidth cap
        for budget in range(0, max_budget + 1):
            iface = ResourceInterface(period, budget)
            assert not is_schedulable(taskset, iface).schedulable


class TestMinimalBudget:
    def test_finds_minimal(self, small_taskset):
        period = 10
        budget = minimal_budget_for_period(small_taskset, period)
        assert budget is not None
        assert is_schedulable(
            small_taskset, ResourceInterface(period, budget)
        ).schedulable
        if budget > 1:
            assert not is_schedulable(
                small_taskset, ResourceInterface(period, budget - 1)
            ).schedulable

    def test_empty_taskset_needs_nothing(self):
        assert minimal_budget_for_period(TaskSet(), 10) == 0

    def test_overutilized_set_returns_none(self):
        # U = 1.2 cannot be scheduled at any budget (even Theta = Pi)
        taskset = TaskSet(
            [PeriodicTask(period=10, wcet=6), PeriodicTask(period=10, wcet=6)]
        )
        assert minimal_budget_for_period(taskset, 10) is None

    def test_full_budget_always_schedules_feasible_set(self):
        # With Theta = Pi the supply is the whole resource, so any U <= 1
        # implicit-deadline set is schedulable regardless of Pi.
        taskset = TaskSet([PeriodicTask(period=10, wcet=4)])
        for period in (1, 3, 10, 17):
            budget = minimal_budget_for_period(taskset, period)
            assert budget is not None and budget <= period

    def test_rejects_bad_period(self, small_taskset):
        with pytest.raises(ConfigurationError):
            minimal_budget_for_period(small_taskset, 0)


class TestSelectInterface:
    def test_result_is_schedulable(self, small_taskset):
        result = select_interface(small_taskset, Fraction(1, 2))
        assert is_schedulable(small_taskset, result.interface).schedulable

    def test_bandwidth_exceeds_utilization(self, small_taskset):
        result = select_interface(small_taskset, Fraction(0))
        assert result.interface.bandwidth > small_taskset.utilization

    def test_empty_taskset_gets_idle_interface(self):
        result = select_interface(TaskSet())
        assert result.interface.budget == 0

    def test_matches_brute_force_bandwidth(self):
        """The search finds the same minimum bandwidth as an exhaustive
        (Pi, Theta) scan, on instances small enough to scan."""
        rng = random.Random(7)
        for _ in range(10):
            period = rng.randint(8, 24)
            wcet = rng.randint(1, period // 3)
            taskset = TaskSet([PeriodicTask(period=period, wcet=wcet)])
            chosen = select_interface(
                taskset, Fraction(0), SelectionConfig(max_period_candidates=0)
            ).interface
            brute = brute_force_minimum_bandwidth(taskset, period)
            assert brute is not None
            assert chosen.bandwidth == brute.bandwidth, (
                f"task ({period},{wcet}): selected {chosen} vs brute {brute}"
            )

    def test_infeasible_raises(self):
        # Sibling load so heavy that Theorem 2 leaves no feasible period
        # (bound < 1): happens inside over-utilized SEs.
        taskset = TaskSet([PeriodicTask(period=10, wcet=4)])
        with pytest.raises(InfeasibleError):
            select_interface(taskset, Fraction(51, 10))

    def test_sampled_search_close_to_exhaustive(self):
        taskset = TaskSet(
            [PeriodicTask(period=400, wcet=9), PeriodicTask(period=1000, wcet=30)]
        )
        exhaustive = select_interface(
            taskset, Fraction(1, 4), SelectionConfig(max_period_candidates=0)
        )
        sampled = select_interface(
            taskset, Fraction(1, 4), SelectionConfig(max_period_candidates=32)
        )
        assert sampled.interface.bandwidth <= exhaustive.interface.bandwidth * Fraction(
            11, 10
        )

    @given(
        period=st.integers(6, 60),
        wcet=st.integers(1, 10),
        sibling_num=st.integers(0, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_selected_interface_always_schedulable(
        self, period, wcet, sibling_num
    ):
        wcet = min(wcet, period // 2 + 1)
        taskset = TaskSet([PeriodicTask(period=period, wcet=wcet)])
        sibling = Fraction(sibling_num, 10)
        if taskset.utilization + sibling >= 1:
            return
        try:
            result = select_interface(taskset, sibling)
        except InfeasibleError:
            return
        assert is_schedulable(taskset, result.interface).schedulable


class TestSelectionConfig:
    def test_rejects_negative_candidates(self):
        with pytest.raises(ConfigurationError):
            SelectionConfig(max_period_candidates=-1)

    def test_rejects_bad_min_period(self):
        with pytest.raises(ConfigurationError):
            SelectionConfig(min_period=0)
