"""Tests for the hierarchical composition over the quadtree."""

import random
from fractions import Fraction

import pytest

from repro.analysis.composition import (
    compose,
    default_deadline_margin,
    tighten_deadlines,
    update_client,
)
from repro.analysis.schedulability import is_schedulable
from repro.errors import ConfigurationError
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.topology import quadtree


def light_tasksets(n_clients: int, period: int = 400, wcet: int = 4):
    return {
        c: TaskSet([PeriodicTask(period=period + 16 * c, wcet=wcet, client_id=c)])
        for c in range(n_clients)
    }


class TestTightenDeadlines:
    def test_margin_shrinks_periods(self):
        taskset = TaskSet([PeriodicTask(period=100, wcet=5)])
        tightened = tighten_deadlines(taskset, margin=10, relative_margin=0.0)
        assert tightened[0].period == 90

    def test_relative_margin(self):
        taskset = TaskSet([PeriodicTask(period=100, wcet=5)])
        tightened = tighten_deadlines(taskset, margin=0, relative_margin=0.1)
        assert tightened[0].period == 90

    def test_never_below_wcet(self):
        taskset = TaskSet([PeriodicTask(period=10, wcet=8)])
        tightened = tighten_deadlines(taskset, margin=50)
        assert tightened[0].period == 8

    def test_zero_margin_is_identity(self):
        taskset = TaskSet([PeriodicTask(period=10, wcet=2)])
        assert tighten_deadlines(taskset, 0, 0.0) is taskset


class TestCompose:
    def test_light_load_is_schedulable(self):
        topology = quadtree(16)
        result = compose(topology, light_tasksets(16))
        assert result.schedulable
        assert result.failure == ""
        assert result.root_bandwidth <= 1

    def test_every_node_has_interfaces(self):
        topology = quadtree(16)
        result = compose(topology, light_tasksets(16))
        assert set(result.interfaces) == set(topology.all_nodes())
        for interfaces in result.interfaces.values():
            assert len(interfaces) == 4

    def test_root_bandwidth_is_sum_of_root_servers(self):
        topology = quadtree(16)
        result = compose(topology, light_tasksets(16))
        total = sum(
            (i.bandwidth for i in result.interfaces[(0, 0)]), Fraction(0)
        )
        assert result.root_bandwidth == total

    def test_leaf_interfaces_schedule_their_clients(self):
        """Each leaf port's interface schedules that client's (tightened)
        task set — the core guarantee of the interface selection."""
        topology = quadtree(16)
        tasksets = light_tasksets(16)
        margin = default_deadline_margin(topology)
        result = compose(topology, tasksets)
        for client, taskset in tasksets.items():
            leaf, port = topology.leaf_of_client(client)
            iface = result.interfaces[leaf][port]
            tightened = tighten_deadlines(taskset, margin)
            assert is_schedulable(tightened, iface).schedulable

    def test_interior_interfaces_schedule_child_servers(self):
        """Interior SEs schedule their children's server tasks."""
        topology = quadtree(16)
        result = compose(topology, light_tasksets(16))
        for port, child in enumerate(topology.children((0, 0))):
            iface = result.interfaces[(0, 0)][port]
            child_servers = result.server_taskset(child)
            assert is_schedulable(child_servers, iface).schedulable

    def test_idle_clients_get_idle_interfaces(self):
        topology = quadtree(16)
        tasksets = light_tasksets(16)
        del tasksets[7]
        result = compose(topology, tasksets)
        leaf, port = topology.leaf_of_client(7)
        assert result.interfaces[leaf][port].budget == 0

    def test_overload_reported_not_raised(self):
        topology = quadtree(4)
        heavy = {
            c: TaskSet([PeriodicTask(period=10, wcet=5, client_id=c)])
            for c in range(4)
        }
        result = compose(topology, heavy)  # total U = 2.0
        assert not result.schedulable
        assert result.failure != ""

    def test_rejects_unknown_client(self):
        topology = quadtree(4)
        with pytest.raises(ConfigurationError):
            compose(topology, {9: TaskSet([PeriodicTask(period=10, wcet=1)])})

    def test_64_client_composition(self):
        topology = quadtree(64)
        result = compose(topology, light_tasksets(64, period=2000, wcet=3))
        assert result.schedulable
        assert len(result.interfaces) == 21

    def test_utilization_drives_infeasibility_boundary(self):
        """Raising demand high enough flips the result to unschedulable."""
        topology = quadtree(4)
        rng = random.Random(3)
        low = generate_client_tasksets(rng, 4, 2, 0.4)
        result_low = compose(topology, low)
        heavy = {
            c: TaskSet(
                [PeriodicTask(period=12, wcet=4, client_id=c) for _ in range(1)]
            )
            for c in range(4)
        }
        result_heavy = compose(topology, heavy)  # U = 4/3 > 1
        assert result_low.schedulable
        assert not result_heavy.schedulable


class TestUpdateClient:
    def test_update_matches_full_recompose(self):
        """Path-local refresh must produce exactly the interfaces a full
        recomposition would (the paper's scheduling-scalability claim)."""
        topology = quadtree(16)
        tasksets = light_tasksets(16)
        baseline = compose(topology, tasksets)
        tasksets[9] = tasksets[9].merged_with(
            TaskSet([PeriodicTask(period=300, wcet=3, client_id=9)])
        )
        updated = update_client(baseline, tasksets, 9)
        full = compose(topology, tasksets)
        assert updated.interfaces == full.interfaces
        assert updated.schedulable == full.schedulable
        assert updated.root_bandwidth == full.root_bandwidth

    def test_update_touches_only_path(self):
        topology = quadtree(64)
        tasksets = light_tasksets(64, period=2000, wcet=3)
        baseline = compose(topology, tasksets)
        tasksets[17] = tasksets[17].merged_with(
            TaskSet([PeriodicTask(period=900, wcet=5, client_id=17)])
        )
        updated = update_client(baseline, tasksets, 17)
        path = set(topology.path_to_root(17))
        for node in baseline.interfaces:
            if node not in path:
                assert updated.interfaces[node] == baseline.interfaces[node]

    def test_task_leave_reduces_bandwidth(self):
        topology = quadtree(16)
        tasksets = light_tasksets(16)
        baseline = compose(topology, tasksets)
        tasksets[3] = TaskSet()  # all tasks leave client 3
        updated = update_client(baseline, tasksets, 3)
        assert updated.root_bandwidth <= baseline.root_bandwidth
        leaf, port = topology.leaf_of_client(3)
        assert updated.interfaces[leaf][port].budget == 0
