"""Unit and property tests for tree topologies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.topology import TreeTopology, binary_tree, quadtree


class TestQuadtreeShape:
    def test_16_clients_two_levels(self):
        topo = quadtree(16)
        assert topo.depth == 1
        assert topo.n_nodes() == 5  # 1 root + 4 leaves (Fig 2(a))

    def test_64_clients_three_levels(self):
        topo = quadtree(64)
        assert topo.depth == 2
        assert topo.n_nodes() == 21  # 1 + 4 + 16 (Fig 2(d))

    def test_4_clients_single_se(self):
        topo = quadtree(4)
        assert topo.depth == 0
        assert topo.n_nodes() == 1

    def test_non_power_of_four_prunes_empty_subtrees(self):
        topo = quadtree(17)
        # capacity 64, but only subtrees containing clients materialize
        assert topo.capacity == 64
        nodes = topo.all_nodes()
        assert (0, 0) in nodes
        # leaf (2, 4) holds clients 16..19 -> kept; (2, 5) holds 20..23 -> pruned
        assert (2, 4) in nodes
        assert (2, 5) not in nodes

    def test_binary_tree_shape(self):
        topo = binary_tree(16)
        assert topo.depth == 3
        assert topo.n_nodes() == 15  # classic 2:1 mux tree


class TestStructuralRelations:
    def test_children_of_root(self):
        topo = quadtree(16)
        assert topo.children((0, 0)) == [(1, 0), (1, 1), (1, 2), (1, 3)]

    def test_leaves_have_no_children(self):
        topo = quadtree(16)
        assert topo.children((1, 2)) == []

    def test_parent_inverts_children(self):
        topo = quadtree(64)
        for node in topo.all_nodes():
            for child in topo.children(node):
                assert topo.parent(child) == node

    def test_root_has_no_parent(self):
        assert quadtree(16).parent((0, 0)) is None

    def test_leaf_of_client(self):
        topo = quadtree(16)
        assert topo.leaf_of_client(0) == ((1, 0), 0)
        assert topo.leaf_of_client(5) == ((1, 1), 1)
        assert topo.leaf_of_client(15) == ((1, 3), 3)

    def test_clients_of_leaf(self):
        topo = quadtree(16)
        assert topo.clients_of_leaf((1, 2)) == [8, 9, 10, 11]

    def test_clients_of_leaf_excludes_idle_ports(self):
        topo = quadtree(6)
        assert topo.clients_of_leaf((1, 1)) == [4, 5]

    def test_path_to_root(self):
        topo = quadtree(64)
        path = topo.path_to_root(37)
        assert path[0] == (2, 9)  # 37 // 4
        assert path[1] == (1, 2)
        assert path[-1] == (0, 0)
        assert topo.hops_to_memory(37) == 3

    def test_subtree_client_range(self):
        topo = quadtree(64)
        assert topo.subtree_client_range(1, 2) == (32, 48)
        assert topo.subtree_client_range(2, 15) == (60, 64)


class TestValidation:
    def test_rejects_zero_clients(self):
        with pytest.raises(ConfigurationError):
            TreeTopology(n_clients=0)

    def test_rejects_fanout_one(self):
        with pytest.raises(ConfigurationError):
            TreeTopology(n_clients=4, fanout=1)

    def test_rejects_out_of_range_client(self):
        topo = quadtree(16)
        with pytest.raises(ConfigurationError):
            topo.leaf_of_client(16)
        with pytest.raises(ConfigurationError):
            topo.path_to_root(-1)

    def test_rejects_bad_level(self):
        with pytest.raises(ConfigurationError):
            quadtree(16).nodes_at_level(5)

    def test_clients_of_leaf_rejects_internal_node(self):
        with pytest.raises(ConfigurationError):
            quadtree(64).clients_of_leaf((0, 0))


class TestTopologyProperties:
    @given(
        n=st.integers(min_value=1, max_value=300),
        fanout=st.sampled_from([2, 4]),
    )
    def test_every_client_reaches_the_root(self, n, fanout):
        topo = TreeTopology(n_clients=n, fanout=fanout)
        for client in range(n):
            path = topo.path_to_root(client)
            assert path[-1] == (0, 0)
            assert len(path) == topo.depth + 1

    @given(n=st.integers(min_value=2, max_value=256))
    def test_quadtree_node_count_bound(self, n):
        topo = quadtree(n)
        # A quadtree over n clients needs at least ceil(n/4) leaves and
        # never more nodes than the complete tree.
        assert topo.n_nodes() >= (n + 3) // 4
        complete = sum(4**level for level in range(topo.depth + 1))
        assert topo.n_nodes() <= complete

    @given(n=st.integers(min_value=1, max_value=256))
    def test_leaf_ports_partition_clients(self, n):
        topo = quadtree(n)
        seen = []
        for level, order in topo.all_nodes():
            if level == topo.depth:
                seen.extend(topo.clients_of_leaf((level, order)))
        assert sorted(seen) == list(range(n))
