"""Edge cases of the :func:`repro.sim.run_many` batch seam itself.

The differential wall (``test_batched_equivalence``) pins the kernels;
these tests pin the *seam* — argument normalisation, input-order
preservation across the eligible/ineligible split, and ragged per-trial
horizons.  Campaign grids routinely hand over numpy scalars
(``np.int64`` from an ``np.arange`` sweep), which historically crashed
``run_many`` with ``TypeError: 'numpy.int64' object is not iterable``
because the scalar/sequence dispatch tested ``isinstance(value, int)``
only.  The regression tests here fail on that implementation.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.experiments.factory import build_interconnect
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.sim import batched_supported, run_many
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets

HORIZON = 1_000
DRAIN = 500

#: makes a trial ineligible for the SoA path (arbitration perturbation)
STALL_PLAN = FaultPlan(
    (FaultEvent(kind=FaultKind.CONTROLLER_STALL, cycle=300, magnitude=4),)
)


def build_sim(seed: int, faults: FaultPlan | None = None) -> SoCSimulation:
    """One fresh BlueScale trial; equal seeds build identical trials."""
    rng = random.Random(seed)
    tasksets = generate_client_tasksets(
        rng, n_clients=4, tasks_per_client=3, system_utilization=0.5
    )
    interconnect = build_interconnect("BlueScale", 4, tasksets)
    clients = [
        TrafficGenerator(c, ts, rng=random.Random(7_000 + seed + c))
        for c, ts in tasksets.items()
    ]
    return SoCSimulation(clients, interconnect, faults=faults)


def fingerprint(result) -> tuple:
    return (
        result.horizon,
        result.trace_digest,
        result.job_outcomes,
        result.requests_released,
        result.requests_completed,
    )


@pytest.mark.parametrize("backend", ["batched", "scalar"])
def test_numpy_integer_horizon_regression(backend):
    """A single ``np.int64`` horizon/drain must behave exactly like the
    equivalent python ints on both backends (regression: the scalar
    value fell through to the sequence branch and raised TypeError)."""
    results = run_many(
        [build_sim(1), build_sim(2)],
        np.int64(HORIZON),
        drain=np.int64(DRAIN),
        warmup=np.int64(0),
        backend=backend,
    )
    for seed, result in zip((1, 2), results):
        oracle = build_sim(seed).run(HORIZON, drain=DRAIN)
        assert fingerprint(result) == fingerprint(oracle)


@pytest.mark.parametrize("backend", ["batched", "scalar"])
def test_numpy_array_per_trial_values_round_trip(backend):
    """Ragged per-trial horizons/drains/warmups as numpy arrays (whose
    elements are ``np.int64``) round-trip both backends bit-for-bit."""
    sims = [build_sim(seed) for seed in (1, 2, 3)]
    results = run_many(
        sims,
        np.array([HORIZON, 800, 1_200]),
        drain=np.array([DRAIN, 400, 600]),
        warmup=np.array([0, 0, 100]),
        backend=backend,
    )
    oracles = [
        build_sim(1).run(HORIZON, drain=DRAIN),
        build_sim(2).run(800, drain=400),
        build_sim(3).run(1_200, drain=600, warmup=100),
    ]
    for result, oracle in zip(results, oracles):
        assert fingerprint(result) == fingerprint(oracle)


def test_bool_cycle_counts_rejected():
    """``bool`` is Integral but a True/False cycle count is always a
    bug — rejected loudly instead of silently running horizon=1."""
    with pytest.raises(ConfigurationError, match="bool"):
        run_many([build_sim(1)], True)
    with pytest.raises(ConfigurationError, match="bool"):
        run_many([build_sim(1)], HORIZON, drain=[True])


def test_wrong_length_per_trial_values_rejected():
    with pytest.raises(ConfigurationError, match="expected 2"):
        run_many([build_sim(1), build_sim(2)], [HORIZON])


def test_mixed_eligibility_preserves_order_and_horizons():
    """A batch interleaving SoA-eligible trials with scalar-fallback
    trials (non-rogue fault plans) comes back in input order, each
    trial honouring its own horizon."""
    sims = [
        build_sim(1),
        build_sim(2, faults=STALL_PLAN),
        build_sim(3),
        build_sim(4, faults=STALL_PLAN),
    ]
    eligibility = [batched_supported(sim) for sim in sims]
    assert eligibility == [True, False, True, False]
    horizons = [HORIZON, 800, 1_200, 900]
    results = run_many(
        sims, horizons, drain=DRAIN, backend="batched"
    )
    oracle_faults = [None, STALL_PLAN, None, STALL_PLAN]
    for seed, horizon, faults, result in zip(
        (1, 2, 3, 4), horizons, oracle_faults, results
    ):
        oracle = build_sim(seed, faults=faults).run(horizon, drain=DRAIN)
        assert fingerprint(result) == fingerprint(oracle), seed
