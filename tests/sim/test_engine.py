"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Engine


class Recorder:
    """Tick component that records the cycles it saw."""

    def __init__(self):
        self.cycles = []

    def tick(self, cycle):
        self.cycles.append(cycle)


class TestEventScheduling:
    def test_event_fires_at_cycle(self):
        engine = Engine()
        fired = []
        engine.schedule(5, lambda c: fired.append(c))
        engine.run(10)
        assert fired == [5]

    def test_schedule_in_relative(self):
        engine = Engine()
        fired = []
        engine.schedule_in(3, lambda c: fired.append(c))
        engine.run(10)
        assert fired == [3]

    def test_same_cycle_events_fire_in_insertion_order(self):
        engine = Engine()
        order = []
        engine.schedule(2, lambda c: order.append("first"))
        engine.schedule(2, lambda c: order.append("second"))
        engine.schedule(2, lambda c: order.append("third"))
        engine.run(5)
        assert order == ["first", "second", "third"]

    def test_event_can_schedule_followup(self):
        engine = Engine()
        fired = []

        def chain(cycle):
            fired.append(cycle)
            if cycle < 6:
                engine.schedule(cycle + 2, chain)

        engine.schedule(0, chain)
        engine.run(10)
        assert fired == [0, 2, 4, 6]

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.run(5)
        with pytest.raises(SimulationError):
            engine.schedule(3, lambda c: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_in(-1, lambda c: None)

    def test_pending_events_counter(self):
        engine = Engine()
        engine.schedule(1, lambda c: None)
        engine.schedule(2, lambda c: None)
        assert engine.pending_events == 2
        engine.run(10)
        assert engine.pending_events == 0


class TestTickComponents:
    def test_component_ticks_every_cycle(self):
        engine = Engine()
        recorder = Recorder()
        engine.register(recorder)
        engine.run(4)
        assert recorder.cycles == [0, 1, 2, 3]

    def test_components_tick_in_registration_order(self):
        engine = Engine()
        order = []

        class Named:
            def __init__(self, name):
                self.name = name

            def tick(self, cycle):
                if cycle == 0:
                    order.append(self.name)

        engine.register(Named("a"))
        engine.register(Named("b"))
        engine.run(1)
        assert order == ["a", "b"]

    def test_register_requires_tick_method(self):
        with pytest.raises(ConfigurationError):
            Engine().register(object())

    def test_events_fire_before_ticks_in_a_cycle(self):
        engine = Engine()
        order = []
        engine.schedule(0, lambda c: order.append("event"))

        class Ticker:
            def tick(self, cycle):
                if cycle == 0:
                    order.append("tick")

        engine.register(Ticker())
        engine.run(1)
        assert order == ["event", "tick"]


class TestRunControl:
    def test_stop_halts_run(self):
        engine = Engine()
        recorder = Recorder()
        engine.register(recorder)
        engine.schedule(3, lambda c: engine.stop())
        engine.run(100)
        # Cycle 3 still completes, nothing after.
        assert recorder.cycles[-1] == 3

    def test_run_backwards_rejected(self):
        engine = Engine()
        engine.run(10)
        with pytest.raises(SimulationError):
            engine.run(5)

    def test_run_resumes_where_it_stopped(self):
        engine = Engine()
        recorder = Recorder()
        engine.register(recorder)
        engine.run(3)
        engine.run(6)
        assert recorder.cycles == [0, 1, 2, 3, 4, 5]


class TestEventsOnlyMode:
    def test_skips_idle_cycles(self):
        engine = Engine()
        fired = []
        engine.schedule(1000, lambda c: fired.append(c))
        engine.schedule(9000, lambda c: fired.append(c))
        engine.run_events_only(10_000)
        assert fired == [1000, 9000]
        assert engine.clock.now == 10_000

    def test_rejected_with_tick_components(self):
        engine = Engine()
        engine.register(Recorder())
        with pytest.raises(SimulationError):
            engine.run_events_only(10)

    def test_stops_at_horizon(self):
        engine = Engine()
        fired = []
        engine.schedule(5, lambda c: fired.append(c))
        engine.schedule(50, lambda c: fired.append(c))
        engine.run_events_only(10)
        assert fired == [5]
        assert engine.pending_events == 1
