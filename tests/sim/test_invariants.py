"""Tests for the runtime invariant monitors."""

import random

import pytest

from repro.analysis.prm import ResourceInterface
from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.core.scale_element import ScaleElement
from repro.errors import SimulationError
from repro.sim.invariants import (
    SbfComplianceMonitor,
    StructuralMonitor,
    monitor_interconnect,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets

from tests.conftest import make_request


class AcceptingSink:
    def __call__(self, request, cycle):
        return True


class TestStructuralMonitor:
    def test_clean_element_passes(self):
        element = ScaleElement((0, 0), interfaces=[ResourceInterface(4, 2)] * 4)
        element.forward_to_provider = AcceptingSink()
        monitor = StructuralMonitor(element)
        element.try_accept(0, make_request())
        for cycle in range(10):
            element.tick(cycle)
            monitor.check(cycle)
        assert monitor.checks == 10

    def test_detects_corrupted_budget(self):
        element = ScaleElement((0, 0), interfaces=[ResourceInterface(4, 2)] * 4)
        monitor = StructuralMonitor(element)
        # corrupt the hardware state the way a model bug would
        element.scheduler.servers[1].counters.b_counter.value = 99
        with pytest.raises(SimulationError, match="budget"):
            monitor.check(0)

    def test_detects_buffer_overrun(self):
        element = ScaleElement((0, 0), buffer_capacity=2)
        monitor = StructuralMonitor(element)
        buffer = element.buffers[0]
        buffer._entries.extend([make_request(), make_request(), make_request()])
        with pytest.raises(SimulationError, match="occupancy"):
            monitor.check(0)

    def test_detects_double_forward(self):
        element = ScaleElement((0, 0))
        monitor = StructuralMonitor(element)
        monitor.check(0)
        element.forwarded += 2  # impossible: one forward per cycle
        with pytest.raises(SimulationError, match="forwards"):
            monitor.check(1)


class TestSbfComplianceMonitor:
    def drive(self, element, monitor, cycles, offered):
        """Tick the element with a backlog of ``offered`` requests."""
        sent = 0
        for cycle in range(cycles):
            if sent < offered and element.try_accept(
                0, make_request(deadline=cycle + 10_000)
            ):
                sent += 1
            element.tick(cycle)
            monitor.check(cycle)
        monitor.finalize(cycles)

    def test_compliant_element_passes(self):
        element = ScaleElement(
            (0, 0),
            buffer_capacity=8,
            interfaces=[
                ResourceInterface(4, 1),
                ResourceInterface(1000, 1),
                ResourceInterface(1000, 1),
                ResourceInterface(1000, 1),
            ],
        )
        element.forward_to_provider = AcceptingSink()
        monitor = SbfComplianceMonitor(element)
        self.drive(element, monitor, 100, offered=30)
        assert monitor.intervals_checked >= 1

    def test_detects_withheld_service(self):
        """A scheduler that never grants port 0 violates its contract."""
        element = ScaleElement(
            (0, 0),
            buffer_capacity=8,
            interfaces=[ResourceInterface(4, 2)] * 4,
        )
        element.forward_to_provider = AcceptingSink()
        # sabotage: the scheduler never selects any port
        element.scheduler.select_port = lambda buffers: None
        monitor = SbfComplianceMonitor(element)
        with pytest.raises(SimulationError, match="sbf"):
            self.drive(element, monitor, 60, offered=10)

    def test_output_stall_voids_the_interval(self):
        """Backpressure is not a contract violation."""
        element = ScaleElement(
            (0, 0), buffer_capacity=8, interfaces=[ResourceInterface(4, 2)] * 4
        )
        element.forward_to_provider = lambda request, cycle: False  # stalled
        monitor = SbfComplianceMonitor(element)
        self.drive(element, monitor, 40, offered=5)  # must not raise
        assert monitor.intervals_checked == 0


class TestInterconnectMonitor:
    def test_full_simulation_under_monitoring(self):
        """A composed 16-client system passes every invariant for the
        whole run — the hardware model honors the contracts the
        analysis assumes."""
        rng = random.Random(21)
        tasksets = generate_client_tasksets(rng, 16, 2, 0.65)
        interconnect = BlueScaleInterconnect(16, buffer_capacity=2)
        composition = interconnect.configure(tasksets)
        assert composition.schedulable
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        simulation = SoCSimulation(clients, interconnect)
        monitor = monitor_interconnect(interconnect)
        inject = interconnect.try_inject
        horizon = 5_000
        for cycle in range(horizon):
            for client in clients:
                client.tick(cycle, inject)
            interconnect.tick_request_path(cycle)
            monitor.check(cycle)
            simulation.controller.tick(cycle)
            for request in interconnect.tick_response_path(cycle):
                clients[request.client_id].on_response(request)
        monitor.finalize(horizon)
        assert monitor.intervals_checked > 0

    def test_structural_only_mode(self):
        interconnect = BlueScaleInterconnect(16)
        monitor = monitor_interconnect(interconnect, check_sbf=False)
        monitor.check(0)
        assert monitor.intervals_checked == 0
