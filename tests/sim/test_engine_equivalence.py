"""Differential tests: quiescence fast path vs. cycle-by-cycle reference.

Every interconnect design is simulated twice on the same randomized
workload — once with the engine's quiescence fast path (and the
stages' fast-tick elision) enabled, once with ``fast_path=False``
forcing the literal per-cycle loop — and the two runs must be
*bit-for-bit identical*: same completion trace (request ids, cycles,
blocking charges), same recorder contents, same job outcomes.

This is the safety net for every optimization behind ``fast_path``:
a leap or an elided tick that changes any observable behaviour shows
up here as a digest mismatch with the exact first diverging record.
"""

from __future__ import annotations

import random

import pytest

from repro.clients.accelerator import AcceleratorClient
from repro.clients.traffic_generator import TrafficGenerator
from repro.experiments.factory import INTERCONNECT_NAMES, build_interconnect
from repro.memory.controller import MemoryController
from repro.memory.dram import FixedLatencyDevice
from repro.soc import SoCSimulation, TrialResult, _ResponseStage
from repro.tasks.generators import generate_client_tasksets

N_CLIENTS = 5
HORIZON = 4_000
DRAIN = 2_000


def _build_clients(tasksets, *, accelerator: bool):
    """One TrafficGenerator per taskset; optionally the last client is
    a bandwidth-capped accelerator (the Fig. 7 HA configuration)."""
    clients = []
    regular = N_CLIENTS - 1 if accelerator else N_CLIENTS
    for client_id in range(regular):
        clients.append(
            TrafficGenerator(
                client_id,
                tasksets[client_id],
                rng=random.Random(9_000 + client_id),
            )
        )
    if accelerator:
        clients.append(
            AcceleratorClient(
                N_CLIENTS - 1,
                tasksets[N_CLIENTS - 1],
                bandwidth_cap=1.0 / N_CLIENTS,
                rng=random.Random(7),
            )
        )
    return clients


def _run_once(
    name: str,
    utilization: float,
    *,
    fast: bool,
    seed: int,
    accelerator: bool = True,
    controller_factory=None,
) -> tuple[TrialResult, list, list]:
    """One trial; returns (result, trace records, recorder snapshot).

    The raw completion records are captured by wrapping the response
    stage's trace hook, so a divergence points at the exact first
    differing completion instead of just a digest mismatch.
    """
    rng = random.Random(seed)
    tasksets = generate_client_tasksets(
        rng,
        n_clients=N_CLIENTS,
        tasks_per_client=3,
        system_utilization=utilization,
    )
    interconnect = build_interconnect(name, N_CLIENTS, tasksets)
    clients = _build_clients(tasksets, accelerator=accelerator)
    controller = controller_factory() if controller_factory else None
    simulation = SoCSimulation(
        clients, interconnect, controller=controller, fast_path=fast
    )

    records: list[str] = []
    original = _ResponseStage._trace_record

    def capture(request):
        record = original(request)
        records.append(record)
        return record

    _ResponseStage._trace_record = staticmethod(capture)
    try:
        result = simulation.run(HORIZON, drain=DRAIN)
    finally:
        _ResponseStage._trace_record = staticmethod(original)
    recorder = simulation.recorder
    snapshot = [
        recorder.response_times,
        recorder.blocking_times,
        recorder.completed,
        recorder.missed,
        recorder.dropped,
    ]
    return result, records, snapshot


def _assert_identical(name: str, fast_run, slow_run) -> None:
    fast_result, fast_records, fast_recorder = fast_run
    slow_result, slow_records, slow_recorder = slow_run
    # Pinpoint the first diverging completion before the digest check.
    for index, (fast_rec, slow_rec) in enumerate(
        zip(fast_records, slow_records)
    ):
        assert fast_rec == slow_rec, (
            f"{name}: completion {index} diverged:\n"
            f"  fast: {fast_rec}\n  slow: {slow_rec}"
        )
    assert len(fast_records) == len(slow_records), name
    assert fast_result.trace_digest == slow_result.trace_digest, name
    assert fast_recorder == slow_recorder, name
    assert fast_result.job_outcomes == slow_result.job_outcomes, name
    assert fast_result.requests_released == slow_result.requests_released
    assert fast_result.requests_completed == slow_result.requests_completed
    assert fast_result.requests_dropped == slow_result.requests_dropped
    assert fast_result.mean_blocking == slow_result.mean_blocking
    assert fast_result.deadline_miss_ratio == slow_result.deadline_miss_ratio
    # The reference path never leaps; the fast path is free to.
    assert slow_result.cycles_skipped == 0
    assert (
        fast_result.cycles_executed + fast_result.cycles_skipped
        == slow_result.cycles_executed
    )


@pytest.mark.parametrize("name", INTERCONNECT_NAMES)
@pytest.mark.parametrize("utilization", [0.1, 0.6])
def test_fast_path_identical_to_reference(name, utilization):
    """Fast- and slow-path runs of every design are bit-for-bit equal."""
    fast_run = _run_once(name, utilization, fast=True, seed=1234)
    slow_run = _run_once(name, utilization, fast=False, seed=1234)
    _assert_identical(name, fast_run, slow_run)


@pytest.mark.parametrize("name", INTERCONNECT_NAMES)
def test_fast_path_actually_leaps_when_idle(name):
    """At low utilization the fast path must skip a substantial share
    of cycles — otherwise the equivalence tests above test nothing."""
    result, _, _ = _run_once(name, 0.1, fast=True, seed=1234)
    assert result.cycles_skipped > 0, name
    total = result.cycles_executed + result.cycles_skipped
    assert total == HORIZON + DRAIN
    assert result.cycles_skipped / total > 0.2, name


@pytest.mark.parametrize("seed", [11, 42, 77])
def test_randomized_workloads_all_designs(seed):
    """Fresh workload draws (different seeds) stay equivalent on every
    design at a mid utilization."""
    for name in INTERCONNECT_NAMES:
        fast_run = _run_once(name, 0.4, fast=True, seed=seed)
        slow_run = _run_once(name, 0.4, fast=False, seed=seed)
        _assert_identical(f"{name}/seed={seed}", fast_run, slow_run)


@pytest.mark.parametrize("name", ["BlueScale", "AXI-IC^RT", "GSMTree-FBSP"])
def test_equivalence_with_dram_device_and_refresh(name):
    """A slower DRAM device plus periodic refresh stalls exercises the
    controller's completion/refresh activity declarations."""

    def controller():
        return MemoryController(
            FixedLatencyDevice(3),
            queue_capacity=4,
            refresh_interval=512,
            refresh_duration=7,
        )

    fast_run = _run_once(
        name, 0.3, fast=True, seed=2024, controller_factory=controller
    )
    slow_run = _run_once(
        name, 0.3, fast=False, seed=2024, controller_factory=controller
    )
    _assert_identical(f"{name}+refresh", fast_run, slow_run)
    assert fast_run[0].cycles_skipped > 0


@pytest.mark.parametrize("name", ["BlueScale", "BlueTree"])
def test_equivalence_without_accelerator(name):
    """Pure TrafficGenerator population (the Fig. 6 configuration)."""
    fast_run = _run_once(
        name, 0.2, fast=True, seed=555, accelerator=False
    )
    slow_run = _run_once(
        name, 0.2, fast=False, seed=555, accelerator=False
    )
    _assert_identical(f"{name}/no-ha", fast_run, slow_run)
