"""Tests for the request timeline inspector."""

import random

import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError
from repro.sim.timeline import Timeline, format_timeline
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets


def run_with_timeline(seed=4, horizon=2_000, capacity=100_000):
    rng = random.Random(seed)
    tasksets = generate_client_tasksets(rng, 8, 2, 0.5)
    interconnect = BlueScaleInterconnect(8, buffer_capacity=2)
    interconnect.configure(tasksets)
    timeline = Timeline(interconnect, capacity=capacity)
    clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
    result = SoCSimulation(clients, interconnect).run(horizon, drain=1_000)
    return timeline, result


class TestRecording:
    def test_every_completed_request_has_hop_events(self):
        timeline, result = run_with_timeline()
        assert len(timeline) == result.requests_completed
        for record in timeline.slowest(10):
            labels = [label for label, _ in record.events]
            # one event per SE level on the path (leaf + root for 8 clients)
            assert sum(1 for l in labels if l.startswith("SE")) == 2

    def test_hop_cycles_monotone(self):
        timeline, _ = run_with_timeline()
        for record in timeline.slowest(20):
            cycles = [cycle for _, cycle in record.events]
            assert cycles == sorted(cycles)

    def test_monitoring_does_not_change_behaviour(self):
        """A wrapped interconnect produces bit-identical results."""
        _, monitored = run_with_timeline(seed=9)

        rng = random.Random(9)
        tasksets = generate_client_tasksets(rng, 8, 2, 0.5)
        interconnect = BlueScaleInterconnect(8, buffer_capacity=2)
        interconnect.configure(tasksets)
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        plain = SoCSimulation(clients, interconnect).run(2_000, drain=1_000)
        assert plain.recorder.response_times == monitored.recorder.response_times

    def test_capacity_bound_respected(self):
        timeline, result = run_with_timeline(capacity=10)
        assert len(timeline) == 10
        assert timeline.dropped_records > 0

    def test_unknown_rid_rejected(self):
        timeline, _ = run_with_timeline()
        with pytest.raises(ConfigurationError):
            timeline.of(10**9)

    def test_bad_capacity_rejected(self):
        interconnect = BlueScaleInterconnect(4)
        with pytest.raises(ConfigurationError):
            Timeline(interconnect, capacity=0)


class TestRendering:
    def test_format_contains_hops_and_span(self):
        timeline, _ = run_with_timeline()
        record = timeline.slowest(1)[0]
        text = format_timeline(record)
        assert f"request #{record.rid}" in text
        assert "SE(0, 0)" in text
        assert "#" in text

    def test_slowest_ordering(self):
        timeline, _ = run_with_timeline()
        spans = [
            r.span()[1] - r.span()[0] for r in timeline.slowest(10)
        ]
        assert spans == sorted(spans, reverse=True)


class TestFinalize:
    def test_finalize_adds_completion_events(self):
        rng = random.Random(2)
        tasksets = generate_client_tasksets(rng, 4, 2, 0.4)
        interconnect = BlueScaleInterconnect(4, buffer_capacity=2)
        interconnect.configure(tasksets)
        timeline = Timeline(interconnect)
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]

        completed = []
        inject = interconnect.try_inject
        controller = SoCSimulation(clients, interconnect).controller
        for cycle in range(800):
            if cycle < 500:
                for client in clients:
                    client.tick(cycle, inject)
            interconnect.tick_request_path(cycle)
            controller.tick(cycle)
            for request in interconnect.tick_response_path(cycle):
                completed.append(request)
                clients[request.client_id].on_response(request)
        timeline.finalize(completed)
        record = timeline.of(completed[0].rid)
        labels = [label for label, _ in record.events]
        assert "complete" in labels
