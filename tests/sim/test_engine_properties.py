"""Property-based tests for the engine's event and quiescence semantics.

Hypothesis drives randomized schedules through the engine twice — fast
path on and off — and checks the invariants the simulation relies on:
events fire exactly once in (cycle, insertion-order) order, leaps never
jump over an event or a declared activity, and ``stop()`` halts both
paths at the same cycle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

HORIZON = 120

#: event cycles inside the run window, duplicates welcome (tie-break test)
event_cycles = st.lists(
    st.integers(min_value=0, max_value=HORIZON - 1), min_size=0, max_size=30
)


class Pulse:
    """Quiescent component that declares activity at preset cycles.

    ``tick`` records every executed cycle, so comparing the recorded
    cycles across fast/slow runs shows exactly what a leap skipped.
    """

    def __init__(self, activity):
        self._activity = sorted(set(activity))
        self.ticked = []

    def tick(self, cycle):
        self.ticked.append(cycle)

    def is_quiescent(self):
        return True

    def next_activity_cycle(self, cycle):
        for candidate in self._activity:
            if candidate >= cycle:
                return candidate
        return None


def _run_collect(cycles, activity, fast):
    engine = Engine(fast_path=fast)
    pulse = Pulse(activity)
    engine.register(pulse)
    fired = []
    for index, cycle in enumerate(cycles):
        engine.schedule(cycle, lambda c, i=index: fired.append((c, i)))
    end = engine.run(HORIZON)
    return engine, pulse, fired, end


class TestEventOrdering:
    @given(cycles=event_cycles)
    @settings(max_examples=50, deadline=None)
    def test_events_fire_once_in_cycle_then_insertion_order(self, cycles):
        engine = Engine()
        fired = []
        for index, cycle in enumerate(cycles):
            engine.schedule(cycle, lambda c, i=index: fired.append((c, i)))
        engine.run(HORIZON)
        # Every event fired exactly once, at its cycle, sorted by
        # (cycle, insertion sequence) — the documented tie-break.
        expected = sorted(
            ((cycle, index) for index, cycle in enumerate(cycles)),
            key=lambda pair: (pair[0], pair[1]),
        )
        assert fired == expected
        assert engine.pending_events == 0

    @given(delays=st.lists(st.integers(min_value=0, max_value=50), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_schedule_in_equals_schedule_at_offset(self, delays):
        absolute = Engine()
        relative = Engine()
        fired_abs, fired_rel = [], []
        for delay in delays:
            absolute.schedule(delay, lambda c: fired_abs.append(c))
            relative.schedule_in(delay, lambda c: fired_rel.append(c))
        absolute.run(HORIZON)
        relative.run(HORIZON)
        assert fired_abs == fired_rel


class TestLeapSafety:
    @given(cycles=event_cycles, activity=event_cycles)
    @settings(max_examples=50, deadline=None)
    def test_fast_and_slow_fire_identical_events(self, cycles, activity):
        _, _, fast_fired, fast_end = _run_collect(cycles, activity, True)
        _, _, slow_fired, slow_end = _run_collect(cycles, activity, False)
        assert fast_fired == slow_fired
        assert fast_end == slow_end == HORIZON

    @given(cycles=event_cycles, activity=event_cycles)
    @settings(max_examples=50, deadline=None)
    def test_leaps_never_skip_events_or_activities(self, cycles, activity):
        engine, pulse, _, _ = _run_collect(cycles, activity, True)
        executed = set(pulse.ticked)
        # Every event cycle and every declared activity cycle was
        # actually executed (a leap may only span provably idle cycles).
        assert set(cycles) <= executed
        assert {a for a in activity if a < HORIZON} <= executed
        # Leap accounting adds up to the simulated span.
        assert engine.cycles_executed + engine.cycles_skipped == HORIZON
        assert engine.cycles_executed == len(pulse.ticked)
        assert 0.0 <= engine.skip_ratio <= 1.0

    @given(activity=event_cycles)
    @settings(max_examples=50, deadline=None)
    def test_leap_lands_exactly_on_next_activity(self, activity):
        engine, pulse, _, _ = _run_collect([], activity, True)
        if not activity:
            # Nothing to wake for: one executed cycle, then a single
            # leap to the horizon.
            assert engine.cycles_executed == 1
            return
        # Ticked cycles are exactly cycle 0 plus runs starting at each
        # declared activity (an executed cycle declares the next one).
        assert pulse.ticked[0] == 0
        assert set(activity) <= set(pulse.ticked)


class TestStopSemantics:
    @given(
        stop_at=st.integers(min_value=0, max_value=HORIZON - 1),
        activity=event_cycles,
    )
    @settings(max_examples=50, deadline=None)
    def test_stop_halts_both_paths_at_same_cycle(self, stop_at, activity):
        ends = []
        for fast in (True, False):
            engine = Engine(fast_path=fast)
            engine.register(Pulse(activity))
            engine.schedule(stop_at, lambda c: engine.stop())
            ends.append(engine.run(HORIZON))
        # stop() takes effect at the end of the stopping cycle, and a
        # pending stop suppresses any further leap.
        assert ends[0] == ends[1] == stop_at + 1

    @given(stop_at=st.integers(min_value=0, max_value=HORIZON - 1))
    @settings(max_examples=25, deadline=None)
    def test_run_can_resume_after_stop(self, stop_at):
        engine = Engine()
        pulse = Pulse([])
        engine.register(pulse)
        engine.schedule(stop_at, lambda c: engine.stop())
        first = engine.run(HORIZON)
        assert first == stop_at + 1
        second = engine.run(HORIZON)
        assert second == HORIZON
        assert engine.cycles_executed + engine.cycles_skipped == HORIZON
