"""Differential tests: batched SoA backend vs. the scalar engine.

Every interconnect design is simulated on the same randomized workload
three ways — through :func:`repro.sim.batched.run_many` (lock-step
numpy kernels), on the scalar engine with the quiescence fast path,
and on the literal cycle-by-cycle reference — and all three must be
*bit-for-bit identical*: same completion-trace digest, same recorder
contents, same job outcomes, same conservation counters.

This is the safety net for the entire batched backend: any vectorized
stage that reorders an arbitration decision, drops a blocking charge,
or mistimes a release by one cycle shows up here as a digest mismatch.
The executor-level test at the bottom closes the loop end to end:
campaign results through :class:`ParallelExecutor` are identical
across worker counts on the batched backend.
"""

from __future__ import annotations

import random

import pytest

from repro.clients.accelerator import AcceleratorClient
from repro.clients.traffic_generator import TrafficGenerator
from repro.experiments.factory import INTERCONNECT_NAMES, build_interconnect
from repro.sim import batched_supported, run_many, set_default_sim_backend
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets

HORIZON = 1_200
DRAIN = 600


def build_sim(
    name: str,
    n_clients: int,
    utilization: float,
    seed: int,
    *,
    accelerator: bool = False,
    fast: bool = True,
) -> SoCSimulation:
    """One fresh trial setup; equal arguments build identical trials."""
    rng = random.Random(seed)
    tasksets = generate_client_tasksets(
        rng,
        n_clients=n_clients,
        tasks_per_client=3,
        system_utilization=utilization,
    )
    interconnect = build_interconnect(name, n_clients, tasksets)
    clients: list = [
        TrafficGenerator(
            client_id, tasksets[client_id], rng=random.Random(9_000 + seed + client_id)
        )
        for client_id in range(n_clients - 1 if accelerator else n_clients)
    ]
    if accelerator:
        clients.append(
            AcceleratorClient(
                n_clients - 1,
                tasksets[n_clients - 1],
                bandwidth_cap=1.0 / n_clients,
                rng=random.Random(7 + seed),
            )
        )
    return SoCSimulation(clients, interconnect, fast_path=fast)


def snapshot(sim: SoCSimulation, result) -> dict:
    """Everything observable about one finished trial."""
    recorder = sim.recorder
    return {
        "digest": result.trace_digest,
        "response_times": list(recorder.response_times),
        "blocking_times": list(recorder.blocking_times),
        "completed": recorder.completed,
        "missed": recorder.missed,
        "dropped": recorder.dropped,
        "job_outcomes": result.job_outcomes,
        "released": result.requests_released,
        "requests_completed": result.requests_completed,
        "requests_dropped": result.requests_dropped,
        "in_flight": result.requests_in_flight,
        "mean_blocking": result.mean_blocking,
        "miss_ratio": result.deadline_miss_ratio,
        "span": result.cycles_executed + result.cycles_skipped,
    }


def assert_matches_scalar(
    name: str,
    n_clients: int,
    utilization: float,
    seeds: list[int],
    *,
    accelerator: bool = False,
    slow_reference: bool = False,
) -> None:
    """One batched run over ``seeds`` vs one scalar run per seed."""
    batch = [
        build_sim(name, n_clients, utilization, seed, accelerator=accelerator)
        for seed in seeds
    ]
    assert all(batched_supported(sim) for sim in batch), name
    batched = run_many(batch, HORIZON, drain=DRAIN, backend="batched")
    for seed, sim, result in zip(seeds, batch, batched):
        scalar_sim = build_sim(
            name, n_clients, utilization, seed, accelerator=accelerator
        )
        scalar = scalar_sim.run(HORIZON, drain=DRAIN)
        label = f"{name}/n={n_clients}/u={utilization}/seed={seed}"
        assert snapshot(sim, result) == snapshot(scalar_sim, scalar), label
        if slow_reference:
            slow_sim = build_sim(
                name,
                n_clients,
                utilization,
                seed,
                accelerator=accelerator,
                fast=False,
            )
            slow = slow_sim.run(HORIZON, drain=DRAIN)
            assert snapshot(sim, result) == snapshot(slow_sim, slow), label


@pytest.mark.parametrize("name", INTERCONNECT_NAMES)
@pytest.mark.parametrize("n_clients", [16, 32, 64])
def test_batched_identical_to_scalar(name, n_clients):
    """Batched ≡ scalar-fast for every design at three system sizes,
    low and high utilization, multiple seeds per batch."""
    for utilization in (0.15, 0.65):
        assert_matches_scalar(name, n_clients, utilization, [11, 42, 77])


@pytest.mark.parametrize("name", INTERCONNECT_NAMES)
def test_batched_identical_to_slow_reference(name):
    """Batched ≡ the literal cycle-by-cycle loop (``fast_path=False``):
    the equivalence chain does not lean on the fast path's own proofs."""
    assert_matches_scalar(name, 16, 0.45, [5, 23], slow_reference=True)


@pytest.mark.parametrize("name", ["BlueScale", "AXI-IC^RT", "GSMTree-FBSP"])
def test_batched_with_accelerator_client(name):
    """The Fig. 7 population (bandwidth-capped accelerator) batches
    identically — the interval-gated injection path is exercised."""
    assert_matches_scalar(name, 16, 0.4, [3, 14], accelerator=True)


def test_mixed_designs_one_call():
    """One ``run_many`` over all six designs at once: grouping by
    structural signature keeps every trial on its own kernel."""
    seeds = [1, 2]
    sims = [
        build_sim(name, 16, 0.3, seed)
        for name in INTERCONNECT_NAMES
        for seed in seeds
    ]
    results = run_many(sims, HORIZON, drain=DRAIN, backend="batched")
    at = 0
    for name in INTERCONNECT_NAMES:
        for seed in seeds:
            scalar_sim = build_sim(name, 16, 0.3, seed)
            scalar = scalar_sim.run(HORIZON, drain=DRAIN)
            assert (
                snapshot(sims[at], results[at])
                == snapshot(scalar_sim, scalar)
            ), f"{name}/seed={seed}"
            at += 1


def test_scalar_backend_runs_the_scalar_engine():
    """``backend="scalar"`` is the oracle: plain ``sim.run`` per trial."""
    sims = [build_sim("BlueScale", 16, 0.3, seed) for seed in (1, 2)]
    via_run_many = run_many(sims, HORIZON, drain=DRAIN, backend="scalar")
    for seed, sim, result in zip((1, 2), sims, via_run_many):
        scalar_sim = build_sim("BlueScale", 16, 0.3, seed)
        scalar = scalar_sim.run(HORIZON, drain=DRAIN)
        assert snapshot(sim, result) == snapshot(scalar_sim, scalar)
        # the scalar path really ran the engine (fast path leaps)
        assert result.cycles_skipped > 0 or result.cycles_executed > 0


def test_executor_results_identical_across_worker_counts():
    """Fig. 6 campaign outcomes are bit-identical under the batched
    backend for --workers 1, 2 and 3 (and equal to the scalar oracle)."""
    from repro.experiments.fig6 import Fig6Config, build_fig6_specs, run_fig6_trial
    from repro.runtime import make_executor

    config = Fig6Config(trials=4, horizon=1_500, drain=500)
    specs = build_fig6_specs(config)

    def fingerprint(outcomes):
        return [(o.metrics.scalars, o.metrics.tags, o.error) for o in outcomes]

    previous = set_default_sim_backend("batched")
    try:
        batched_runs = [
            fingerprint(make_executor(workers).map(run_fig6_trial, specs))
            for workers in (1, 2, 3)
        ]
        set_default_sim_backend("scalar")
        oracle = fingerprint(make_executor(1).map(run_fig6_trial, specs))
    finally:
        set_default_sim_backend(previous)
    assert batched_runs[0] == batched_runs[1] == batched_runs[2]
    assert batched_runs[0] == oracle
