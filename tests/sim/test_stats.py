"""Unit and property tests for statistics collection."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import LatencyRecorder, SummaryStatistics, mean


class TestSummaryStatistics:
    def test_empty_sample(self):
        summary = SummaryStatistics.from_sample([])
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.maximum == 0.0

    def test_single_value(self):
        summary = SummaryStatistics.from_sample([7.0])
        assert summary.count == 1
        assert summary.mean == 7.0
        assert summary.minimum == summary.maximum == 7.0
        assert summary.p50 == summary.p99 == 7.0

    def test_known_sample(self):
        summary = SummaryStatistics.from_sample([1, 2, 3, 4, 5])
        assert summary.mean == 3.0
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.p50 == 3

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_percentiles_within_range(self, sample):
        summary = SummaryStatistics.from_sample(sample)
        assert summary.minimum <= summary.p50 <= summary.maximum
        assert summary.p50 <= summary.p95 <= summary.maximum
        assert summary.p95 <= summary.p99 <= summary.maximum
        # float summation can put the mean an ulp outside [min, max]
        slack = 1e-9 * max(1.0, abs(summary.maximum))
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=50))
    def test_std_nonnegative(self, sample):
        assert SummaryStatistics.from_sample(sample).std >= 0


class TestLatencyRecorder:
    def test_records_completion(self):
        recorder = LatencyRecorder()
        recorder.record_completion(10, 2, met_deadline=True)
        recorder.record_completion(20, 5, met_deadline=False)
        assert recorder.completed == 2
        assert recorder.missed == 1
        assert recorder.deadline_miss_ratio == 0.5

    def test_drop_counts_as_miss(self):
        recorder = LatencyRecorder()
        recorder.record_completion(10, 0, met_deadline=True)
        recorder.record_drop()
        assert recorder.issued == 2
        assert recorder.deadline_miss_ratio == 0.5

    def test_empty_recorder_has_zero_ratio(self):
        assert LatencyRecorder().deadline_miss_ratio == 0.0

    def test_merge_accumulates(self):
        a = LatencyRecorder()
        a.record_completion(10, 1, True)
        b = LatencyRecorder()
        b.record_completion(20, 2, False)
        b.record_drop()
        a.merge(b)
        assert a.completed == 2
        assert a.missed == 2
        assert a.dropped == 1
        assert a.response_times == [10, 20]

    def test_summaries_reflect_samples(self):
        recorder = LatencyRecorder()
        for latency in (5, 10, 15):
            recorder.record_completion(latency, latency // 5, True)
        assert recorder.response_summary().mean == 10
        assert recorder.blocking_summary().maximum == 3


class TestMeanHelper:
    def test_empty(self):
        assert mean([]) == 0.0

    def test_values(self):
        assert mean([1, 2, 3]) == 2.0

    def test_generator_input(self):
        assert mean(x for x in (4, 6)) == 5.0
