"""Property-based tests for the batched backend's batching semantics.

The differential suite (test_batched_equivalence.py) pins batched ≡
scalar on fixed grids; hypothesis covers the *batching algebra* on
randomized draws: how trials are grouped must never matter.

* batch-of-N ≡ N batches-of-1 — lock-step grouping is invisible;
* input order invariance — results follow their sims, whatever the
  submission order (grouping by structural signature reorders
  internally);
* ragged batches — per-trial horizons/drains freeze each trial at its
  own boundary, identical to running it alone.

Workloads are kept tiny (5 clients, short horizons) so hypothesis can
afford real examples; the scalar oracle runs inside every property.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients.traffic_generator import TrafficGenerator
from repro.experiments.factory import INTERCONNECT_NAMES, build_interconnect
from repro.sim import run_many
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets

N_CLIENTS = 5
HORIZON = 800
DRAIN = 400

designs = st.sampled_from(INTERCONNECT_NAMES)
seeds = st.lists(
    st.integers(min_value=0, max_value=10_000),
    min_size=1,
    max_size=4,
    unique=True,
)
utilizations = st.sampled_from([0.1, 0.35, 0.7])


def build_sim(name: str, utilization: float, seed: int) -> SoCSimulation:
    rng = random.Random(seed)
    tasksets = generate_client_tasksets(
        rng,
        n_clients=N_CLIENTS,
        tasks_per_client=2,
        system_utilization=utilization,
    )
    interconnect = build_interconnect(name, N_CLIENTS, tasksets)
    clients = [
        TrafficGenerator(c, ts, rng=random.Random(seed * 131 + c))
        for c, ts in tasksets.items()
    ]
    return SoCSimulation(clients, interconnect)


def digest_of(result) -> str:
    return result.trace_digest


class TestBatchingAlgebra:
    @given(name=designs, utilization=utilizations, seed_list=seeds)
    @settings(max_examples=15, deadline=None)
    def test_batch_of_n_equals_n_batches_of_one(
        self, name, utilization, seed_list
    ):
        together = run_many(
            [build_sim(name, utilization, s) for s in seed_list],
            HORIZON,
            drain=DRAIN,
            backend="batched",
        )
        alone = [
            run_many(
                [build_sim(name, utilization, s)],
                HORIZON,
                drain=DRAIN,
                backend="batched",
            )[0]
            for s in seed_list
        ]
        assert [digest_of(r) for r in together] == [
            digest_of(r) for r in alone
        ]
        assert [r.job_outcomes for r in together] == [
            r.job_outcomes for r in alone
        ]

    @given(
        name=designs,
        utilization=utilizations,
        seed_list=seeds,
        shuffle_seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=15, deadline=None)
    def test_input_order_is_irrelevant(
        self, name, utilization, seed_list, shuffle_seed
    ):
        shuffled = list(seed_list)
        random.Random(shuffle_seed).shuffle(shuffled)
        in_order = run_many(
            [build_sim(name, utilization, s) for s in seed_list],
            HORIZON,
            drain=DRAIN,
            backend="batched",
        )
        out_of_order = run_many(
            [build_sim(name, utilization, s) for s in shuffled],
            HORIZON,
            drain=DRAIN,
            backend="batched",
        )
        by_seed = dict(zip(shuffled, (digest_of(r) for r in out_of_order)))
        assert [digest_of(r) for r in in_order] == [
            by_seed[s] for s in seed_list
        ]

    @given(
        name=designs,
        seed_list=seeds,
        horizon_steps=st.lists(
            st.integers(min_value=1, max_value=4), min_size=4, max_size=4
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_ragged_batches_match_solo_runs(
        self, name, seed_list, horizon_steps
    ):
        """Trials with different horizons/drains share one lock-step
        group; each must end exactly as if it ran alone."""
        horizons = [200 * horizon_steps[i % 4] for i in range(len(seed_list))]
        drains = [h // 2 for h in horizons]
        ragged = run_many(
            [build_sim(name, 0.35, s) for s in seed_list],
            horizons,
            drain=drains,
            backend="batched",
        )
        for seed, horizon, drain, result in zip(
            seed_list, horizons, drains, ragged
        ):
            solo_sim = build_sim(name, 0.35, seed)
            solo = solo_sim.run(horizon, drain=drain)
            assert digest_of(result) == digest_of(solo), (
                f"{name}/seed={seed}/h={horizon}"
            )
            assert result.job_outcomes == solo.job_outcomes
            assert result.requests_released == solo.requests_released
            assert result.requests_dropped == solo.requests_dropped
