"""Tests for trace capture, persistence and replay."""

import random

import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError
from repro.interconnects.bluetree import BlueTreeInterconnect
from repro.sim.trace import (
    TraceRecord,
    TraceReplayClient,
    load_trace,
    save_trace,
    split_by_client,
    trace_from_clients,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def record(release=0, client=0, address=0, deadline=None, **kwargs):
    return TraceRecord(
        release_cycle=release,
        client_id=client,
        address=address,
        absolute_deadline=deadline if deadline is not None else release + 100,
        **kwargs,
    )


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            record(release=10, deadline=10)
        with pytest.raises(ConfigurationError):
            record(kind="erase")

    def test_to_request_roundtrip(self):
        rec = record(release=5, client=3, address=256, deadline=77, kind="write")
        request = rec.to_request()
        assert request.client_id == 3
        assert request.release_cycle == 5
        assert request.absolute_deadline == 77
        assert request.kind.value == "write"

    def test_ordering(self):
        early = record(release=1, client=5)
        late = record(release=2, client=0)
        assert sorted([late, early]) == [early, late]


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        records = [record(release=i, client=i % 3, address=64 * i) for i in range(10)]
        path = tmp_path / "trace.jsonl"
        assert save_trace(records, path) == 10
        loaded = load_trace(path)
        assert loaded == records

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"release_cycle": 0}\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace([record()], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == 1


class TestCaptureAndReplay:
    def run_generators(self, tasksets, interconnect, horizon=3000):
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        result = SoCSimulation(clients, interconnect).run(horizon, drain=2000)
        return clients, result

    def test_capture_counts_match(self):
        rng = random.Random(2)
        tasksets = generate_client_tasksets(rng, 4, 2, 0.4)
        clients, result = self.run_generators(tasksets, BlueScaleInterconnect(4))
        records = trace_from_clients(clients)
        assert len(records) == result.requests_released - result.requests_dropped

    def test_replay_reproduces_workload(self):
        """Replaying a captured trace releases the same transactions."""
        rng = random.Random(2)
        tasksets = generate_client_tasksets(rng, 4, 2, 0.4)
        clients, original = self.run_generators(tasksets, BlueScaleInterconnect(4))
        records = trace_from_clients(clients)
        per_client = split_by_client(records)
        replay_clients = [
            TraceReplayClient(c, recs) for c, recs in per_client.items()
        ]
        replayed = SoCSimulation(
            replay_clients, BlueScaleInterconnect(4)
        ).run(3000, drain=2000)
        assert replayed.requests_released == len(records)
        assert replayed.requests_completed == len(records)

    def test_paired_comparison_across_interconnects(self):
        """The same trace drives two designs — a paired experiment."""
        rng = random.Random(7)
        tasksets = generate_client_tasksets(rng, 8, 2, 0.7)
        clients, _ = self.run_generators(tasksets, BlueScaleInterconnect(8))
        per_client = split_by_client(trace_from_clients(clients))

        def run_on(interconnect):
            replay = [TraceReplayClient(c, r) for c, r in per_client.items()]
            return SoCSimulation(replay, interconnect).run(3000, drain=3000)

        blue = run_on(BlueScaleInterconnect(8))
        tree = run_on(BlueTreeInterconnect(8))
        assert blue.requests_released == tree.requests_released
        assert blue.deadline_miss_ratio <= tree.deadline_miss_ratio + 0.05

    def test_replay_client_rejects_foreign_records(self):
        with pytest.raises(ConfigurationError):
            TraceReplayClient(0, [record(client=1)])

    def test_replay_overflow_counts_drops(self):
        records = [record(release=0, address=64 * i) for i in range(5)]
        client = TraceReplayClient(0, records, pending_capacity=2)
        client.tick(0, lambda request, cycle: False)
        assert client.dropped_requests == 3
        assert client.pending_count == 2


class TestReplayDeterminism:
    def test_two_replays_identical(self):
        taskset = TaskSet([PeriodicTask(period=50, wcet=2, name="t", client_id=0)])
        clients = [TrafficGenerator(0, taskset)]
        SoCSimulation(clients, BlueScaleInterconnect(4)).run(500, drain=500)
        records = trace_from_clients(clients)

        def run():
            replay = [TraceReplayClient(0, list(records))]
            return SoCSimulation(replay, BlueScaleInterconnect(4)).run(
                500, drain=500
            )

        a, b = run(), run()
        assert a.recorder.response_times == b.recorder.response_times
