"""Unit tests for the simulation clock."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import Clock


class TestClockBasics:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_tick_advances(self):
        clock = Clock()
        assert clock.tick() == 1
        assert clock.tick(9) == 10
        assert clock.now == 10

    def test_tick_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Clock().tick(-1)

    def test_reset(self):
        clock = Clock()
        clock.tick(42)
        clock.reset()
        assert clock.now == 0

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigurationError):
            Clock(frequency_mhz=0)
        with pytest.raises(ConfigurationError):
            Clock(frequency_mhz=-5)


class TestUnitConversion:
    def test_cycle_time_at_100mhz(self):
        assert Clock(frequency_mhz=100).cycle_time_us == pytest.approx(0.01)

    def test_cycles_to_us_roundtrip(self):
        clock = Clock(frequency_mhz=100)
        assert clock.cycles_to_us(100) == pytest.approx(1.0)
        assert clock.us_to_cycles(1.0) == 100

    def test_us_to_cycles_rounds_up(self):
        clock = Clock(frequency_mhz=100)
        # 0.015us = 1.5 cycles -> must not under-provision time
        assert clock.us_to_cycles(0.015) == 2

    def test_one_mhz_clock_has_us_cycles(self):
        clock = Clock(frequency_mhz=1.0)
        assert clock.cycles_to_us(7) == pytest.approx(7.0)
