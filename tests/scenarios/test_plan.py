"""ScenarioPlan/ScenarioEvent: validation, determinism, transforms."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ScenarioEvent,
    ScenarioKind,
    ScenarioPlan,
    proposed_tasksets,
    rate_scaled,
)
from repro.tasks import PeriodicTask, TaskSet


def join_event(**overrides):
    defaults = dict(
        kind=ScenarioKind.CLIENT_JOIN,
        cycle=100,
        client_id=2,
        tasks=(PeriodicTask(period=200, wcet=2, name="j"),),
    )
    defaults.update(overrides)
    return ScenarioEvent(**defaults)


class TestEventValidation:
    def test_negative_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            join_event(cycle=-1)

    def test_negative_client_rejected(self):
        with pytest.raises(ConfigurationError):
            join_event(client_id=-1)

    @pytest.mark.parametrize(
        "kind", (ScenarioKind.CLIENT_JOIN, ScenarioKind.MODE_SWITCH)
    )
    def test_payload_kinds_need_tasks(self, kind):
        with pytest.raises(ConfigurationError):
            ScenarioEvent(kind=kind, cycle=0, client_id=0, tasks=())

    @pytest.mark.parametrize(
        "kind", (ScenarioKind.CLIENT_LEAVE, ScenarioKind.RATE_CHANGE)
    )
    def test_non_payload_kinds_refuse_tasks(self, kind):
        with pytest.raises(ConfigurationError):
            ScenarioEvent(
                kind=kind,
                cycle=0,
                client_id=0,
                tasks=(PeriodicTask(period=100, wcet=1, name="x"),),
            )

    def test_rate_change_needs_positive_factor(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent(
                kind=ScenarioKind.RATE_CHANGE,
                cycle=0,
                client_id=0,
                factor=0.0,
            )

    def test_factor_refused_outside_rate_change(self):
        with pytest.raises(ConfigurationError):
            join_event(factor=2.0)


class TestRateScaled:
    def test_periods_scaled_wcets_kept(self):
        ts = TaskSet(
            [
                PeriodicTask(period=100, wcet=4, name="a", client_id=1),
                PeriodicTask(period=301, wcet=2, name="b", client_id=1),
            ]
        )
        scaled = rate_scaled(ts, 2.0)
        by_name = {t.name: t for t in scaled}
        assert by_name["a"].period == 200 and by_name["a"].wcet == 4
        assert by_name["b"].period == 602 and by_name["b"].wcet == 2
        assert by_name["a"].client_id == 1

    def test_period_clamped_at_wcet(self):
        ts = TaskSet([PeriodicTask(period=10, wcet=8, name="a")])
        scaled = rate_scaled(ts, 0.1)
        assert next(iter(scaled)).period == 8

    def test_bad_factor(self):
        with pytest.raises(ConfigurationError):
            rate_scaled(TaskSet(), 0)


class TestProposed:
    def test_join_merges_and_stamps_client(self):
        current = TaskSet([PeriodicTask(period=100, wcet=1, name="old")])
        after = join_event(client_id=5).proposed(current)
        assert len(after) == 2
        joined = next(t for t in after if t.name == "j")
        assert joined.client_id == 5

    def test_leave_empties(self):
        event = ScenarioEvent(
            kind=ScenarioKind.CLIENT_LEAVE, cycle=0, client_id=1
        )
        assert len(event.proposed(TaskSet([PeriodicTask(100, 1)]))) == 0

    def test_mode_switch_replaces(self):
        event = ScenarioEvent(
            kind=ScenarioKind.MODE_SWITCH,
            cycle=0,
            client_id=3,
            tasks=(PeriodicTask(period=50, wcet=1, name="new"),),
        )
        after = event.proposed(TaskSet([PeriodicTask(100, 1, name="old")]))
        assert [t.name for t in after] == ["new"]

    def test_proposed_tasksets_is_pure(self):
        current = {0: TaskSet([PeriodicTask(100, 1, name="a")])}
        event = ScenarioEvent(
            kind=ScenarioKind.CLIENT_LEAVE, cycle=0, client_id=0
        )
        after = proposed_tasksets(current, event)
        assert len(after[0]) == 0
        assert len(current[0]) == 1  # untouched

    def test_leave_keeps_entry(self):
        after = proposed_tasksets(
            {},
            ScenarioEvent(
                kind=ScenarioKind.CLIENT_LEAVE, cycle=0, client_id=7
            ),
        )
        assert 7 in after and len(after[7]) == 0


class TestPlan:
    def test_events_sorted_by_cycle(self):
        plan = ScenarioPlan(
            (
                join_event(cycle=500),
                ScenarioEvent(
                    kind=ScenarioKind.CLIENT_LEAVE, cycle=100, client_id=0
                ),
            )
        )
        assert [e.cycle for e in plan] == [100, 500]

    def test_none_is_empty(self):
        assert ScenarioPlan.none().empty
        assert len(ScenarioPlan.none()) == 0

    def test_of_kind_and_clients(self):
        plan = ScenarioPlan(
            (
                join_event(client_id=2),
                ScenarioEvent(
                    kind=ScenarioKind.CLIENT_LEAVE, cycle=200, client_id=4
                ),
            )
        )
        assert len(plan.of_kind(ScenarioKind.CLIENT_JOIN)) == 1
        assert plan.clients() == frozenset({2, 4})

    def test_plan_pickles(self):
        plan = ScenarioPlan((join_event(),))
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestGenerate:
    def test_deterministic(self):
        a = ScenarioPlan.generate(3, 10_000, 8, joins=2, leaves=2)
        b = ScenarioPlan.generate(3, 10_000, 8, joins=2, leaves=2)
        assert a == b

    def test_seed_changes_plan(self):
        a = ScenarioPlan.generate(3, 10_000, 8)
        b = ScenarioPlan.generate(4, 10_000, 8)
        assert a != b

    def test_counts_and_window(self):
        plan = ScenarioPlan.generate(
            1, 8_000, 16, joins=2, leaves=3, rate_changes=1, mode_switches=2
        )
        assert len(plan.of_kind(ScenarioKind.CLIENT_JOIN)) == 2
        assert len(plan.of_kind(ScenarioKind.CLIENT_LEAVE)) == 3
        assert len(plan.of_kind(ScenarioKind.RATE_CHANGE)) == 1
        assert len(plan.of_kind(ScenarioKind.MODE_SWITCH)) == 2
        for event in plan:
            assert 1_000 <= event.cycle < 6_400
            assert 0 <= event.client_id < 16

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            ScenarioPlan.generate(1, 0, 4)
        with pytest.raises(ConfigurationError):
            ScenarioPlan.generate(1, 100, 0)
