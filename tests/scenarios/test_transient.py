"""TransientBound math, changed_ports locality, ledger verification."""

import pytest

from repro.analysis import SystemModel
from repro.clients.traffic_generator import JobRecord
from repro.errors import InfeasibleError
from repro.scenarios import (
    ScenarioEvent,
    ScenarioKind,
    ScenarioPlan,
    TransientBound,
    TransientReport,
    changed_ports,
    compute_transient_bound,
    verify_transients,
)
from repro.tasks import PeriodicTask, TaskSet

SMALL = PeriodicTask(period=1000, wcet=1, name="small")


@pytest.fixture(scope="module")
def model():
    return SystemModel.from_seed(16, utilization=0.3, seed=7)


def _committed_admit(model):
    session = model.session()
    decision = session.admit(3, SMALL)
    assert decision.committed
    return session, decision


class TestChangedPorts:
    def test_identity_is_empty(self, model):
        assert changed_ports(model.baseline, model.baseline) == []

    def test_admit_touches_only_the_client_path(self, model):
        _, decision = _committed_admit(model)
        touched = changed_ports(model.baseline, decision.composition)
        path = set(model.topology.path_to_root(3))
        assert touched  # the admitted task changed something
        assert {node for node, _ in touched} <= path

    def test_new_node_counts_every_port(self, model):
        one_node = {
            node: interfaces
            for node, interfaces in model.baseline.interfaces.items()
        }
        (victim, ports) = next(iter(one_node.items()))
        import dataclasses

        shrunk = dataclasses.replace(
            model.baseline,
            interfaces={
                n: i for n, i in one_node.items() if n != victim
            },
        )
        touched = changed_ports(shrunk, model.baseline)
        assert {(victim, p) for p in range(len(ports))} <= set(touched)


class TestComputeTransientBound:
    def _event(self):
        return ScenarioEvent(
            kind=ScenarioKind.CLIENT_JOIN,
            cycle=500,
            client_id=3,
            tasks=(SMALL,),
        )

    def test_analytic_window_from_old_regime(self, model):
        session, decision = _committed_admit(model)
        bound = compute_transient_bound(
            0,
            self._event(),
            500,
            dict(model.client_tasksets),
            model.baseline,
            decision.composition,
        )
        assert bound.analytic
        assert bound.window > 0
        assert bound.cycle == 500 and bound.end == 500 + bound.window
        assert bound.reprogrammed_ports == len(
            changed_ports(model.baseline, decision.composition)
        )
        assert bound.kind is ScenarioKind.CLIENT_JOIN

    def test_empty_old_system_has_zero_window(self, model):
        session, decision = _committed_admit(model)
        bound = compute_transient_bound(
            0,
            self._event(),
            500,
            {c: TaskSet() for c in range(4)},
            model.baseline,
            decision.composition,
        )
        assert bound.window == 0 and bound.analytic

    def test_infeasible_bounds_fall_back_to_max_period(
        self, model, monkeypatch
    ):
        import repro.scenarios.transient as transient_mod

        def explode(*args, **kwargs):
            raise InfeasibleError("edge of schedulability")

        monkeypatch.setattr(
            transient_mod, "holistic_response_bounds", explode
        )
        bound = compute_transient_bound(
            0,
            self._event(),
            500,
            dict(model.client_tasksets),
            model.baseline,
            model.baseline,
        )
        assert not bound.analytic
        assert bound.window == max(
            task.period
            for ts in model.client_tasksets.values()
            for task in ts
        )

    def test_covers_is_inclusive(self):
        bound = TransientBound(
            event_index=0,
            kind=ScenarioKind.CLIENT_LEAVE,
            client_id=1,
            cycle=100,
            window=50,
            reprogrammed_ports=2,
        )
        assert bound.covers(100) and bound.covers(150)
        assert not bound.covers(99) and not bound.covers(151)


class _FakeClient:
    def __init__(self, client_id, jobs):
        self.client_id = client_id
        self.jobs = jobs


def _job(deadline, *, met=True, monitored=True):
    record = JobRecord(
        task_name="t",
        release=deadline - 50,
        deadline=deadline,
        outstanding=0,
        monitored=monitored,
        last_completion=deadline - 1 if met else deadline + 10,
    )
    return record


class TestVerifyTransients:
    BOUND = TransientBound(
        event_index=4,
        kind=ScenarioKind.MODE_SWITCH,
        client_id=0,
        cycle=1_000,
        window=200,
        reprogrammed_ports=3,
    )

    def test_clean_trial_reports_ok(self):
        clients = [_FakeClient(0, [_job(1_100), _job(1_150)])]
        report = verify_transients(clients, (self.BOUND,), 5_000)
        assert report.ok
        assert report.jobs_in_transit == 2
        assert report.max_window == 200 and report.mean_window == 200.0

    def test_miss_inside_window_is_a_violation(self):
        clients = [_FakeClient(7, [_job(1_100, met=False)])]
        report = verify_transients(clients, (self.BOUND,), 5_000)
        assert not report.ok
        (violation,) = report.violations
        assert violation.client_id == 7
        assert violation.deadline == 1_100
        assert violation.event_index == 4

    def test_miss_outside_window_is_not_flagged(self):
        clients = [_FakeClient(0, [_job(3_000, met=False)])]
        report = verify_transients(clients, (self.BOUND,), 5_000)
        assert report.ok and report.jobs_in_transit == 0

    def test_unmonitored_and_truncated_jobs_skipped(self):
        clients = [
            _FakeClient(
                0,
                [
                    _job(1_100, met=False, monitored=False),
                    _job(1_100, met=False),  # deadline > end_cycle below
                ],
            )
        ]
        report = verify_transients(clients, (self.BOUND,), 1_050)
        assert report.ok and report.jobs_in_transit == 0

    def test_empty_bounds_trivially_ok(self):
        report = verify_transients(
            [_FakeClient(0, [_job(100, met=False)])], (), 5_000
        )
        assert report.ok
        assert report.max_window == 0 and report.mean_window == 0.0
