"""replay_plan against a live AdmissionSession and a real daemon."""

import pytest

from repro.analysis import SystemModel
from repro.scenarios import (
    ScenarioEvent,
    ScenarioKind,
    ScenarioPlan,
    proposed_tasksets,
    rate_scaled,
    replay_plan,
    replay_plan_service,
)
from repro.service import ServiceClient, start_background
from repro.tasks import PeriodicTask, TaskSet

SMALL = PeriodicTask(period=1000, wcet=1, name="small")
HEAVY = PeriodicTask(period=64, wcet=60, name="heavy")


@pytest.fixture(scope="module")
def model():
    return SystemModel.from_seed(16, utilization=0.3, seed=7)


def churn_plan(model):
    return ScenarioPlan(
        (
            ScenarioEvent(
                kind=ScenarioKind.CLIENT_JOIN,
                cycle=100,
                client_id=3,
                tasks=(SMALL,),
            ),
            ScenarioEvent(
                kind=ScenarioKind.RATE_CHANGE,
                cycle=200,
                client_id=2,
                factor=2.0,
            ),
            ScenarioEvent(
                kind=ScenarioKind.MODE_SWITCH,
                cycle=300,
                client_id=0,
                tasks=tuple(rate_scaled(model.client_tasksets[0], 1.5)),
            ),
            ScenarioEvent(
                kind=ScenarioKind.CLIENT_LEAVE, cycle=400, client_id=1
            ),
        )
    )


class TestReplayPlan:
    def test_all_events_commit_and_carry_transients(self, model):
        session = model.session()
        replayed = replay_plan(session, churn_plan(model))
        assert [r.applied for r in replayed] == [True] * 4
        for record in replayed:
            assert record.transient is not None
            assert record.transient.cycle == record.event.cycle
            assert record.transient.reprogrammed_ports > 0
            assert record.transient.kind is record.event.kind

    def test_session_state_matches_pure_fold(self, model):
        session = model.session()
        plan = churn_plan(model)
        replay_plan(session, plan, transients=False)
        expected = dict(model.client_tasksets)
        for event in plan.events:
            expected = proposed_tasksets(expected, event)
        for client, taskset in expected.items():
            got = session.tasksets.get(client, TaskSet())
            assert sorted(t.name for t in got) == sorted(
                t.name for t in taskset
            )

    def test_transients_flag_off_skips_bounds(self, model):
        replayed = replay_plan(
            model.session(), churn_plan(model), transients=False
        )
        assert all(r.transient is None for r in replayed)

    def test_rejected_event_leaves_session_untouched(self, model):
        session = model.session()
        plan = ScenarioPlan(
            (
                ScenarioEvent(
                    kind=ScenarioKind.CLIENT_JOIN,
                    cycle=50,
                    client_id=3,
                    tasks=(HEAVY,),
                ),
            )
        )
        (record,) = replay_plan(session, plan)
        assert not record.applied
        assert record.transient is None
        assert record.decision.witness is not None
        assert session.composition is model.baseline

    def test_rate_change_on_empty_client_degenerates_to_evict(self, model):
        session = model.session()
        session.evict(5)
        plan = ScenarioPlan(
            (
                ScenarioEvent(
                    kind=ScenarioKind.RATE_CHANGE,
                    cycle=10,
                    client_id=5,
                    factor=2.0,
                ),
            )
        )
        (record,) = replay_plan(session, plan)
        assert record.applied
        assert 5 not in session.tasksets


class TestReplayPlanService:
    def test_plan_replays_over_http(self, model):
        handle = start_background(model)
        try:
            with ServiceClient(handle.host, handle.port) as client:
                records = replay_plan_service(
                    client,
                    churn_plan(model),
                    initial_tasksets=dict(model.client_tasksets),
                )
        finally:
            handle.stop()
            handle.service.session.reset()
        assert [r["applied"] for r in records] == [True] * 4
        assert [r["kind"] for r in records] == [
            "client-join",
            "rate-change",
            "mode-switch",
            "client-leave",
        ]
        # retask-like events go over the wire as evict + admit
        assert len(records[1]["responses"]) == 2
        assert len(records[3]["responses"]) == 1

    def test_wire_and_inprocess_replays_agree(self, model):
        plan = churn_plan(model)
        local = replay_plan(model.session(), plan, transients=False)
        handle = start_background(model)
        try:
            with ServiceClient(handle.host, handle.port) as client:
                remote = replay_plan_service(
                    client,
                    plan,
                    initial_tasksets=dict(model.client_tasksets),
                )
        finally:
            handle.stop()
            handle.service.session.reset()
        for mine, theirs in zip(local, remote):
            assert mine.applied == theirs["applied"]
