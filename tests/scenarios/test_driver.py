"""ScenarioDriver: inertness, per-kind effects, gating, fast≡slow."""

import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError
from repro.scenarios import (
    ScenarioDriver,
    ScenarioEvent,
    ScenarioKind,
    ScenarioPlan,
    make_driver,
)
from repro.sim.batched import batched_supported
from repro.soc import SoCSimulation
from repro.tasks import PeriodicTask, TaskSet

N = 4


def clients(tasksets=None):
    tasksets = tasksets or {}
    return [
        TrafficGenerator(
            c,
            tasksets.get(
                c,
                TaskSet(
                    [
                        PeriodicTask(
                            period=100, wcet=2, name=f"t{c}", client_id=c
                        )
                    ]
                ),
            ),
        )
        for c in range(N)
    ]


def run_sim(scenario=None, fast_path=True, horizon=1_000, **kwargs):
    sim = SoCSimulation(
        kwargs.pop("clients", clients()),
        BlueScaleInterconnect(N),
        fast_path=fast_path,
        scenario=scenario,
    )
    return sim, sim.run(horizon, drain=300)


def join(cycle=300, client_id=0, period=50, wcet=1):
    return ScenarioEvent(
        kind=ScenarioKind.CLIENT_JOIN,
        cycle=cycle,
        client_id=client_id,
        tasks=(PeriodicTask(period=period, wcet=wcet, name="joined"),),
    )


class TestInertness:
    @pytest.mark.parametrize("fast_path", (True, False))
    def test_empty_plan_bit_for_bit_inert(self, fast_path):
        """ScenarioPlan.none() must not perturb the trace on either
        engine path — the acceptance bar for attaching the subsystem."""
        _, bare = run_sim(scenario=None, fast_path=fast_path)
        _, with_plan = run_sim(
            scenario=ScenarioPlan.none(), fast_path=fast_path
        )
        assert bare.trace_digest == with_plan.trace_digest
        assert bare.requests_completed == with_plan.requests_completed
        assert bare.job_outcomes == with_plan.job_outcomes

    def test_empty_plan_still_reports_counters(self):
        _, result = run_sim(scenario=ScenarioPlan.none())
        assert result.scenario_counters["events_applied"] == 0
        _, bare = run_sim(scenario=None)
        assert bare.scenario_counters == {}

    def test_scenario_sims_fall_back_to_scalar_backend(self):
        """Even an empty plan makes the sim SoA-ineligible (the batched
        finalizer would not produce the scenario ledger)."""
        sim = SoCSimulation(
            clients(),
            BlueScaleInterconnect(N),
            scenario=ScenarioPlan.none(),
        )
        assert not batched_supported(sim)
        bare = SoCSimulation(clients(), BlueScaleInterconnect(N))
        assert batched_supported(bare)


class TestEventEffects:
    def test_join_starts_idle_client(self):
        idle = {3: TaskSet()}
        plan = ScenarioPlan((join(cycle=300, client_id=3),))
        _, result = run_sim(scenario=plan, clients=clients(idle))
        assert result.scenario_counters["joins"] == 1
        judged, missed = result.job_outcomes[3]
        assert judged > 0
        # releases only began at cycle 300 of 1000: about (1000-300)/50
        assert judged <= 15

    def test_leave_stops_releases_and_unmonitors(self):
        plan = ScenarioPlan(
            (
                ScenarioEvent(
                    kind=ScenarioKind.CLIENT_LEAVE, cycle=200, client_id=1
                ),
            )
        )
        _, faded = run_sim(scenario=plan)
        _, stayed = run_sim(scenario=ScenarioPlan.none())
        assert result_judged(faded, 1) < result_judged(stayed, 1)
        assert faded.scenario_counters["leaves"] == 1

    def test_rate_change_slows_releases(self):
        plan = ScenarioPlan(
            (
                ScenarioEvent(
                    kind=ScenarioKind.RATE_CHANGE,
                    cycle=100,
                    client_id=2,
                    factor=4.0,
                ),
            )
        )
        _, slowed = run_sim(scenario=plan)
        _, normal = run_sim(scenario=ScenarioPlan.none())
        assert result_judged(slowed, 2) < result_judged(normal, 2)

    def test_mode_switch_replaces_taskset(self):
        plan = ScenarioPlan(
            (
                ScenarioEvent(
                    kind=ScenarioKind.MODE_SWITCH,
                    cycle=500,
                    client_id=0,
                    tasks=(PeriodicTask(period=25, wcet=1, name="turbo"),),
                ),
            )
        )
        sim, result = run_sim(scenario=plan)
        assert result.scenario_counters["mode_switches"] == 1
        assert [t.name for t in sim.scenario.current_tasksets[0]] == [
            "turbo"
        ]

    def test_unknown_client_is_ignored(self):
        """An event for a client with no generator is recorded as
        ignored and perturbs nothing."""
        plan = ScenarioPlan((join(cycle=300, client_id=N + 3),))
        _, result = run_sim(scenario=plan)
        assert result.scenario_counters["events_ignored"] == 1
        assert result.scenario_counters["events_applied"] == 0
        _, bare = run_sim(scenario=ScenarioPlan.none())
        assert result.trace_digest == bare.trace_digest

    def test_conservation_holds_through_churn(self):
        plan = ScenarioPlan(
            (
                join(cycle=200, client_id=0),
                ScenarioEvent(
                    kind=ScenarioKind.CLIENT_LEAVE, cycle=600, client_id=2
                ),
            )
        )
        _, result = run_sim(scenario=plan)
        assert (
            result.requests_completed
            + result.requests_dropped
            + result.requests_in_flight
            == result.requests_released
        )


def result_judged(result, client_id):
    judged, _ = result.job_outcomes.get(client_id, (0, 0))
    return judged


class TestAdmissionGate:
    def test_veto_leaves_traffic_untouched(self):
        plan = ScenarioPlan((join(cycle=300, client_id=3),))
        idle = {3: TaskSet()}
        driver = ScenarioDriver(plan, admission=lambda *a: False)
        _, result = run_sim(scenario=driver, clients=clients(idle))
        assert result.scenario_counters["events_rejected"] == 1
        assert result.scenario_counters["events_applied"] == 0
        assert result_judged(result, 3) == 0

    def test_gate_sees_proposed_system_view(self):
        seen = {}

        def gate(index, event, cycle, proposed):
            seen["cycle"] = cycle
            seen["proposed"] = {
                c: len(ts) for c, ts in proposed.items()
            }
            return True

        plan = ScenarioPlan((join(cycle=300, client_id=3),))
        driver = ScenarioDriver(plan, admission=gate)
        run_sim(scenario=driver, clients=clients({3: TaskSet()}))
        assert seen["cycle"] == 300
        assert seen["proposed"][3] == 1  # the joined task
        assert seen["proposed"][0] == 1  # everyone else unchanged


class TestDeterminism:
    @pytest.mark.parametrize(
        "events",
        (
            (join(cycle=137, client_id=3),),
            (
                ScenarioEvent(
                    kind=ScenarioKind.CLIENT_LEAVE, cycle=219, client_id=1
                ),
            ),
            (
                ScenarioEvent(
                    kind=ScenarioKind.RATE_CHANGE,
                    cycle=301,
                    client_id=2,
                    factor=0.5,
                ),
            ),
            (
                ScenarioEvent(
                    kind=ScenarioKind.MODE_SWITCH,
                    cycle=411,
                    client_id=0,
                    tasks=(PeriodicTask(period=30, wcet=1, name="m"),),
                ),
            ),
            (
                join(cycle=150, client_id=3),
                ScenarioEvent(
                    kind=ScenarioKind.RATE_CHANGE,
                    cycle=350,
                    client_id=0,
                    factor=2.0,
                ),
                ScenarioEvent(
                    kind=ScenarioKind.CLIENT_LEAVE, cycle=550, client_id=3
                ),
            ),
        ),
        ids=("join", "leave", "rate", "mode", "mixed"),
    )
    def test_fast_equals_slow_under_every_kind(self, events):
        plan = ScenarioPlan(events)
        idle = {3: TaskSet()}
        _, fast = run_sim(
            scenario=plan, fast_path=True, clients=clients(idle)
        )
        _, slow = run_sim(
            scenario=plan, fast_path=False, clients=clients(idle)
        )
        assert fast.trace_digest == slow.trace_digest
        assert fast.scenario_counters == slow.scenario_counters
        assert fast.job_outcomes == slow.job_outcomes

    def test_leap_cannot_skip_an_event(self):
        """A join on an otherwise-idle system: the leap engine must
        still execute the event's exact cycle."""
        idle = {c: TaskSet() for c in range(N)}
        plan = ScenarioPlan((join(cycle=700, client_id=2, period=40),))
        _, fast = run_sim(scenario=plan, fast_path=True, clients=clients(idle))
        _, slow = run_sim(
            scenario=plan, fast_path=False, clients=clients(idle)
        )
        assert fast.scenario_counters["joins"] == 1
        assert fast.trace_digest == slow.trace_digest


class TestMakeDriver:
    def test_normalizes(self):
        assert make_driver(None) is None
        plan = ScenarioPlan.none()
        assert isinstance(make_driver(plan), ScenarioDriver)
        driver = ScenarioDriver(plan)
        assert make_driver(driver) is driver

    def test_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            make_driver("churn")

    def test_counters_shape(self):
        driver = ScenarioDriver(ScenarioPlan.none())
        assert set(driver.counters()) == {
            "events_applied",
            "events_rejected",
            "events_ignored",
            "joins",
            "leaves",
            "rate_changes",
            "mode_switches",
        }
