"""Unit tests for the primitive cost table."""

from repro.hardware.primitives import (
    DEFAULT_PRIMITIVES,
    HardwareReport,
    PrimitiveCosts,
)


class TestPrimitiveCosts:
    def test_mux_scales_with_width(self):
        prim = DEFAULT_PRIMITIVES
        assert prim.mux2_luts(64) == 2 * prim.mux2_luts(32)

    def test_comparator_scales_with_width(self):
        prim = DEFAULT_PRIMITIVES
        assert prim.comparator_luts(48) == 2 * prim.comparator_luts(24)

    def test_request_register_bits(self):
        prim = DEFAULT_PRIMITIVES
        assert prim.request_register_bits(4) == 4 * prim.request_width_bits

    def test_custom_primitives_are_independent(self):
        custom = PrimitiveCosts(request_width_bits=64)
        assert custom.request_register_bits(1) == 64
        assert DEFAULT_PRIMITIVES.request_register_bits(1) == 45

    def test_frozen(self):
        import pytest

        with pytest.raises(AttributeError):
            DEFAULT_PRIMITIVES.request_width_bits = 99


class TestHardwareReport:
    def test_addition_fieldwise(self):
        a = HardwareReport(1, 2, 3, 4, 5.0)
        b = HardwareReport(10, 20, 30, 40, 50.0)
        total = a + b
        assert total == HardwareReport(11, 22, 33, 44, 55.0)

    def test_scaled(self):
        assert HardwareReport(1, 2, 0, 1, 2.5).scaled(4) == HardwareReport(
            4, 8, 0, 4, 10.0
        )

    def test_equality_semantics(self):
        assert HardwareReport(1, 1, 0, 0, 1.0) == HardwareReport(1, 1, 0, 0, 1.0)
        assert HardwareReport(1, 1, 0, 0, 1.0) != HardwareReport(2, 1, 0, 0, 1.0)
