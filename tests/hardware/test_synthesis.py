"""Tests for the synthesis-style utilization report."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cost_model import bluescale_cost, legacy_system_cost
from repro.hardware.synthesis import (
    format_synthesis_report,
    synthesize_bluescale_system,
)


class TestSynthesisReport:
    def test_component_instances_match_topology(self):
        report = synthesize_bluescale_system(16)
        se_lines = [
            line for line in report.components
            if line.name.startswith("scale_element")
        ]
        assert sum(line.instances for line in se_lines) == 5
        roles = [line.name for line in se_lines]
        assert any("root" in name for name in roles)
        assert any("leaf" in name for name in roles)

    def test_totals_are_sum_of_parts(self):
        report = synthesize_bluescale_system(16, include_legacy=True)
        expected = bluescale_cost(16) + legacy_system_cost(16)
        assert report.totals.luts == expected.luts
        assert report.totals.registers == expected.registers

    def test_without_legacy(self):
        report = synthesize_bluescale_system(16, include_legacy=False)
        assert report.totals.luts == bluescale_cost(16).luts

    def test_utilization_fraction(self):
        report = synthesize_bluescale_system(64)
        assert 0 < report.lut_utilization < 1

    def test_timing_never_limited_by_bluescale(self):
        for n in (16, 64, 128):
            report = synthesize_bluescale_system(n)
            assert report.timing_limited_by() == "cores"

    def test_binary_fanout_costs_more(self):
        quad = synthesize_bluescale_system(16, include_legacy=False)
        binary = synthesize_bluescale_system(16, fanout=2, include_legacy=False)
        assert binary.totals.luts > quad.totals.luts

    def test_interior_level_appears_at_64_clients(self):
        report = synthesize_bluescale_system(64)
        assert any("interior" in line.name for line in report.components)

    def test_rejects_single_client(self):
        with pytest.raises(ConfigurationError):
            synthesize_bluescale_system(1)

    def test_formatting_includes_total_and_timing(self):
        text = format_synthesis_report(synthesize_bluescale_system(16))
        assert "TOTAL" in text
        assert "MHz" in text
        assert "utilization" in text
