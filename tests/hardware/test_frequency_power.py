"""Tests for the frequency and power models (Fig. 5(b), 5(c))."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.frequency import (
    arbitration_interval,
    axi_icrt_fmax_mhz,
    bluescale_fmax_mhz,
    legacy_fmax_mhz,
    scaling_factor,
    system_fmax_mhz,
)
from repro.hardware.power import ACTIVITY, estimate_power_mw, raw_power_mw


class TestScalingFactor:
    def test_powers_of_two(self):
        assert scaling_factor(2) == 1
        assert scaling_factor(16) == 4
        assert scaling_factor(128) == 7

    def test_rounds_up_for_intermediate(self):
        assert scaling_factor(17) == 5

    def test_rejects_single_client(self):
        with pytest.raises(ConfigurationError):
            scaling_factor(1)


class TestFrequencyShapes:
    """Obs 3: the crossover structure of Fig. 5(c)."""

    def test_axi_monotonically_decreasing(self):
        values = [axi_icrt_fmax_mhz(2**eta) for eta in range(1, 8)]
        assert values == sorted(values, reverse=True)

    def test_bluescale_always_above_legacy(self):
        for eta in range(1, 8):
            n = 2**eta
            assert bluescale_fmax_mhz(n) > legacy_fmax_mhz(n)

    def test_axi_crosses_below_legacy_past_32_clients(self):
        """Paper: 'when the system had more than 32 clients (eta > 5), the
        maximum frequency of AXI-IC^RT became lower than the legacy
        system'."""
        assert axi_icrt_fmax_mhz(32) >= legacy_fmax_mhz(32)
        assert axi_icrt_fmax_mhz(64) < legacy_fmax_mhz(64)

    def test_system_fmax_is_min(self):
        n = 64
        assert system_fmax_mhz(axi_icrt_fmax_mhz(n), n) == axi_icrt_fmax_mhz(n)
        assert system_fmax_mhz(bluescale_fmax_mhz(n), n) == legacy_fmax_mhz(n)


class TestArbitrationInterval:
    def test_full_speed_interconnect_gets_one(self):
        assert arbitration_interval(16, bluescale_fmax_mhz(16)) == 1
        assert arbitration_interval(16, axi_icrt_fmax_mhz(16)) == 1

    def test_slow_arbiter_gets_multiple_slots(self):
        assert arbitration_interval(64, axi_icrt_fmax_mhz(64)) >= 2

    def test_interval_grows_with_scale(self):
        at_64 = arbitration_interval(64, axi_icrt_fmax_mhz(64))
        at_128 = arbitration_interval(128, axi_icrt_fmax_mhz(128))
        assert at_128 >= at_64


class TestPowerModel:
    def test_raw_power_components(self):
        assert raw_power_mw(0, 0) == 0.0
        assert raw_power_mw(1000, 0) == pytest.approx(8.0)
        assert raw_power_mw(0, 1000) == pytest.approx(3.0)
        assert raw_power_mw(0, 0, ram_kb=2) == pytest.approx(1.0)
        assert raw_power_mw(0, 0, dsps=1) == pytest.approx(10.0)

    def test_negative_resources_rejected(self):
        with pytest.raises(ConfigurationError):
            raw_power_mw(-1, 0)

    def test_estimate_applies_activity(self):
        raw = raw_power_mw(1000, 1000)
        assert estimate_power_mw("bluetree", 1000, 1000) == pytest.approx(
            ACTIVITY["bluetree"] * raw
        )

    def test_unknown_design_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_power_mw("mystery", 10, 10)

    def test_all_activity_factors_reasonable(self):
        assert all(0.5 < a < 3.0 for a in ACTIVITY.values())
