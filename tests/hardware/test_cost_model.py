"""Tests for the hardware cost model — Table 1 calibration and scaling."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cost_model import (
    area_fraction,
    axi_icrt_cost,
    bluescale_cost,
    bluetree_cost,
    bluetree_smooth_cost,
    gsmtree_cost,
    legacy_system_cost,
    microblaze_cost,
    riscv_cost,
    scale_element_cost,
)
from repro.hardware.primitives import HardwareReport

PAPER = {
    "axi": (3744, 3451, 0, 0, 46),
    "bluetree": (1683, 2901, 0, 0, 27),
    "smooth": (2349, 3455, 0, 0, 41),
    "gsm": (2443, 3115, 0, 8, 59),
    "bluescale": (2959, 3312, 0, 10, 67),
}


def assert_close(report: HardwareReport, paper, tol=0.08):
    luts, registers, dsps, ram, power = paper
    assert report.luts == pytest.approx(luts, rel=tol)
    assert report.registers == pytest.approx(registers, rel=tol)
    assert report.dsps == dsps
    assert report.ram_kb == ram
    assert report.power_mw == pytest.approx(power, rel=tol)


class TestTable1Calibration:
    """The 16-client configurations land on the paper's Table 1."""

    def test_axi_icrt(self):
        assert_close(axi_icrt_cost(16), PAPER["axi"])

    def test_bluetree(self):
        assert_close(bluetree_cost(16), PAPER["bluetree"])

    def test_bluetree_smooth(self):
        assert_close(bluetree_smooth_cost(16), PAPER["smooth"])

    def test_gsmtree(self):
        assert_close(gsmtree_cost(16), PAPER["gsm"])

    def test_bluescale(self):
        assert_close(bluescale_cost(16), PAPER["bluescale"])

    def test_reference_processors_exact(self):
        assert microblaze_cost() == HardwareReport(4993, 4295, 6, 256, 369.0)
        assert riscv_cost() == HardwareReport(7433, 16544, 21, 512, 583.0)


class TestTable1Relations:
    """The qualitative claims of Obs 1."""

    def test_bluescale_bigger_than_distributed_trees(self):
        blue = bluescale_cost(16)
        assert blue.luts > bluetree_cost(16).luts
        assert blue.luts > bluetree_smooth_cost(16).luts
        assert blue.luts > gsmtree_cost(16).luts
        assert blue.power_mw > bluetree_cost(16).power_mw

    def test_bluescale_smaller_than_centralized(self):
        blue = bluescale_cost(16)
        axi = axi_icrt_cost(16)
        assert blue.luts < axi.luts
        assert blue.registers < axi.registers

    def test_bluescale_much_smaller_than_processors(self):
        blue = bluescale_cost(16)
        assert blue.luts < 0.65 * microblaze_cost().luts
        assert blue.luts < 0.45 * riscv_cost().luts

    def test_bluescale_uses_no_dsps(self):
        assert bluescale_cost(16).dsps == 0

    def test_bluescale_ram_is_scratchpads(self):
        # 2 KB scratchpad per SE, 5 SEs at 16 clients
        assert bluescale_cost(16).ram_kb == 10


class TestScaling:
    def test_bluescale_scales_with_se_count(self):
        per_se = scale_element_cost()
        assert bluescale_cost(16).luts == 5 * per_se.luts
        assert bluescale_cost(64).luts == 21 * per_se.luts

    def test_bluescale_roughly_linear(self):
        small = bluescale_cost(16).luts
        large = bluescale_cost(64).luts
        assert large / small == pytest.approx(21 / 5, rel=0.01)

    def test_axi_superlinear_per_client(self):
        per_client_16 = axi_icrt_cost(16).luts / 16
        per_client_128 = axi_icrt_cost(128).luts / 128
        assert per_client_128 > per_client_16

    def test_monotone_in_clients(self):
        for cost in (axi_icrt_cost, bluescale_cost, bluetree_cost, gsmtree_cost):
            values = [cost(n).luts for n in (4, 8, 16, 32, 64)]
            assert values == sorted(values)
            assert len(set(values)) == len(values)

    def test_deeper_buffers_cost_more(self):
        assert (
            scale_element_cost(buffer_depth=8).registers
            > scale_element_cost(buffer_depth=2).registers
        )

    def test_rejects_single_client(self):
        with pytest.raises(ConfigurationError):
            bluescale_cost(1)
        with pytest.raises(ConfigurationError):
            axi_icrt_cost(0)


class TestLegacyAndReports:
    def test_legacy_linear(self):
        assert legacy_system_cost(32).luts == 2 * legacy_system_cost(16).luts

    def test_legacy_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            legacy_system_cost(0)

    def test_report_addition(self):
        total = legacy_system_cost(16) + bluescale_cost(16)
        assert total.luts == legacy_system_cost(16).luts + bluescale_cost(16).luts
        assert total.power_mw == pytest.approx(
            legacy_system_cost(16).power_mw + bluescale_cost(16).power_mw
        )

    def test_report_scaled(self):
        report = HardwareReport(10, 20, 1, 2, 5.0)
        assert report.scaled(3) == HardwareReport(30, 60, 3, 6, 15.0)

    def test_area_fraction(self):
        assert area_fraction(HardwareReport(303_600, 0, 0, 0, 0)) == pytest.approx(1.0)
