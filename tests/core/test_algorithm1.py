"""Tests for the literal Algorithm 1 transcription, including the
equivalence check against the SE hardware model."""

import random

from repro.analysis.prm import ResourceInterface
from repro.core.algorithm1 import LocalTask, PendingJob, ServerTask, algorithm1
from repro.core.local_scheduler import LocalScheduler
from repro.core.random_access_buffer import RandomAccessBuffer
from repro.memory.request import MemoryRequest, reset_request_ids


def server(name, deadline, tasks=()):
    return ServerTask(name=name, deadline=deadline, local_tasks=list(tasks))


def local(name, deadline, job_deadlines=()):
    return LocalTask(
        name=name,
        deadline=deadline,
        jobs=[PendingJob(f"{name}.{i}", d) for i, d in enumerate(job_deadlines)],
    )


class TestAlgorithm1Pseudocode:
    def test_empty_ready_set_schedules_nothing(self):
        assert algorithm1([]) is None

    def test_picks_earliest_server_then_earliest_local_job(self):
        ready = [
            server("A", 50, [local("a1", 40, [100])]),
            server("B", 20, [local("b1", 90, [300]), local("b2", 30, [200, 150])]),
        ]
        chosen = algorithm1(ready)
        # server B (deadline 20) wins; local b2 (deadline 30) wins; its
        # earliest pending job is the 150 one
        assert chosen is not None
        assert chosen.deadline == 150
        assert chosen.name.startswith("b2")

    def test_server_without_local_tasks_removed(self):
        empty = server("A", 10)
        busy = server("B", 20, [local("b", 5, [99])])
        ready = [empty, busy]
        chosen = algorithm1(ready)
        assert chosen is not None and chosen.deadline == 99
        assert empty not in ready  # line 14 removed it

    def test_local_task_without_jobs_removed(self):
        jobless = local("x", 10)
        pending = local("y", 20, [77])
        target = server("A", 5, [jobless, pending])
        chosen = algorithm1([target])
        assert chosen is not None and chosen.deadline == 77
        assert jobless not in target.local_tasks  # line 10 removed it

    def test_returns_none_when_nothing_pending(self):
        ready = [server("A", 10, [local("a", 5)]), server("B", 20)]
        assert algorithm1(ready) is None
        assert ready == []  # everything drained


class TestHardwareImplementsAlgorithm1:
    """The SE's nested queues make the same decision as Algorithm 1."""

    def test_equivalence_on_random_states(self):
        rng = random.Random(99)
        for trial in range(200):
            reset_request_ids()
            # Build a random SE state: 4 ports with budgets and requests.
            interfaces = []
            servers = []
            buffers = []
            for port in range(4):
                period = rng.randint(2, 40)
                interfaces.append(ResourceInterface(period, period))
                buffer = RandomAccessBuffer(capacity=8)
                deadlines = [
                    rng.randint(1, 500) for _ in range(rng.randint(0, 4))
                ]
                jobs = []
                for d in deadlines:
                    request = MemoryRequest(
                        client_id=port, release_cycle=0, absolute_deadline=d
                    )
                    buffer.load(request)
                    jobs.append(PendingJob(str(request.rid), d))
                buffers.append(buffer)
                servers.append((port, period, jobs))
            scheduler = LocalScheduler(interfaces)
            # All servers have full budget (Theta = Pi), so eligibility
            # matches Algorithm 1's abstract ready set.
            hw_port = scheduler.select_port(buffers)
            ready = [
                ServerTask(
                    name=str(port),
                    deadline=scheduler.servers[port].deadline,
                    local_tasks=[
                        # the port buffer is one local "task" whose jobs
                        # are the buffered requests
                        LocalTask(name=f"p{port}", deadline=min(
                            (j.deadline for j in jobs),
                            default=10**9,
                        ), jobs=list(jobs))
                    ]
                    if jobs
                    else [],
                )
                for port, period, jobs in servers
            ]
            chosen = algorithm1(ready)
            if hw_port is None:
                assert chosen is None, f"trial {trial}"
            else:
                assert chosen is not None, f"trial {trial}"
                winner = buffers[hw_port].peek_highest_priority()
                # Algorithm 1 ties (equal server deadlines) are broken
                # arbitrarily; the hardware breaks them by pending
                # request deadline, so compare the job deadline.
                hw_deadline = winner.absolute_deadline
                candidates = [
                    s for s in range(4)
                    if servers[s][2]
                    and scheduler.servers[s].deadline
                    == min(
                        scheduler.servers[p].deadline
                        for p, _, j in servers
                        if j
                    )
                ]
                allowed = {
                    min(j.deadline for j in servers[c][2]) for c in candidates
                }
                assert hw_deadline in allowed or chosen.deadline == hw_deadline
