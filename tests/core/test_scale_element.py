"""Unit tests for the Scale Element."""

import pytest

from repro.analysis.prm import ResourceInterface
from repro.core.scale_element import ScaleElement
from repro.errors import ConfigurationError

from tests.conftest import make_request


def full_bandwidth_se(node=(0, 0), capacity=4):
    return ScaleElement(
        node,
        buffer_capacity=capacity,
        interfaces=[ResourceInterface(1, 1)] * 4,
    )


class Sink:
    """Provider hook that accepts everything and records order."""

    def __init__(self, accept=True):
        self.accept = accept
        self.received = []

    def __call__(self, request, cycle):
        if self.accept:
            self.received.append((request, cycle))
            return True
        return False


class TestIngress:
    def test_accepts_until_port_full(self):
        se = full_bandwidth_se(capacity=2)
        assert se.try_accept(0, make_request())
        assert se.try_accept(0, make_request())
        assert not se.try_accept(0, make_request())
        assert se.try_accept(1, make_request())  # other port unaffected

    def test_port_range_checked(self):
        with pytest.raises(ConfigurationError):
            full_bandwidth_se().try_accept(4, make_request())

    def test_needs_exactly_four_interfaces(self):
        with pytest.raises(ConfigurationError):
            ScaleElement((0, 0), interfaces=[ResourceInterface(1, 1)] * 3)


class TestForwarding:
    def test_forwards_one_per_cycle(self):
        se = full_bandwidth_se()
        sink = Sink()
        se.forward_to_provider = sink
        for port in range(3):
            se.try_accept(port, make_request(deadline=100 + port))
        for cycle in range(3):
            se.tick(cycle)
        assert len(sink.received) == 3
        assert se.forwarded == 3

    def test_edf_across_ports(self):
        """The nested queues pick the earliest-deadline request among
        eligible ports each cycle."""
        se = full_bandwidth_se()
        sink = Sink()
        se.forward_to_provider = sink
        relaxed = make_request(deadline=900)
        urgent = make_request(deadline=100)
        middle = make_request(deadline=500)
        se.try_accept(0, relaxed)
        se.try_accept(1, urgent)
        se.try_accept(2, middle)
        for cycle in range(3):
            se.tick(cycle)
        order = [r for r, _ in sink.received]
        assert order == [urgent, middle, relaxed]

    def test_stall_on_provider_backpressure(self):
        se = full_bandwidth_se()
        se.forward_to_provider = Sink(accept=False)
        request = make_request()
        se.try_accept(0, request)
        se.tick(0)
        assert se.forwarded == 0
        assert se.stalled_cycles == 1
        assert se.occupancy() == 1  # nothing lost

    def test_no_provider_means_stall(self):
        se = full_bandwidth_se()
        se.try_accept(0, make_request())
        se.tick(0)
        assert se.occupancy() == 1

    def test_budget_gates_forwarding(self):
        """Port 0 gets (Pi=4, Theta=1): with a backlog it forwards once
        per period, even though the SE is otherwise idle."""
        se = ScaleElement(
            (0, 0),
            buffer_capacity=8,
            interfaces=[
                ResourceInterface(4, 1),
                ResourceInterface(1000, 1),
                ResourceInterface(1000, 1),
                ResourceInterface(1000, 1),
            ],
        )
        sink = Sink()
        se.forward_to_provider = sink
        for _ in range(6):
            se.try_accept(0, make_request(deadline=10_000))
        for cycle in range(16):
            se.tick(cycle)
        assert len(sink.received) == 4  # one per 4-cycle period


class TestBlockingAccounting:
    def test_eligible_waiter_charged_on_inversion(self):
        """Port 1's earlier-deadline request waits (its server deadline is
        later) while port 0 forwards a later-deadline request: that is
        priority inversion and port 1's request is charged."""
        se = ScaleElement(
            (0, 0),
            interfaces=[
                ResourceInterface(2, 1),  # port 0: earliest server deadline
                ResourceInterface(50, 25),
                ResourceInterface(60, 30),
                ResourceInterface(70, 35),
            ],
        )
        se.forward_to_provider = Sink()
        late = make_request(deadline=900)
        early = make_request(deadline=100)
        se.try_accept(0, late)
        se.try_accept(1, early)
        se.tick(0)  # port 0 wins (server deadline 2 < 50) and forwards
        assert early.blocking_cycles == 1

    def test_budgetless_waiter_not_charged(self):
        """A port waiting only because its budget is exhausted is being
        shaped, not blocked — no blocking charge."""
        se = ScaleElement(
            (0, 0),
            interfaces=[
                ResourceInterface(50, 25),
                ResourceInterface(100, 1),
                ResourceInterface(60, 30),
                ResourceInterface(70, 35),
            ],
        )
        sink = Sink()
        se.forward_to_provider = sink
        early_a = make_request(deadline=100)
        early_b = make_request(deadline=120)
        se.try_accept(1, early_a)
        se.try_accept(1, early_b)
        se.tick(0)  # port 1 forwards early_a, budget (Theta=1) exhausted
        late = make_request(deadline=900)
        se.try_accept(0, late)
        se.tick(1)  # port 0 forwards late; early_b waits without budget
        assert [r for r, _ in sink.received] == [early_a, late]
        assert early_b.blocking_cycles == 0


class TestFanoutVariants:
    def test_binary_se_has_two_ports(self):
        se = ScaleElement((0, 0), fanout=2, interfaces=[ResourceInterface(1, 1)] * 2)
        assert len(se.buffers) == 2
        assert se.try_accept(1, make_request())
        with pytest.raises(ConfigurationError):
            se.try_accept(2, make_request())

    def test_binary_se_forwards_edf(self):
        se = ScaleElement((0, 0), fanout=2, interfaces=[ResourceInterface(1, 1)] * 2)
        sink = Sink()
        se.forward_to_provider = sink
        late = make_request(deadline=500)
        urgent = make_request(deadline=100)
        se.try_accept(0, late)
        se.try_accept(1, urgent)
        se.tick(0)
        se.tick(1)
        assert [r for r, _ in sink.received] == [urgent, late]

    def test_interface_count_must_match_fanout(self):
        with pytest.raises(ConfigurationError):
            ScaleElement((0, 0), fanout=2, interfaces=[ResourceInterface(1, 1)] * 4)

    def test_fanout_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaleElement((0, 0), fanout=1)


class TestParameterPath:
    def test_program_port_applies_interface(self):
        se = full_bandwidth_se()
        se.program_port(2, ResourceInterface(7, 3), now=0)
        assert se.interfaces()[2] == ResourceInterface(7, 3)

    def test_unconfigured_se_behaves_as_pure_edf(self):
        """Default (idle) interfaces fall back to background EDF, so an
        unconfigured tree still moves traffic."""
        se = ScaleElement((0, 0))
        sink = Sink()
        se.forward_to_provider = sink
        first = make_request(deadline=500)
        second = make_request(deadline=100)
        se.try_accept(0, first)
        se.try_accept(3, second)
        se.tick(0)
        se.tick(1)
        assert [r for r, _ in sink.received] == [second, first]
