"""Tests for the multi-memory (multi-channel) BlueScale extension."""

import random

import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.core.multi_memory import (
    AddressInterleaver,
    MultiMemorySystem,
    run_multi_memory_trial,
)
from repro.errors import ConfigurationError
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestAddressInterleaver:
    def test_round_robin_over_granules(self):
        interleaver = AddressInterleaver(2, granule_bytes=1 << 16)
        assert interleaver.channel_of(0) == 0
        assert interleaver.channel_of(1 << 16) == 1
        assert interleaver.channel_of(2 << 16) == 0

    def test_within_granule_same_channel(self):
        interleaver = AddressInterleaver(4, granule_bytes=4096)
        assert interleaver.channel_of(100) == interleaver.channel_of(4000)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AddressInterleaver(0)
        with pytest.raises(ConfigurationError):
            AddressInterleaver(2, granule_bytes=3000)  # not a power of two


class TestTaskSplitting:
    def test_tasks_partition_exactly(self, rng):
        tasksets = generate_client_tasksets(rng, 8, 3, 0.6)
        system = MultiMemorySystem(8, n_channels=2)
        per_channel = system.split_tasksets_by_channel(tasksets)
        total = sum(
            len(ts) for channel in per_channel for ts in channel.values()
        )
        assert total == sum(len(ts) for ts in tasksets.values())

    def test_home_channel_matches_generated_addresses(self, rng):
        """The analysis' home-channel mapping agrees with the addresses
        the traffic generator actually emits."""
        taskset = TaskSet(
            [
                PeriodicTask(period=100, wcet=2, name=f"t{i}", client_id=0)
                for i in range(4)
            ]
        )
        system = MultiMemorySystem(4, n_channels=2)
        per_channel = system.split_tasksets_by_channel({0: taskset})
        homes = {}
        for channel, mapping in enumerate(per_channel):
            for task in mapping.get(0, TaskSet()):
                homes[task.name] = channel
        client = TrafficGenerator(0, taskset)
        issued = {}

        def capture(request, cycle):
            issued.setdefault(
                request.task_name,
                system.interleaver.channel_of(request.address),
            )
            return True

        for cycle in range(8):
            client.tick(cycle, capture)
        assert issued == homes


class TestMultiChannelSimulation:
    def build(self, n_channels, utilization, seed=3, n_clients=8):
        rng = random.Random(seed)
        tasksets = generate_client_tasksets(rng, n_clients, 4, utilization)
        system = MultiMemorySystem(n_clients, n_channels=n_channels)
        system.configure(tasksets)
        clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
        return system, clients

    def test_conservation(self):
        system, clients = self.build(2, 0.8)
        result = run_multi_memory_trial(clients, system, 3_000)
        assert (
            result.requests_completed
            + result.requests_dropped
            + result.requests_in_flight
            == result.requests_released
        )

    def test_both_channels_carry_traffic(self):
        system, clients = self.build(2, 0.8)
        result = run_multi_memory_trial(clients, system, 3_000)
        assert all(count > 0 for count in result.per_channel_completed)
        assert result.channel_balance() > 0.2

    @staticmethod
    def _even_workload(n_clients=8, tasks_per_client=4):
        """Deterministic workload, ~1.3 aggregate utilization, spread
        evenly over clients and home channels."""
        periods = (180, 195, 225, 240)
        tasksets = {}
        for client in range(n_clients):
            tasks = []
            for index in range(tasks_per_client):
                period = periods[index % len(periods)] + client
                wcet = max(1, round(period * 1.3 / (n_clients * tasks_per_client)))
                tasks.append(
                    PeriodicTask(
                        period=period, wcet=wcet, name=f"t{index}", client_id=client
                    )
                )
            tasksets[client] = TaskSet(tasks)
        return tasksets

    def test_two_channels_sustain_beyond_single_channel_capacity(self):
        """An even ~1.3-utilization workload overloads one channel but
        fits comfortably in two."""

        def run(n_channels):
            tasksets = self._even_workload()
            system = MultiMemorySystem(8, n_channels=n_channels)
            system.configure(tasksets)
            clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
            return system, run_multi_memory_trial(
                clients, system, 4_000, drain=4_000
            )

        single_system, single_result = run(1)
        dual_system, dual_result = run(2)
        assert not single_system.schedulable  # U > 1 on one channel
        assert single_result.deadline_miss_ratio > 0.5
        assert dual_system.schedulable
        # residual misses (~1%) stem from the client's shared dual-port
        # ingress, which the per-channel analysis does not model
        assert dual_result.deadline_miss_ratio < 0.05

    def test_schedulable_flag_requires_configure(self):
        system = MultiMemorySystem(8, n_channels=2)
        with pytest.raises(ConfigurationError):
            system.schedulable

    def test_single_channel_matches_base_bluescale_semantics(self):
        """With one channel the system degenerates to plain BlueScale."""
        system, clients = self.build(1, 0.6, seed=9)
        result = run_multi_memory_trial(clients, system, 3_000)
        assert result.deadline_miss_ratio <= 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiMemorySystem(8, n_channels=0)
        system, _ = self.build(2, 0.5)
        with pytest.raises(ConfigurationError):
            run_multi_memory_trial([], system, 100)
