"""Property-based tests for the random access buffer (paper Sec. 4.1).

Hypothesis drives randomized load/fetch sequences and checks the
invariants the SE tree relies on: occupancy never exceeds capacity and
``try_load`` succeeds iff there is room; the comparator tree is exact
EDF with FIFO (request-id) tie-breaking among equal deadlines; and
``is_quiescent`` is always the same statement as ``len(buffer) == 0``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.random_access_buffer import RandomAccessBuffer
from repro.errors import CapacityError

from tests.conftest import make_request

#: a mixed workload: True = load (with a deadline), None = fetch
operations = st.lists(
    st.one_of(
        st.integers(min_value=1, max_value=200),  # load with this deadline
        st.none(),  # fetch
    ),
    min_size=0,
    max_size=60,
)

capacities = st.integers(min_value=1, max_value=12)


@given(capacities, operations)
@settings(max_examples=200)
def test_capacity_and_try_load_invariants(capacity, ops):
    """Occupancy stays within [0, capacity]; try_load accepts iff the
    buffer reports a free slot, and refusals change nothing."""
    buffer = RandomAccessBuffer(capacity)
    loaded = 0
    for op in ops:
        if op is None:
            if buffer.empty:
                continue
            before = len(buffer)
            buffer.fetch_highest_priority()
            assert len(buffer) == before - 1
        else:
            had_room = not buffer.full
            before = len(buffer)
            accepted = buffer.try_load(make_request(deadline=op))
            assert accepted == had_room
            assert len(buffer) == before + (1 if accepted else 0)
            if accepted:
                loaded += 1
        assert 0 <= len(buffer) <= capacity
        assert buffer.full == (len(buffer) == capacity)
        assert buffer.empty == (len(buffer) == 0)
    assert buffer.total_loaded == loaded
    assert buffer.peak_occupancy <= capacity


@given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=24))
@settings(max_examples=200)
def test_fetch_order_is_edf_with_fifo_tie_break(deadlines):
    """Draining the buffer yields (deadline, rid) sorted order: EDF,
    and among equal deadlines the earlier-created request first."""
    buffer = RandomAccessBuffer(capacity=len(deadlines))
    requests = [make_request(deadline=d) for d in deadlines]
    for request in requests:
        buffer.load(request)
    drained = [buffer.fetch_highest_priority() for _ in deadlines]
    assert drained == sorted(
        requests, key=lambda r: (r.absolute_deadline, r.rid)
    )
    # equal-deadline runs preserved arrival (rid) order
    for earlier, later in zip(drained, drained[1:]):
        if earlier.absolute_deadline == later.absolute_deadline:
            assert earlier.rid < later.rid


@given(capacities, operations)
@settings(max_examples=200)
def test_quiescence_tracks_len_exactly(capacity, ops):
    """``is_quiescent`` must agree with ``__len__`` after every op —
    the engine's fast path leaps on this equivalence."""
    buffer = RandomAccessBuffer(capacity)
    assert buffer.is_quiescent()
    for op in ops:
        if op is None:
            if not buffer.empty:
                buffer.fetch_highest_priority()
        else:
            buffer.try_load(make_request(deadline=op))
        assert buffer.is_quiescent() == (len(buffer) == 0)
        peeked = buffer.peek_highest_priority()
        assert (peeked is None) == buffer.is_quiescent()
        if peeked is not None:
            assert buffer.earliest_deadline() == peeked.absolute_deadline


@given(capacities)
def test_empty_buffer_fetch_raises(capacity):
    buffer = RandomAccessBuffer(capacity)
    try:
        buffer.fetch_highest_priority()
    except CapacityError:
        pass
    else:  # pragma: no cover - failure branch
        raise AssertionError("fetch from empty buffer must raise")
    assert buffer.is_quiescent()
