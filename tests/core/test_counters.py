"""Unit tests for the P-/B-counter hardware model (Sec. 4.2)."""

import pytest

from repro.core.counters import CountdownCounter, ServerCounterPair
from repro.errors import ConfigurationError


class TestCountdownCounter:
    def test_reset_loads_value(self):
        counter = CountdownCounter(5)
        counter.reset()
        assert counter.value == 5

    def test_enable_decrements(self):
        counter = CountdownCounter(3)
        counter.reset()
        assert counter.enable() == 2
        assert counter.enable() == 1
        assert counter.enable() == 0
        assert counter.expired

    def test_enable_saturates_at_zero(self):
        counter = CountdownCounter(0)
        assert counter.enable() == 0

    def test_program_takes_effect_on_reset(self):
        counter = CountdownCounter(5)
        counter.reset()
        counter.program(9)
        assert counter.value == 5  # current value unchanged
        counter.reset()
        assert counter.value == 9

    def test_rejects_out_of_range_values(self):
        with pytest.raises(ConfigurationError):
            CountdownCounter(-1)
        with pytest.raises(ConfigurationError):
            CountdownCounter(1 << 32)
        with pytest.raises(ConfigurationError):
            CountdownCounter(1).program(1 << 32)


class TestServerCounterPair:
    def test_initial_state(self):
        pair = ServerCounterPair(period=10, budget=3)
        assert pair.remaining_budget == 3
        assert pair.cycles_to_replenish == 10
        assert pair.has_budget

    def test_consume_spends_budget(self):
        pair = ServerCounterPair(period=10, budget=2)
        pair.consume()
        pair.consume()
        assert not pair.has_budget

    def test_consume_without_budget_rejected(self):
        pair = ServerCounterPair(period=10, budget=0)
        with pytest.raises(ConfigurationError):
            pair.consume()

    def test_period_boundary_replenishes_budget(self):
        """The P-counter's zero-crossing resets both counters (Fig. 3(b))."""
        pair = ServerCounterPair(period=4, budget=2)
        pair.consume()
        pair.consume()
        assert not pair.has_budget
        replenished = [pair.tick() for _ in range(4)]
        assert replenished == [False, False, False, True]
        assert pair.has_budget
        assert pair.remaining_budget == 2
        assert pair.cycles_to_replenish == 4

    def test_unused_budget_does_not_accumulate(self):
        pair = ServerCounterPair(period=3, budget=2)
        for _ in range(6):  # two full periods, no consumption
            pair.tick()
        assert pair.remaining_budget == 2  # capped at Theta

    def test_reprogram_applies_immediately(self):
        pair = ServerCounterPair(period=10, budget=3)
        pair.consume()
        pair.reprogram(6, 4)
        assert pair.period == 6
        assert pair.budget == 4
        assert pair.remaining_budget == 4
        assert pair.cycles_to_replenish == 6

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ServerCounterPair(period=0, budget=0)
        with pytest.raises(ConfigurationError):
            ServerCounterPair(period=4, budget=5)
        pair = ServerCounterPair(period=4, budget=2)
        with pytest.raises(ConfigurationError):
            pair.reprogram(4, 5)

    def test_long_run_supply_rate(self):
        """Over many periods the consumable budget equals Theta per Pi —
        the bandwidth the periodic resource model promises."""
        pair = ServerCounterPair(period=5, budget=2)
        consumed = 0
        for _ in range(50):
            if pair.has_budget:
                pair.consume()
                consumed += 1
            pair.tick()
        assert consumed == 2 * (50 // 5)
