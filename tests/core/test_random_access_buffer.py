"""Unit and property tests for the random access buffer (Sec. 4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.random_access_buffer import RandomAccessBuffer
from repro.errors import CapacityError, ConfigurationError
from repro.memory.request import MemoryRequest, reset_request_ids

from tests.conftest import make_request


class TestCapacity:
    def test_load_until_full(self):
        buffer = RandomAccessBuffer(capacity=2)
        buffer.load(make_request())
        assert not buffer.full
        buffer.load(make_request())
        assert buffer.full
        with pytest.raises(CapacityError):
            buffer.load(make_request())

    def test_try_load_signals_rejection(self):
        buffer = RandomAccessBuffer(capacity=1)
        assert buffer.try_load(make_request())
        assert not buffer.try_load(make_request())
        assert len(buffer) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            RandomAccessBuffer(capacity=0)

    def test_fetch_from_empty_rejected(self):
        with pytest.raises(CapacityError):
            RandomAccessBuffer().fetch_highest_priority()

    def test_peak_occupancy_tracked(self):
        buffer = RandomAccessBuffer(capacity=4)
        buffer.load(make_request())
        buffer.load(make_request())
        buffer.fetch_highest_priority()
        buffer.load(make_request())
        assert buffer.peak_occupancy == 2
        assert buffer.total_loaded == 3


class TestPriorityOrder:
    def test_fetches_earliest_deadline_regardless_of_arrival(self):
        """The random-access property: not FIFO."""
        buffer = RandomAccessBuffer()
        late = make_request(deadline=300)
        early = make_request(deadline=100)
        middle = make_request(deadline=200)
        buffer.load(late)
        buffer.load(early)
        buffer.load(middle)
        assert buffer.fetch_highest_priority() is early
        assert buffer.fetch_highest_priority() is middle
        assert buffer.fetch_highest_priority() is late

    def test_peek_does_not_remove(self):
        buffer = RandomAccessBuffer()
        request = make_request()
        buffer.load(request)
        assert buffer.peek_highest_priority() is request
        assert len(buffer) == 1

    def test_peek_empty_returns_none(self):
        assert RandomAccessBuffer().peek_highest_priority() is None
        assert RandomAccessBuffer().earliest_deadline() is None

    def test_earliest_deadline(self):
        buffer = RandomAccessBuffer()
        buffer.load(make_request(deadline=500))
        buffer.load(make_request(deadline=50))
        assert buffer.earliest_deadline() == 50

    def test_deadline_ties_fetch_in_arrival_order(self):
        reset_request_ids()
        buffer = RandomAccessBuffer()
        first = make_request(deadline=100)
        second = make_request(deadline=100)
        buffer.load(second)
        buffer.load(first)
        assert buffer.fetch_highest_priority() is first


class TestBufferProperties:
    @given(deadlines=st.lists(st.integers(1, 10_000), min_size=1, max_size=16))
    def test_drain_order_is_sorted_by_priority(self, deadlines):
        reset_request_ids()
        buffer = RandomAccessBuffer(capacity=len(deadlines))
        requests = [
            MemoryRequest(client_id=0, release_cycle=0, absolute_deadline=d)
            for d in deadlines
        ]
        for request in requests:
            buffer.load(request)
        drained = [buffer.fetch_highest_priority() for _ in deadlines]
        keys = [r.priority_key for r in drained]
        assert keys == sorted(keys)

    @given(
        ops=st.lists(
            st.one_of(st.integers(1, 1000), st.none()), min_size=1, max_size=40
        )
    )
    def test_occupancy_invariant(self, ops):
        """Interleaved loads (int = deadline) and fetches (None) keep
        occupancy consistent and within capacity."""
        buffer = RandomAccessBuffer(capacity=8)
        expected = 0
        for op in ops:
            if op is None:
                if expected:
                    buffer.fetch_highest_priority()
                    expected -= 1
            else:
                if buffer.try_load(
                    MemoryRequest(
                        client_id=0, release_cycle=0, absolute_deadline=op
                    )
                ):
                    expected += 1
            assert len(buffer) == expected
            assert expected <= 8
