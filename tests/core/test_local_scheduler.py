"""Unit tests for the local scheduler (Algorithm 1's upper queue)."""

import pytest

from repro.analysis.prm import ResourceInterface
from repro.core.local_scheduler import LocalScheduler, ServerTaskState
from repro.core.random_access_buffer import RandomAccessBuffer
from repro.errors import ConfigurationError

from tests.conftest import make_request


def buffers_with(*deadline_lists):
    """Build one buffer per list, loaded with requests at those deadlines."""
    result = []
    for deadlines in deadline_lists:
        buffer = RandomAccessBuffer()
        for deadline in deadlines:
            buffer.load(make_request(deadline=deadline))
        result.append(buffer)
    return result


def scheduler_with(interfaces):
    return LocalScheduler([ResourceInterface(*i) for i in interfaces])


class TestServerTaskState:
    def test_create_sets_deadline_one_period_out(self):
        server = ServerTaskState.create(ResourceInterface(10, 3), now=5)
        assert server.deadline == 15

    def test_tick_replenishes_and_moves_deadline(self):
        server = ServerTaskState.create(ResourceInterface(3, 1), now=0)
        server.consume()
        assert not server.has_budget
        for now in range(3):
            server.tick(now)
        assert server.has_budget
        assert server.deadline == 6  # next period ends at cycle 6

    def test_reprogram(self):
        server = ServerTaskState.create(ResourceInterface(10, 2), now=0)
        server.reprogram(ResourceInterface(5, 3), now=7)
        assert server.interface.period == 5
        assert server.deadline == 12
        assert server.counters.remaining_budget == 3

    def test_idle_interface_flag(self):
        assert ServerTaskState.create(ResourceInterface(1, 0)).is_idle_interface
        assert not ServerTaskState.create(ResourceInterface(1, 1)).is_idle_interface


class TestSelectPort:
    def test_earliest_server_deadline_wins(self):
        # port 1's server has the shorter period => earlier deadline
        scheduler = scheduler_with([(20, 5), (10, 5), (30, 5), (40, 5)])
        buffers = buffers_with([100], [100], [100], [100])
        assert scheduler.select_port(buffers) == 1

    def test_empty_ports_skipped(self):
        scheduler = scheduler_with([(10, 5), (20, 5), (30, 5), (40, 5)])
        buffers = buffers_with([], [100], [], [])
        assert scheduler.select_port(buffers) == 1

    def test_exhausted_budget_skipped(self):
        scheduler = scheduler_with([(10, 1), (20, 5), (30, 5), (40, 5)])
        buffers = buffers_with([100], [100], [], [])
        scheduler.account_forward(0)  # spend port 0's only unit
        assert scheduler.select_port(buffers) == 1

    def test_nothing_ready_returns_none(self):
        scheduler = scheduler_with([(10, 5)] * 4)
        assert scheduler.select_port(buffers_with([], [], [], [])) is None

    def test_idle_interface_is_background_only(self):
        """A zero-budget port forwards only when no budgeted server is
        ready (unprovisioned-traffic fallback)."""
        scheduler = scheduler_with([(1, 0), (10, 5), (30, 5), (40, 5)])
        buffers = buffers_with([50], [100], [], [])
        # budgeted port 1 ready: it wins despite port 0's earlier request
        assert scheduler.select_port(buffers) == 1
        # drain port 1: background port 0 now serves
        buffers[1].fetch_highest_priority()
        assert scheduler.select_port(buffers) == 0

    def test_background_ports_compete_by_request_deadline(self):
        scheduler = scheduler_with([(1, 0), (1, 0), (1, 0), (1, 0)])
        buffers = buffers_with([300], [100], [200], [])
        assert scheduler.select_port(buffers) == 1

    def test_buffer_count_must_match(self):
        scheduler = scheduler_with([(10, 5)] * 4)
        with pytest.raises(ConfigurationError):
            scheduler.select_port(buffers_with([], []))

    def test_needs_at_least_one_server(self):
        with pytest.raises(ConfigurationError):
            LocalScheduler([])


class TestBudgetEnforcement:
    def test_port_throttled_to_its_bandwidth(self):
        """A port with (Pi=4, Theta=1) forwards at most once per period
        even with a backlog — the VE isolation property."""
        scheduler = scheduler_with([(4, 1), (1000, 1), (1000, 1), (1000, 1)])
        buffer = RandomAccessBuffer(capacity=64)
        for _ in range(20):
            buffer.load(make_request(deadline=50))
        buffers = [buffer] + buffers_with([], [], [])
        forwards = 0
        for now in range(40):
            port = scheduler.select_port(buffers)
            if port == 0:
                buffers[0].fetch_highest_priority()
                scheduler.account_forward(0)
                forwards += 1
            scheduler.tick(now)
        assert forwards == 10  # 1 per 4 cycles over 40 cycles

    def test_account_forward_ignores_idle_interface(self):
        scheduler = scheduler_with([(1, 0), (10, 5), (10, 5), (10, 5)])
        scheduler.account_forward(0)  # must not raise (no budget to spend)

    def test_reprogram_port(self):
        scheduler = scheduler_with([(10, 5)] * 4)
        scheduler.reprogram_port(2, ResourceInterface(3, 1), now=0)
        assert scheduler.servers[2].interface.period == 3


class TestZeroBudgetBackgroundPath:
    """Regression coverage for the background-server fallback.

    A zero-budget interface (an idle VE) is a *background* server: it
    must never displace a budgeted server that is ready, and it must
    never starve when the budgeted servers leave the SE idle — the two
    halves of the conservative-hardware-fallback contract in the module
    docstring.
    """

    def test_background_never_preempts_ready_budgeted_server(self):
        """Even with a far earlier request deadline, the background port
        loses every cycle on which a budgeted server has budget."""
        scheduler = scheduler_with([(1, 0), (4, 1), (1000, 1), (1000, 1)])
        background = RandomAccessBuffer(capacity=64)
        budgeted = RandomAccessBuffer(capacity=64)
        for _ in range(40):
            background.load(make_request(deadline=1))  # urgent
            budgeted.load(make_request(deadline=10_000))  # relaxed
        buffers = [background, budgeted] + buffers_with([], [])
        for now in range(40):
            port = scheduler.select_port(buffers)
            assert port is not None
            if scheduler.servers[1].has_budget:
                assert port == 1, f"background preempted budget at {now}"
            else:
                assert port == 0
            buffers[port].fetch_highest_priority()
            scheduler.account_forward(port)
            scheduler.tick(now)

    def test_background_fills_budget_gaps_without_starving(self):
        """With one (4, 1) budgeted port, the background port gets the
        other 3 of every 4 cycles — bounded throughput for both."""
        scheduler = scheduler_with([(1, 0), (4, 1), (1000, 1), (1000, 1)])
        background = RandomAccessBuffer(capacity=64)
        budgeted = RandomAccessBuffer(capacity=64)
        for _ in range(64):
            background.load(make_request(deadline=500))
            budgeted.load(make_request(deadline=500))
        buffers = [background, budgeted] + buffers_with([], [])
        forwards = {0: 0, 1: 0}
        for now in range(40):
            port = scheduler.select_port(buffers)
            assert port is not None
            buffers[port].fetch_highest_priority()
            scheduler.account_forward(port)
            forwards[port] += 1
            scheduler.tick(now)
        assert forwards[1] == 10  # exactly its (4, 1) reservation
        assert forwards[0] == 30  # every other cycle goes to background

    def test_background_serves_when_tree_otherwise_idle(self):
        """A lone background backlog drains one request per cycle."""
        scheduler = scheduler_with([(1, 0), (10, 5), (10, 5), (10, 5)])
        background = RandomAccessBuffer(capacity=64)
        for _ in range(12):
            background.load(make_request(deadline=900))
        buffers = [background] + buffers_with([], [], [])
        for now in range(12):
            port = scheduler.select_port(buffers)
            assert port == 0
            buffers[0].fetch_highest_priority()
            scheduler.account_forward(0)
            scheduler.tick(now)
        assert buffers[0].empty
        assert scheduler.select_port(buffers) is None

    def test_background_forward_leaves_budgeted_state_untouched(self):
        """Serving background traffic spends no budget and moves no
        server deadline on the budgeted ports."""
        scheduler = scheduler_with([(1, 0), (8, 2), (8, 2), (8, 2)])
        before = [
            (s.deadline, s.counters.b_counter.value)
            for s in scheduler.servers[1:]
        ]
        buffers = buffers_with([50], [], [], [])
        assert scheduler.select_port(buffers) == 0
        buffers[0].fetch_highest_priority()
        scheduler.account_forward(0)
        after = [
            (s.deadline, s.counters.b_counter.value)
            for s in scheduler.servers[1:]
        ]
        assert after == before
