"""Unit tests for the interface selector component (Sec. 4.3)."""

import pytest

from repro.core.interface_selector import (
    InterfaceSelector,
    TableEntry,
    TaskParameterTable,
)
from repro.errors import CapacityError, ConfigurationError
from repro.analysis.schedulability import is_schedulable
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestTableEntry:
    def test_field_widths_enforced(self):
        TableEntry(client_id=3, task_id=255, period=(1 << 32) - 1, wcet=1)
        with pytest.raises(ConfigurationError):
            TableEntry(client_id=4, task_id=0, period=10, wcet=1)  # 2-bit field
        with pytest.raises(ConfigurationError):
            TableEntry(client_id=0, task_id=256, period=10, wcet=1)  # 8-bit
        with pytest.raises(ConfigurationError):
            TableEntry(client_id=0, task_id=0, period=1 << 32, wcet=1)  # 32-bit
        with pytest.raises(ConfigurationError):
            TableEntry(client_id=0, task_id=0, period=10, wcet=0)

    def test_as_task(self):
        entry = TableEntry(client_id=1, task_id=7, period=100, wcet=10)
        task = entry.as_task()
        assert task.period == 100 and task.wcet == 10
        assert task.client_id == 1


class TestTaskParameterTable:
    def test_bounded_depth(self):
        table = TaskParameterTable(depth=2)
        table.load(TableEntry(0, 0, 10, 1))
        table.load(TableEntry(1, 0, 10, 1))
        assert table.full
        with pytest.raises(CapacityError):
            table.load(TableEntry(2, 0, 10, 1))

    def test_per_port_queries(self):
        table = TaskParameterTable()
        table.load(TableEntry(0, 0, 10, 1))
        table.load(TableEntry(1, 0, 20, 2))
        table.load(TableEntry(0, 1, 30, 3))
        assert len(table.entries_for_port(0)) == 2
        taskset = table.taskset_for_port(0)
        assert {t.period for t in taskset} == {10, 30}

    def test_clear_port(self):
        table = TaskParameterTable()
        table.load(TableEntry(0, 0, 10, 1))
        table.load(TableEntry(1, 0, 20, 2))
        table.clear_port(0)
        assert len(table) == 1
        assert not table.entries_for_port(0)

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ConfigurationError):
            TaskParameterTable(depth=0)


class TestInterfaceSelector:
    def test_selection_schedules_each_port(self):
        selector = InterfaceSelector(table_depth=32)
        port_sets = {
            0: TaskSet([PeriodicTask(period=50, wcet=5)]),
            1: TaskSet([PeriodicTask(period=80, wcet=8)]),
            2: TaskSet([PeriodicTask(period=120, wcet=6)]),
        }
        for port, taskset in port_sets.items():
            selector.load_taskset(port, taskset)
        outputs = selector.run_selection()
        assert len(outputs) == 4
        for port, taskset in port_sets.items():
            selection = outputs[port]
            assert selection.schedulable
            assert is_schedulable(taskset, selection.interface).schedulable

    def test_empty_port_gets_idle_interface(self):
        selector = InterfaceSelector()
        outputs = selector.run_selection()
        assert all(s.interface.budget == 0 for s in outputs)
        assert all(s.schedulable for s in outputs)

    def test_infeasible_port_flagged_with_fallback(self):
        selector = InterfaceSelector(table_depth=32)
        # Port 1 alone demands 2x the SE capacity: port 0's Theorem-2
        # period range collapses to nothing and selection is infeasible.
        selector.load_task(0, period=2, wcet=1)
        selector.load_task(1, period=2, wcet=2)
        selector.load_task(1, period=2, wcet=2)
        outputs = selector.run_selection()
        assert not outputs[0].schedulable
        assert outputs[0].interface.budget > 0  # usable fallback

    def test_task_ids_assigned_per_port(self):
        selector = InterfaceSelector()
        first = selector.load_task(0, 100, 1)
        second = selector.load_task(0, 200, 2)
        other_port = selector.load_task(1, 100, 1)
        assert (first.task_id, second.task_id) == (0, 1)
        assert other_port.task_id == 0

    def test_clear_port_resets_ids(self):
        selector = InterfaceSelector()
        selector.load_task(2, 100, 1)
        selector.clear_port(2)
        entry = selector.load_task(2, 100, 1)
        assert entry.task_id == 0

    def test_rejects_bad_port(self):
        with pytest.raises(ConfigurationError):
            InterfaceSelector().load_task(7, 100, 1)
        with pytest.raises(ConfigurationError):
            InterfaceSelector(n_ports=0)
