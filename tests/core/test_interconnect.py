"""Unit/integration tests for the BlueScale interconnect."""

import pytest

from repro.analysis.composition import compose
from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError
from repro.memory.controller import MemoryController
from repro.memory.dram import FixedLatencyDevice
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.topology import quadtree

from tests.conftest import make_request


def light_tasksets(n_clients, period=400, wcet=4):
    return {
        c: TaskSet([PeriodicTask(period=period + 16 * c, wcet=wcet, client_id=c)])
        for c in range(n_clients)
    }


def wired(n_clients=16):
    interconnect = BlueScaleInterconnect(n_clients)
    controller = MemoryController(FixedLatencyDevice(1), queue_capacity=4)
    interconnect.attach_controller(controller)
    return interconnect, controller


class TestConstruction:
    def test_16_clients_builds_5_elements(self):
        assert BlueScaleInterconnect(16).n_elements == 5

    def test_64_clients_builds_21_elements(self):
        assert BlueScaleInterconnect(64).n_elements == 21

    def test_element_lookup(self):
        interconnect = BlueScaleInterconnect(16)
        assert interconnect.element(1, 2).node == (1, 2)


class TestRequestFlow:
    def test_request_reaches_controller_and_returns(self):
        interconnect, controller = wired(16)
        request = make_request(client_id=5, deadline=1000)
        assert interconnect.try_inject(request, 0)
        delivered = []
        for cycle in range(20):
            interconnect.tick_request_path(cycle)
            controller.tick(cycle)
            delivered.extend(interconnect.tick_response_path(cycle))
        assert delivered == [request]
        assert request.completed
        # 2 SE hops + 1 service + 3 response hops = small constant
        assert request.response_time <= 10

    def test_pipelining_one_hop_per_cycle(self):
        interconnect, controller = wired(16)
        request = make_request(client_id=0, deadline=1000)
        interconnect.try_inject(request, 0)
        interconnect.tick_request_path(0)  # leaf forwards to root
        assert interconnect.element(0, 0).occupancy() == 1
        interconnect.tick_request_path(1)  # root forwards to controller
        assert controller.in_flight == 1

    def test_ingress_backpressure(self):
        interconnect, _ = wired(16)
        interconnect_capacity = interconnect.elements[(1, 0)].buffers[0].capacity
        accepted = 0
        for _ in range(interconnect_capacity + 3):
            if interconnect.try_inject(make_request(client_id=0), 0):
                accepted += 1
        assert accepted == interconnect_capacity

    def test_requests_in_flight_counts_buffers(self):
        interconnect, _ = wired(16)
        interconnect.try_inject(make_request(client_id=0), 0)
        interconnect.try_inject(make_request(client_id=9), 0)
        assert interconnect.requests_in_flight() == 2

    def test_response_latency_scales_with_depth(self):
        shallow = BlueScaleInterconnect(16)
        deep = BlueScaleInterconnect(64)
        assert deep.response_latency(0) == shallow.response_latency(0) + 1


class TestConfiguration:
    def test_configure_programs_all_elements(self):
        interconnect = BlueScaleInterconnect(16)
        tasksets = light_tasksets(16)
        result = interconnect.configure(tasksets)
        assert result.schedulable
        for node, element in interconnect.elements.items():
            assert element.interfaces() == result.interfaces[node]

    def test_apply_composition_rejects_wrong_size(self):
        interconnect = BlueScaleInterconnect(16)
        other = compose(quadtree(64), light_tasksets(64))
        with pytest.raises(ConfigurationError):
            interconnect.apply_composition(other)

    def test_distributed_selection_matches_central_composition(self):
        """Each SE resolving its own interface-selection problem from its
        children's announcements yields the same interfaces as the global
        compose() — the distributed parameter path is equivalent."""
        tasksets = light_tasksets(16)
        interconnect = BlueScaleInterconnect(16)
        announced = interconnect.configure_distributed(tasksets)
        central = compose(interconnect.topology, tasksets)
        for node in central.interfaces:
            assert announced[node] == central.interfaces[node], node

    def test_reprogram_client_requires_initial_configure(self):
        interconnect = BlueScaleInterconnect(16)
        with pytest.raises(ConfigurationError):
            interconnect.reprogram_client(light_tasksets(16), 3, cycle=100)

    def test_reprogram_client_updates_only_path(self):
        interconnect = BlueScaleInterconnect(16)
        tasksets = light_tasksets(16)
        interconnect.configure(tasksets)
        before = {
            node: element.interfaces()
            for node, element in interconnect.elements.items()
        }
        tasksets[9] = tasksets[9].merged_with(
            TaskSet([PeriodicTask(period=300, wcet=3, client_id=9)])
        )
        updated = interconnect.reprogram_client(tasksets, 9, cycle=500)
        assert updated.schedulable
        path = set(interconnect.topology.path_to_root(9))
        for node, element in interconnect.elements.items():
            if node not in path:
                assert element.interfaces() == before[node], node
            else:
                assert element.interfaces() == updated.interfaces[node]

    def test_reprogram_mid_simulation_keeps_traffic_flowing(self):
        """A runtime parameter-path update does not break the datapath:
        the simulation continues and the new task's traffic is served."""
        from repro.clients.traffic_generator import TrafficGenerator
        from repro.soc import SoCSimulation

        tasksets = light_tasksets(16)
        interconnect = BlueScaleInterconnect(16, buffer_capacity=2)
        interconnect.configure(tasksets)
        joined = tasksets[5].merged_with(
            TaskSet([PeriodicTask(period=200, wcet=2, name="joiner", client_id=5)])
        )
        # client 5 starts with the joined set, but the interconnect is
        # reprogrammed for it only at cycle 1000 (before that, the
        # joiner's traffic runs as unprovisioned background).
        clients = [
            TrafficGenerator(c, joined if c == 5 else ts)
            for c, ts in tasksets.items()
        ]
        simulation = SoCSimulation(clients, interconnect)
        tasksets[5] = joined
        original_run = simulation.run

        # drive manually to interleave the reprogramming
        inject = interconnect.try_inject
        for cycle in range(3000):
            if cycle == 1000:
                interconnect.reprogram_client(tasksets, 5, cycle)
            for client in clients:
                client.tick(cycle, inject)
            interconnect.tick_request_path(cycle)
            simulation.controller.tick(cycle)
            for request in interconnect.tick_response_path(cycle):
                simulation.recorder.record_completion(
                    request.response_time,
                    request.blocking_cycles,
                    request.met_deadline,
                )
                clients[request.client_id].on_response(request)
        del original_run
        assert simulation.recorder.completed > 0
        joiner_jobs = [
            job for job in clients[5].jobs if job.task_name == "joiner"
        ]
        assert any(job.finished for job in joiner_jobs)

    def test_distributed_selection_matches_on_64_clients(self):
        tasksets = light_tasksets(64, period=2000, wcet=3)
        interconnect = BlueScaleInterconnect(64)
        announced = interconnect.configure_distributed(tasksets)
        central = compose(interconnect.topology, tasksets)
        mismatches = [
            node
            for node in central.interfaces
            if announced[node] != central.interfaces[node]
        ]
        assert not mismatches
