"""Executable-documentation checks.

Runs the library's doctest-style examples and validates that every
public module's docstring exists and says something (documentation is
deliverable-grade here, so its presence is tested like behaviour).
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def all_repro_modules():
    modules = [repro]
    for package_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        modules.append(importlib.import_module(package_info.name))
    return modules


MODULES = all_repro_modules()


class TestDocumentationPresence:
    @pytest.mark.parametrize(
        "module", MODULES, ids=[m.__name__ for m in MODULES]
    )
    def test_module_has_meaningful_docstring(self, module):
        assert module.__doc__, f"{module.__name__} lacks a docstring"
        assert len(module.__doc__.strip()) > 30, (
            f"{module.__name__}'s docstring is a stub"
        )

    def test_public_classes_documented(self):
        undocumented = []
        for module in MODULES:
            exported = getattr(module, "__all__", [])
            for name in exported:
                obj = getattr(module, name)
                if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public classes: {undocumented}"

    def test_public_functions_documented(self):
        import inspect

        undocumented = []
        for module in MODULES:
            exported = getattr(module, "__all__", [])
            for name in exported:
                obj = getattr(module, name)
                if inspect.isfunction(obj) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, (
            f"undocumented public functions: {undocumented}"
        )


class TestDoctests:
    @pytest.mark.parametrize(
        "module", MODULES, ids=[m.__name__ for m in MODULES]
    )
    def test_doctests_pass(self, module):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, (
            f"{module.__name__}: {results.failed} doctest failures"
        )
