"""Isolation experiment acceptance: the ISSUE's headline claims.

* BlueScale victims' deadline-miss ratio stays at its fault-free level
  while at least one baseline interconnect measurably degrades under
  the same rogue client;
* every BlueScale victim response in the faulted runs stays within the
  fault-oblivious analytical bounds (zero violations across trials);
* the campaign replays identically on serial and parallel executors;
* a raising trial is folded as a counted failure, not a crash, and the
  report flags bound violations as a failure.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.isolation import (
    ISOLATION_INTERCONNECTS,
    DesignIsolation,
    IsolationConfig,
    IsolationResult,
    build_isolation_specs,
    format_isolation,
    reduce_isolation,
    run_isolation,
    run_isolation_trial,
)
from repro.faults.verify import BoundViolation
from repro.runtime import (
    ParallelExecutor,
    SerialExecutor,
    TrialOutcome,
    failure_metric_set,
)

CONFIG = IsolationConfig(trials=3)


@pytest.fixture(scope="module")
def campaign():
    return run_isolation(CONFIG)


class TestIsolationClaim:
    def test_bluescale_victims_unmoved_by_the_aggressor(self, campaign):
        bluescale = campaign.metrics["BlueScale"]
        assert bluescale.miss_fault == bluescale.miss_base  # exact, per trial
        assert not bluescale.degraded
        assert bluescale.mean_isolation == 1.0

    def test_some_baseline_degrades(self, campaign):
        baselines = [
            campaign.metrics[name]
            for name in ISOLATION_INTERCONNECTS
            if name != "BlueScale"
        ]
        assert any(m.degraded for m in baselines)
        # the mux-tree's FIFO arbitration is the known victim
        assert campaign.metrics["BlueTree"].degraded

    def test_bluescale_bounds_hold_in_every_trial(self, campaign):
        bluescale = campaign.metrics["BlueScale"]
        assert bluescale.bounds_checked_trials == CONFIG.trials
        assert bluescale.bound_violations == 0
        assert campaign.total_bound_violations == 0
        # only BlueScale carries analytical bounds
        for name in ISOLATION_INTERCONNECTS:
            if name != "BlueScale":
                assert campaign.metrics[name].bounds_checked_trials == 0

    def test_report_reads_clean(self, campaign):
        report = format_isolation(campaign)
        assert "BlueScale" in report
        assert "within fault-oblivious analytical bounds" in report
        assert "FAIL" not in report


class TestReplay:
    def test_parallel_matches_serial_exactly(self):
        config = IsolationConfig(trials=2)
        specs = build_isolation_specs(config)
        serial = SerialExecutor().map(run_isolation_trial, specs)
        parallel = ParallelExecutor(workers=2, chunk_size=1).map(
            run_isolation_trial, specs
        )
        assert len(serial) == len(parallel) == 2
        for s, p in zip(serial, parallel):
            assert s.spec == p.spec
            assert s.metrics.scalars == p.metrics.scalars
            assert s.metrics.tags == p.metrics.tags


class TestBackends:
    """The campaign is backend-independent, bit for bit.

    ``run_isolation_trial`` carries a ``batch`` attribute, so the
    executors ship whole chunks through ``run_many`` — under the
    batched backend the rogue-burst fault plans compile into the SoA
    request schedule.  Every scalar (miss ratios, isolation scores,
    rogue counters, analytical-bound verdicts) and every tag
    (including the per-design base/fault trace digests the fold
    records) must be identical to a trial-by-trial scalar run.
    """

    def test_batched_campaign_identical_to_scalar(self):
        from repro.sim import set_default_sim_backend

        config = IsolationConfig(trials=2, horizon=2_000, drain=800)
        specs = build_isolation_specs(config)
        previous = set_default_sim_backend("scalar")
        try:
            scalar = [run_isolation_trial(spec) for spec in specs]
            set_default_sim_backend("batched")
            batched = SerialExecutor().map(run_isolation_trial, specs)
        finally:
            set_default_sim_backend(previous)
        for reference, outcome in zip(scalar, batched):
            assert not outcome.failed
            assert outcome.metrics.scalars == reference.scalars
            assert outcome.metrics.tags == reference.tags

    def test_fold_records_trace_digests(self):
        spec = build_isolation_specs(IsolationConfig(trials=1))[0]
        metrics = run_isolation_trial(spec)
        for name in ISOLATION_INTERCONNECTS:
            assert metrics.tags[f"{name}/trace_base"]
            assert metrics.tags[f"{name}/trace_fault"]
            # the aggressor changes the completion trace everywhere
            assert (
                metrics.tags[f"{name}/trace_base"]
                != metrics.tags[f"{name}/trace_fault"]
            )


class TestRobustness:
    def test_failed_trial_is_counted_not_folded(self):
        config = IsolationConfig(trials=2)
        specs = build_isolation_specs(config)
        healthy = SerialExecutor().map(run_isolation_trial, specs[:1])[0]
        broken = TrialOutcome(
            spec=specs[1],
            metrics=failure_metric_set(specs[1], ValueError("boom")),
            seconds=0.0,
            error="ValueError: boom",
        )
        result = reduce_isolation(
            config, ISOLATION_INTERCONNECTS, [healthy, broken]
        )
        assert result.failed_trials == 1
        for m in result.metrics.values():
            assert len(m.miss_base) == 1  # only the healthy trial folded
        assert "WARNING: 1 trial(s) failed" in format_isolation(result)

    def test_violations_flagged_as_failure(self):
        config = IsolationConfig(trials=1)
        metrics = {"BlueScale": DesignIsolation("BlueScale")}
        metrics["BlueScale"].bound_violations = 2
        metrics["BlueScale"].bounds_checked_trials = 1
        result = IsolationResult(config=config, metrics=metrics)
        assert result.total_bound_violations == 2
        report = format_isolation(result)
        assert "FAIL: 2 analytical-bound violation(s)" in report

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            IsolationConfig(aggressor=9, n_clients=8)
        with pytest.raises(ConfigurationError):
            IsolationConfig(rogue_start=5_000, horizon=4_000)
        with pytest.raises(ConfigurationError):
            IsolationConfig(utilization_low=0.9, utilization_high=0.5)


class TestCli:
    def test_faults_subcommand_smoke(self, capsys):
        from repro.cli import main

        code = main(
            ["faults", "--trials", "1", "--clients", "6", "--seed", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Isolation" in out
        assert "BlueScale" in out
