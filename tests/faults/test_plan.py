"""FaultPlan/FaultEvent: validation, determinism, and scheduling data."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import PORT_KINDS, FaultEvent, FaultKind, FaultPlan


def drop_event(**overrides):
    defaults = dict(
        kind=FaultKind.PORT_DROP, cycle=10, duration=5, client_id=1
    )
    defaults.update(overrides)
    return FaultEvent(**defaults)


class TestFaultEventValidation:
    def test_negative_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            drop_event(cycle=-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            drop_event(duration=0)

    def test_zero_magnitude_rejected(self):
        with pytest.raises(ConfigurationError):
            drop_event(magnitude=0)

    def test_ratio_bounds(self):
        with pytest.raises(ConfigurationError):
            drop_event(ratio=0.0)
        with pytest.raises(ConfigurationError):
            drop_event(ratio=1.5)
        drop_event(ratio=1.0)  # inclusive upper bound is fine

    @pytest.mark.parametrize(
        "kind", sorted(PORT_KINDS, key=lambda k: k.value)
    )
    def test_port_faults_need_a_client(self, kind):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind=kind, cycle=0, client_id=None)

    def test_rogue_burst_needs_client_and_slack(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind=FaultKind.ROGUE_BURST, cycle=0)
        with pytest.raises(ConfigurationError):
            FaultEvent(
                kind=FaultKind.ROGUE_BURST,
                cycle=0,
                client_id=0,
                deadline_slack=0,
            )

    def test_bit_flip_needs_node_and_valid_bit(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind=FaultKind.BUDGET_BIT_FLIP, cycle=0, node=None)
        with pytest.raises(ConfigurationError):
            FaultEvent(
                kind=FaultKind.BUDGET_BIT_FLIP, cycle=0, node=(0, 0), bit=32
            )
        with pytest.raises(ConfigurationError):
            FaultEvent(
                kind=FaultKind.BUDGET_BIT_FLIP,
                cycle=0,
                node=(0, 0),
                counter="phase",
            )


class TestFaultEventSemantics:
    def test_window(self):
        event = drop_event(cycle=10, duration=5)
        assert event.end == 15
        assert not event.active_at(9)
        assert event.active_at(10)
        assert event.active_at(14)
        assert not event.active_at(15)

    def test_selects_is_pure_and_respects_full_ratio(self):
        event = drop_event(ratio=1.0)
        assert all(event.selects(rid) for rid in range(100))
        partial = drop_event(ratio=0.5, seed=9)
        picks = [partial.selects(rid) for rid in range(2_000)]
        assert picks == [partial.selects(rid) for rid in range(2_000)]
        fraction = sum(picks) / len(picks)
        assert 0.35 < fraction < 0.65  # hash spreads near the ratio

    def test_different_seeds_select_different_requests(self):
        left = drop_event(ratio=0.5, seed=1)
        right = drop_event(ratio=0.5, seed=2)
        picks_l = [left.selects(r) for r in range(500)]
        picks_r = [right.selects(r) for r in range(500)]
        assert picks_l != picks_r

    def test_action_cycles_by_kind(self):
        one_shot = FaultEvent(
            kind=FaultKind.ROGUE_BURST, cycle=40, client_id=0
        )
        assert one_shot.action_cycles() == [40]
        periodic = FaultEvent(
            kind=FaultKind.ROGUE_BURST,
            cycle=100,
            duration=250,
            client_id=0,
            period=100,
        )
        assert periodic.action_cycles() == [100, 200, 300]
        stall = FaultEvent(
            kind=FaultKind.CONTROLLER_STALL, cycle=7, magnitude=20
        )
        assert stall.action_cycles() == [7]
        assert drop_event().action_cycles() == []


class TestFaultPlan:
    def test_none_is_empty(self):
        plan = FaultPlan.none()
        assert plan.empty
        assert len(plan) == 0
        assert list(plan) == []
        assert plan.port_events == ()

    def test_events_sorted_by_cycle(self):
        late = drop_event(cycle=50)
        early = FaultEvent(
            kind=FaultKind.CONTROLLER_STALL, cycle=5, magnitude=3
        )
        plan = FaultPlan((late, early))
        assert [e.cycle for e in plan] == [5, 50]

    def test_of_kind_and_port_events(self):
        plan = FaultPlan(
            (
                drop_event(cycle=1),
                FaultEvent(kind=FaultKind.CONTROLLER_STALL, cycle=2),
            )
        )
        assert len(plan.of_kind(FaultKind.PORT_DROP)) == 1
        assert len(plan.of_kind(FaultKind.ROGUE_BURST)) == 0
        assert plan.port_events == plan.of_kind(FaultKind.PORT_DROP)

    def test_rogue_client_window_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.rogue_client(0, 100, 100)
        plan = FaultPlan.rogue_client(2, 100, 400, burst_every=75)
        (event,) = plan.events
        assert event.client_id == 2
        assert event.action_cycles() == [100, 175, 250, 325]

    def test_generate_is_deterministic_by_seed(self):
        a = FaultPlan.generate(seed=3, horizon=2_000, n_clients=8)
        b = FaultPlan.generate(seed=3, horizon=2_000, n_clients=8)
        c = FaultPlan.generate(seed=4, horizon=2_000, n_clients=8)
        assert a.events == b.events
        assert a.events != c.events
        kinds = {e.kind for e in a}
        assert kinds == set(FaultKind)  # one event of every kind

    def test_generate_respects_scale(self):
        plan = FaultPlan.generate(
            seed=1, horizon=1_000, n_clients=4, events_per_kind=3
        )
        assert len(plan) == 3 * len(FaultKind)
        for event in plan:
            assert event.cycle < 1_000
            if event.client_id is not None:
                assert 0 <= event.client_id < 4

    def test_generate_rejects_degenerate_inputs(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(seed=1, horizon=5, n_clients=4)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(seed=1, horizon=100, n_clients=0)
