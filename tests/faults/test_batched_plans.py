"""Fault plans under the batched simulator backend.

The batched SoA kernels do not model fault injection; the eligibility
contract (:func:`repro.sim.batched.extract.check_supported`) is what
keeps that safe:

* a **non-empty** fault plan makes the trial ineligible, and
  :func:`repro.sim.batched.run_many` transparently falls back to the
  scalar engine — so every fault campaign stays bit-identical to a
  scalar run, counters included;
* an **empty** plan is inert by definition, stays eligible, runs on
  the SoA path, and must be bit-for-bit indistinguishable from a run
  with no fault instrumentation at all.
"""

from __future__ import annotations

import random

import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.experiments.factory import build_interconnect
from repro.faults.plan import FaultKind, FaultPlan
from repro.sim import batched_supported, run_many
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets

N_CLIENTS = 8
HORIZON = 1_500
DRAIN = 700


def build_sim(
    name: str, seed: int, faults: FaultPlan | None
) -> SoCSimulation:
    rng = random.Random(seed)
    tasksets = generate_client_tasksets(
        rng,
        n_clients=N_CLIENTS,
        tasks_per_client=3,
        system_utilization=0.45,
    )
    interconnect = build_interconnect(name, N_CLIENTS, tasksets)
    clients = [
        TrafficGenerator(c, ts, rng=random.Random(seed * 17 + c))
        for c, ts in tasksets.items()
    ]
    return SoCSimulation(clients, interconnect, faults=faults)


def fingerprint(result) -> tuple:
    return (
        result.trace_digest,
        result.job_outcomes,
        result.requests_released,
        result.requests_completed,
        result.requests_dropped,
        dict(result.fault_counters),
    )


@pytest.mark.parametrize("kind", list(FaultKind))
def test_every_fault_kind_identical_under_batched_backend(kind):
    """run_many over faulted trials ≡ direct scalar runs, per kind.

    The faulted trials must be rejected by the eligibility check (the
    kernels cannot replay perturbations) and then produce the exact
    scalar results through the fallback — including the fault counters
    that prove the plan actually fired.
    """
    plan = FaultPlan.generate(
        f"batched/{kind.name}", HORIZON, N_CLIENTS, kinds=(kind,)
    )
    assert not plan.empty
    batch = [build_sim("BlueScale", seed, plan) for seed in (1, 2)]
    assert all(not batched_supported(sim) for sim in batch)
    results = run_many(batch, HORIZON, drain=DRAIN, backend="batched")
    for seed, result in zip((1, 2), results):
        oracle = build_sim("BlueScale", seed, plan).run(HORIZON, drain=DRAIN)
        assert fingerprint(result) == fingerprint(oracle), kind.name


@pytest.mark.parametrize("name", ["BlueScale", "GSMTree-TDM", "AXI-IC^RT"])
def test_rogue_client_campaign_identical_across_designs(name):
    """The isolation campaign's aggressor plan stays bit-identical
    through run_many on every arbitration family."""
    plan = FaultPlan.rogue_client(
        0, 300, HORIZON, burst_size=16, burst_every=80
    )
    sims = [build_sim(name, seed, plan) for seed in (3, 4)]
    results = run_many(sims, HORIZON, drain=DRAIN, backend="batched")
    for seed, result in zip((3, 4), results):
        oracle = build_sim(name, seed, plan).run(HORIZON, drain=DRAIN)
        assert fingerprint(result) == fingerprint(oracle), name
        assert result.fault_counters.get("rogue_requests", 0) > 0, name


def test_empty_plan_is_inert_on_the_soa_path():
    """An empty plan keeps the trial on the batched kernels and changes
    nothing: same digest as a run with no fault instrumentation, zero
    injected work, zero counters."""
    with_empty = build_sim("BlueScale", 5, FaultPlan.none())
    without = build_sim("BlueScale", 5, None)
    assert batched_supported(with_empty)
    assert batched_supported(without)
    result_empty, result_plain = run_many(
        [with_empty, without], HORIZON, drain=DRAIN, backend="batched"
    )
    # cycles_skipped == 0 certifies the SoA path ran (the scalar fast
    # path leaps over idle stretches at this utilization)
    assert result_empty.cycles_skipped == 0
    assert result_plain.cycles_skipped == 0
    assert result_empty.trace_digest == result_plain.trace_digest
    assert result_empty.job_outcomes == result_plain.job_outcomes
    assert all(v == 0 for v in result_empty.fault_counters.values())
    oracle = build_sim("BlueScale", 5, None).run(HORIZON, drain=DRAIN)
    assert result_plain.trace_digest == oracle.trace_digest
