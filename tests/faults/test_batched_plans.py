"""Fault plans under the batched simulator backend.

The batched SoA kernels model exactly one fault kind natively:
``ROGUE_BURST``, whose firings are deterministic extra releases and
compile straight into the :class:`~repro.sim.batched.extract.TrialPlan`
request schedule.  The eligibility contract
(:func:`repro.sim.batched.extract.check_supported`) keeps everything
else safe:

* a plan containing **any non-rogue event** makes the trial
  ineligible, and :func:`repro.sim.batched.run_many` transparently
  falls back to the scalar engine — so those campaigns stay
  bit-identical to a scalar run, counters included;
* a **rogue-only** plan stays eligible, runs on the SoA path, and must
  be bit-for-bit identical to the scalar orchestrator: same trace
  digest, same job outcomes, same fault counters, same per-client job
  ledgers;
* an **empty** plan is inert by definition, stays eligible, and must
  be indistinguishable from a run with no fault instrumentation.
"""

from __future__ import annotations

import random

import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.experiments.factory import build_interconnect
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.sim import batched_supported, run_many
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets

N_CLIENTS = 8
HORIZON = 1_500
DRAIN = 700


def build_sim(
    name: str, seed: int, faults: FaultPlan | None
) -> SoCSimulation:
    rng = random.Random(seed)
    tasksets = generate_client_tasksets(
        rng,
        n_clients=N_CLIENTS,
        tasks_per_client=3,
        system_utilization=0.45,
    )
    interconnect = build_interconnect(name, N_CLIENTS, tasksets)
    clients = [
        TrafficGenerator(c, ts, rng=random.Random(seed * 17 + c))
        for c, ts in tasksets.items()
    ]
    return SoCSimulation(clients, interconnect, faults=faults)


def fingerprint(result) -> tuple:
    return (
        result.trace_digest,
        result.job_outcomes,
        result.requests_released,
        result.requests_completed,
        result.requests_dropped,
        dict(result.fault_counters),
    )


def client_ledger(client) -> tuple:
    """Everything the scalar run leaves on a client that downstream
    consumers (verify_isolation, the isolation fold) read back."""
    return (
        [
            (
                job.task_name,
                job.release,
                job.deadline,
                job.outstanding,
                job.monitored,
                job.last_completion,
                job.dropped,
            )
            for job in client.jobs
        ],
        dict(client.max_response_by_task),
        client.max_blocking,
        client.released_requests,
        client.dropped_requests,
        client.released_jobs,
    )


NON_ROGUE_KINDS = [k for k in FaultKind if k is not FaultKind.ROGUE_BURST]


@pytest.mark.parametrize("kind", NON_ROGUE_KINDS)
def test_non_rogue_kinds_fall_back_and_stay_identical(kind):
    """run_many over non-rogue faulted trials ≡ direct scalar runs.

    These kinds perturb arbitration or injection attempts, which the
    kernels cannot replay — the trials must be rejected by the
    eligibility check and then produce the exact scalar results through
    the fallback, including the fault counters that prove the plan
    actually fired.
    """
    plan = FaultPlan.generate(
        f"batched/{kind.name}", HORIZON, N_CLIENTS, kinds=(kind,)
    )
    assert not plan.empty
    batch = [build_sim("BlueScale", seed, plan) for seed in (1, 2)]
    assert all(not batched_supported(sim) for sim in batch)
    results = run_many(batch, HORIZON, drain=DRAIN, backend="batched")
    for seed, result in zip((1, 2), results):
        oracle = build_sim("BlueScale", seed, plan).run(HORIZON, drain=DRAIN)
        assert fingerprint(result) == fingerprint(oracle), kind.name


def test_mixed_plan_with_rogue_and_other_kinds_falls_back():
    """One non-rogue event poisons the whole plan's eligibility."""
    plan = FaultPlan(
        (
            FaultEvent(
                kind=FaultKind.ROGUE_BURST,
                cycle=200,
                client_id=0,
                magnitude=8,
                deadline_slack=16,
            ),
            FaultEvent(kind=FaultKind.CONTROLLER_STALL, cycle=400, magnitude=5),
        )
    )
    sim = build_sim("BlueScale", 1, plan)
    assert not batched_supported(sim)
    (result,) = run_many([sim], HORIZON, drain=DRAIN, backend="batched")
    oracle = build_sim("BlueScale", 1, plan).run(HORIZON, drain=DRAIN)
    assert fingerprint(result) == fingerprint(oracle)


@pytest.mark.parametrize("name", ["BlueScale", "GSMTree-TDM", "AXI-IC^RT"])
def test_rogue_client_campaign_identical_across_designs(name):
    """The isolation campaign's aggressor plan runs on the SoA kernels
    and stays bit-identical on every arbitration family — digests, job
    outcomes, fault counters, and the per-client job ledgers the
    isolation harness reads."""
    plan = FaultPlan.rogue_client(
        0, 300, HORIZON, burst_size=16, burst_every=80
    )
    sims = [build_sim(name, seed, plan) for seed in (3, 4)]
    assert all(batched_supported(sim) for sim in sims), name
    results = run_many(sims, HORIZON, drain=DRAIN, backend="batched")
    for seed, sim, result in zip((3, 4), sims, results):
        # cycles_skipped == 0 certifies the SoA path ran (the scalar
        # fast path leaps over idle stretches at this utilization)
        assert result.cycles_skipped == 0, name
        oracle_sim = build_sim(name, seed, plan)
        oracle = oracle_sim.run(HORIZON, drain=DRAIN)
        assert fingerprint(result) == fingerprint(oracle), name
        assert result.fault_counters.get("rogue_requests", 0) > 0, name
        for batched_client, scalar_client in zip(
            sim.clients, oracle_sim.clients
        ):
            assert client_ledger(batched_client) == client_ledger(
                scalar_client
            ), (name, seed, batched_client.client_id)


EDGE_PLANS = {
    # several events, overlapping cycles, two distinct targets — pins
    # the faults-stage-before-clients and event-heap-pop ordering
    "multi-event": FaultPlan(
        (
            FaultEvent(
                kind=FaultKind.ROGUE_BURST,
                cycle=200,
                duration=400,
                client_id=2,
                magnitude=8,
                period=60,
                deadline_slack=12,
            ),
            FaultEvent(
                kind=FaultKind.ROGUE_BURST,
                cycle=200,
                client_id=5,
                magnitude=24,
                deadline_slack=30,
            ),
            FaultEvent(
                kind=FaultKind.ROGUE_BURST,
                cycle=450,
                client_id=2,
                magnitude=6,
                deadline_slack=9,
            ),
        )
    ),
    # a target port with no client attached → events_ignored, plus a
    # real firing on the same plan
    "missing-target": FaultPlan(
        (
            FaultEvent(
                kind=FaultKind.ROGUE_BURST,
                cycle=100,
                client_id=99,
                magnitude=4,
                deadline_slack=10,
            ),
            FaultEvent(
                kind=FaultKind.ROGUE_BURST,
                cycle=150,
                client_id=1,
                magnitude=4,
                deadline_slack=10,
            ),
        )
    ),
    # fires during the drain window: releases into the pending queue
    # but the client stage never injects past the horizon, so the
    # burst ends the trial in flight
    "post-horizon": FaultPlan(
        (
            FaultEvent(
                kind=FaultKind.ROGUE_BURST,
                cycle=HORIZON + 100,
                client_id=3,
                magnitude=5,
                deadline_slack=7,
            ),
        )
    ),
    # burst far beyond pending capacity → overflow drops counted
    # against the client, like any other release
    "capacity-overflow": FaultPlan(
        (
            FaultEvent(
                kind=FaultKind.ROGUE_BURST,
                cycle=50,
                client_id=0,
                magnitude=500,
                deadline_slack=600,
            ),
        )
    ),
}


@pytest.mark.parametrize("label", sorted(EDGE_PLANS))
def test_rogue_edge_plans_identical(label):
    plan = EDGE_PLANS[label]
    sims = [build_sim("BlueScale", seed, plan) for seed in (3, 4)]
    assert all(batched_supported(sim) for sim in sims), label
    results = run_many(sims, HORIZON, drain=DRAIN, backend="batched")
    for seed, sim, result in zip((3, 4), sims, results):
        oracle_sim = build_sim("BlueScale", seed, plan)
        oracle = oracle_sim.run(HORIZON, drain=DRAIN)
        assert fingerprint(result) == fingerprint(oracle), (label, seed)
        assert result.requests_in_flight == oracle.requests_in_flight
        for batched_client, scalar_client in zip(
            sim.clients, oracle_sim.clients
        ):
            assert client_ledger(batched_client) == client_ledger(
                scalar_client
            ), (label, seed, batched_client.client_id)
    if label == "missing-target":
        assert results[0].fault_counters["events_ignored"] == 1
        assert results[0].fault_counters["events_applied"] == 1
    if label == "capacity-overflow":
        assert results[0].requests_dropped > 0


def test_unfaulted_ledgers_match_scalar():
    """The finalizer's ledger write-back is not rogue-specific: plain
    SoA trials leave the same client state a scalar run would."""
    for name in ("BlueScale", "AXI-IC^RT"):
        sim = build_sim(name, 7, None)
        (result,) = run_many([sim], HORIZON, drain=DRAIN, backend="batched")
        assert result.cycles_skipped == 0
        oracle_sim = build_sim(name, 7, None)
        oracle_sim.run(HORIZON, drain=DRAIN)
        for batched_client, scalar_client in zip(
            sim.clients, oracle_sim.clients
        ):
            assert client_ledger(batched_client) == client_ledger(
                scalar_client
            ), (name, batched_client.client_id)


def test_empty_plan_is_inert_on_the_soa_path():
    """An empty plan keeps the trial on the batched kernels and changes
    nothing: same digest as a run with no fault instrumentation, zero
    injected work, zero counters."""
    with_empty = build_sim("BlueScale", 5, FaultPlan.none())
    without = build_sim("BlueScale", 5, None)
    assert batched_supported(with_empty)
    assert batched_supported(without)
    result_empty, result_plain = run_many(
        [with_empty, without], HORIZON, drain=DRAIN, backend="batched"
    )
    # cycles_skipped == 0 certifies the SoA path ran (the scalar fast
    # path leaps over idle stretches at this utilization)
    assert result_empty.cycles_skipped == 0
    assert result_plain.cycles_skipped == 0
    assert result_empty.trace_digest == result_plain.trace_digest
    assert result_empty.job_outcomes == result_plain.job_outcomes
    assert all(v == 0 for v in result_empty.fault_counters.values())
    oracle = build_sim("BlueScale", 5, None).run(HORIZON, drain=DRAIN)
    assert result_plain.trace_digest == oracle.trace_digest
