"""FaultOrchestrator integration: determinism on both engine paths,
inertness of the empty plan, conservation, and per-kind hook behaviour.

The heavyweight guarantees here are the ISSUE acceptance criteria:

* an instrumented run under ``FaultPlan.none()`` is **bit-for-bit**
  identical (same completion-trace digest) to an uninstrumented run, on
  both the quiescence fast path and the cycle-by-cycle path;
* every seeded plan produces identical digests and fault counters on
  the fast and slow paths (the orchestrator pins leaps across its
  action cycles and port-fault windows).
"""

import random

import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.experiments.factory import build_interconnect
from repro.faults import FaultEvent, FaultKind, FaultPlan, make_orchestrator
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets

HORIZON, DRAIN = 1_200, 700
N_CLIENTS = 8

# one design per arbitration code path: SE tree, mux tree, AXI switch
DESIGNS = ("BlueScale", "GSMTree-TDM", "AXI-IC^RT")


def run_design(name, faults, fast, workload_seed=7):
    rng = random.Random(workload_seed)
    tasksets = generate_client_tasksets(
        rng, N_CLIENTS, 2, 0.6, period_min=100, period_max=900
    )
    interconnect = build_interconnect(name, N_CLIENTS, tasksets)
    clients = [
        TrafficGenerator(cid, ts, rng=random.Random(1_000 + cid))
        for cid, ts in tasksets.items()
    ]
    simulation = SoCSimulation(
        clients, interconnect, fast_path=fast, faults=faults
    )
    result = simulation.run(HORIZON, drain=DRAIN)
    return simulation, result


SEEDED_PLANS = {
    "rogue": FaultPlan.rogue_client(0, 200, 900, burst_size=12, burst_every=100),
    "drop": FaultPlan(
        (
            FaultEvent(
                kind=FaultKind.PORT_DROP,
                cycle=200,
                duration=400,
                client_id=1,
                ratio=0.5,
                seed=3,
            ),
        )
    ),
    "duplicate": FaultPlan(
        (
            FaultEvent(
                kind=FaultKind.PORT_DUPLICATE,
                cycle=300,
                duration=300,
                client_id=2,
                ratio=0.4,
                seed=5,
            ),
        )
    ),
    "delay": FaultPlan(
        (
            FaultEvent(
                kind=FaultKind.PORT_DELAY,
                cycle=250,
                duration=350,
                client_id=3,
                magnitude=9,
                ratio=0.5,
            ),
        )
    ),
    "bit-flip": FaultPlan(
        (
            FaultEvent(
                kind=FaultKind.BUDGET_BIT_FLIP,
                cycle=400,
                node=(0, 0),
                port=1,
                bit=3,
            ),
        )
    ),
    "stall": FaultPlan(
        (FaultEvent(kind=FaultKind.CONTROLLER_STALL, cycle=500, magnitude=40),)
    ),
    "mixed": FaultPlan.generate(
        seed=11, horizon=HORIZON, n_clients=N_CLIENTS, events_per_kind=2
    ),
}


@pytest.mark.parametrize("name", DESIGNS)
def test_empty_plan_is_bit_for_bit_inert(name):
    """Instrumented-with-nothing == uninstrumented, on both paths."""
    digests = set()
    for fast in (True, False):
        _, bare = run_design(name, None, fast)
        _, instrumented = run_design(name, FaultPlan.none(), fast)
        assert instrumented.trace_digest == bare.trace_digest
        assert instrumented.fault_counters["events_applied"] == 0
        digests.add(bare.trace_digest)
    assert len(digests) == 1  # fast == slow as well


@pytest.mark.parametrize("label", sorted(SEEDED_PLANS))
@pytest.mark.parametrize("name", DESIGNS)
def test_fast_path_equals_slow_path_under_faults(name, label):
    plan = SEEDED_PLANS[label]
    _, fast = run_design(name, plan, True)
    _, slow = run_design(name, plan, False)
    assert fast.trace_digest == slow.trace_digest
    assert fast.fault_counters == slow.fault_counters
    assert fast.requests_released == slow.requests_released
    assert fast.requests_dropped == slow.requests_dropped


class TestConservation:
    """Perturbed requests keep the conservation ledger balanced (run()
    itself raises SimulationError on any imbalance, so these are also
    regression anchors for the counter folding in _collect)."""

    def test_drops_counted(self):
        _, result = run_design("BlueScale", SEEDED_PLANS["drop"], True)
        assert result.fault_counters["requests_dropped"] > 0
        assert result.requests_dropped >= result.fault_counters["requests_dropped"]

    def test_duplicates_add_released(self):
        _, bare = run_design("BlueScale", None, True)
        _, dup = run_design("BlueScale", SEEDED_PLANS["duplicate"], True)
        extra = dup.fault_counters["requests_duplicated"]
        assert extra > 0
        assert dup.requests_released == bare.requests_released + extra

    def test_delays_complete_eventually(self):
        _, result = run_design("BlueScale", SEEDED_PLANS["delay"], True)
        assert result.fault_counters["requests_delayed"] > 0
        assert result.fault_counters["requests_held"] == 0  # all re-injected


class TestPerKindHooks:
    def test_rogue_burst_wakes_a_sleeping_client(self):
        """A burst lands while the target client's pending queue is
        empty (it would otherwise sleep past the injection on the fast
        path); the extra transactions still flow and both paths agree."""
        plan = FaultPlan.rogue_client(
            5, 700, 800, burst_size=6, burst_every=200
        )
        sim_fast, fast = run_design("BlueScale", plan, True)
        _, slow = run_design("BlueScale", plan, False)
        assert fast.trace_digest == slow.trace_digest
        assert fast.fault_counters["rogue_requests"] == 6
        client = sim_fast.clients[5]
        assert "!rogue" in client.max_response_by_task  # they completed

    def test_controller_stall_freezes_service(self):
        sim, result = run_design("BlueScale", SEEDED_PLANS["stall"], True)
        assert result.fault_counters["stall_cycles"] == 40
        assert sim.controller.fault_stall_cycles == 40
        # stalling a loaded controller must cost throughput
        _, bare = run_design("BlueScale", None, True)
        assert result.trace_digest != bare.trace_digest

    def test_bit_flip_reaches_the_scale_element(self):
        sim, result = run_design("BlueScale", SEEDED_PLANS["bit-flip"], True)
        assert result.fault_counters["bit_flips"] == 1
        assert result.fault_counters["events_ignored"] == 0

    @pytest.mark.parametrize("name", ("GSMTree-TDM", "AXI-IC^RT"))
    def test_bit_flip_ignored_by_designs_without_scheduler(self, name):
        _, result = run_design(name, SEEDED_PLANS["bit-flip"], True)
        assert result.fault_counters["bit_flips"] == 0
        assert result.fault_counters["events_ignored"] == 1
        _, bare = run_design(name, None, True)
        assert result.trace_digest == bare.trace_digest  # truly a no-op


class TestObservability:
    def test_fault_events_emit_spans_and_counters(self):
        plan = SEEDED_PLANS["mixed"]
        rng = random.Random(7)
        tasksets = generate_client_tasksets(
            rng, N_CLIENTS, 2, 0.6, period_min=100, period_max=900
        )
        interconnect = build_interconnect("BlueScale", N_CLIENTS, tasksets)
        clients = [
            TrafficGenerator(cid, ts, rng=random.Random(1_000 + cid))
            for cid, ts in tasksets.items()
        ]
        simulation = SoCSimulation(
            clients, interconnect, observability=True, faults=plan
        )
        simulation.run(HORIZON, drain=DRAIN)
        spans = simulation.tracer.recorder.spans()
        fault_spans = [s for s in spans if s.kind == "fault"]
        assert fault_spans
        assert {s.site.startswith("fault:") for s in fault_spans} == {True}
        counters = simulation.tracer.registry.counters
        assert any(k.startswith("faults/") for k in counters)

    def test_tracing_does_not_perturb_a_faulted_run(self):
        plan = SEEDED_PLANS["mixed"]
        _, untraced = run_design("BlueScale", plan, True)
        rng = random.Random(7)
        tasksets = generate_client_tasksets(
            rng, N_CLIENTS, 2, 0.6, period_min=100, period_max=900
        )
        interconnect = build_interconnect("BlueScale", N_CLIENTS, tasksets)
        clients = [
            TrafficGenerator(cid, ts, rng=random.Random(1_000 + cid))
            for cid, ts in tasksets.items()
        ]
        traced = SoCSimulation(
            clients, interconnect, observability=True, faults=plan
        ).run(HORIZON, drain=DRAIN)
        assert traced.trace_digest == untraced.trace_digest
        assert traced.fault_counters == untraced.fault_counters


class TestMakeOrchestrator:
    def test_none_stays_none(self):
        assert make_orchestrator(None) is None

    def test_plan_is_wrapped(self):
        orchestrator = make_orchestrator(FaultPlan.none())
        assert orchestrator is not None
        assert make_orchestrator(orchestrator) is orchestrator

    def test_junk_rejected(self):
        with pytest.raises(ConfigurationError):
            make_orchestrator([1, 2, 3])
