"""Unit tests for the processor and accelerator client models."""

import pytest

from repro.clients.accelerator import AcceleratorClient, dnn_inference_task
from repro.clients.processor import ProcessorClient
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class AcceptAll:
    def __init__(self):
        self.requests = []

    def __call__(self, request, cycle):
        self.requests.append((request, cycle))
        return True


class TestProcessorClient:
    def app_and_interference(self):
        app = TaskSet([PeriodicTask(period=100, wcet=2, name="app")])
        noise = TaskSet([PeriodicTask(period=50, wcet=1, name="noise")])
        return app, noise

    def test_runs_both_task_classes(self):
        app, noise = self.app_and_interference()
        client = ProcessorClient(0, app, noise)
        sink = AcceptAll()
        for cycle in range(3):
            client.tick(cycle, sink)
        names = {r.task_name for r, _ in sink.requests}
        assert names == {"app", "noise"}

    def test_only_application_tasks_monitored(self):
        app, noise = self.app_and_interference()
        client = ProcessorClient(0, app, noise)
        sink = AcceptAll()
        for cycle in range(4):
            client.tick(cycle, sink)
        for request, _ in sink.requests:
            request.mark_complete(500)  # everything late
            client.on_response(request)
        # only the app job's miss is counted
        assert client.monitored_job_misses(horizon=400) == client.monitored_jobs_judged(
            horizon=400
        )
        assert all(
            job.monitored == (job.task_name == "app") for job in client.jobs
        )

    def test_utilization_properties(self):
        app, noise = self.app_and_interference()
        client = ProcessorClient(0, app, noise)
        assert client.application_utilization == pytest.approx(0.02)
        assert client.total_utilization == pytest.approx(0.04)

    def test_no_interference_is_fine(self):
        app, _ = self.app_and_interference()
        client = ProcessorClient(0, app)
        assert client.total_utilization == client.application_utilization


class TestAcceleratorClient:
    def streaming_tasks(self):
        return TaskSet([dnn_inference_task("squeeze", period=100, requests_per_inference=10)])

    def test_bandwidth_cap_paces_injection(self):
        client = AcceleratorClient(0, self.streaming_tasks(), bandwidth_cap=0.25)
        sink = AcceptAll()
        for cycle in range(40):
            client.tick(cycle, sink)
        # one inject per ceil(1/0.25)=4 cycles
        assert len(sink.requests) == 10
        gaps = [b - a for (_, a), (_, b) in zip(sink.requests, sink.requests[1:])]
        assert all(gap >= 4 for gap in gaps)

    def test_full_bandwidth_injects_every_cycle(self):
        client = AcceleratorClient(0, self.streaming_tasks(), bandwidth_cap=1.0)
        sink = AcceptAll()
        for cycle in range(10):
            client.tick(cycle, sink)
        assert len(sink.requests) == 10

    def test_rejects_bad_cap(self):
        with pytest.raises(ConfigurationError):
            AcceleratorClient(0, self.streaming_tasks(), bandwidth_cap=0.0)
        with pytest.raises(ConfigurationError):
            AcceleratorClient(0, self.streaming_tasks(), bandwidth_cap=1.5)

    def test_inference_task_factory(self):
        task = dnn_inference_task("m", period=500, requests_per_inference=60, client_id=3)
        assert task.period == 500
        assert task.wcet == 60
        assert task.client_id == 3
