"""Unit tests for the traffic-generator client."""

import pytest

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class AcceptAll:
    def __init__(self):
        self.requests = []

    def __call__(self, request, cycle):
        self.requests.append((request, cycle))
        return True


class RejectAll:
    def __call__(self, request, cycle):
        return False


def generator(tasks, **kwargs):
    return TrafficGenerator(0, TaskSet(tasks), **kwargs)


class TestReleases:
    def test_job_releases_burst_of_wcet_requests(self):
        gen = generator([PeriodicTask(period=100, wcet=3, name="t")])
        sink = AcceptAll()
        gen.tick(0, sink)
        assert gen.released_jobs == 1
        assert gen.released_requests == 3

    def test_periodic_re_release(self):
        gen = generator([PeriodicTask(period=10, wcet=1, name="t")])
        sink = AcceptAll()
        for cycle in range(25):
            gen.tick(cycle, sink)
        assert gen.released_jobs == 3  # releases at 0, 10, 20

    def test_deadline_is_release_plus_period(self):
        gen = generator([PeriodicTask(period=50, wcet=1, name="t")])
        sink = AcceptAll()
        gen.tick(0, sink)
        request, _ = sink.requests[0]
        assert request.absolute_deadline == 50

    def test_one_injection_per_cycle(self):
        gen = generator([PeriodicTask(period=100, wcet=5, name="t")])
        sink = AcceptAll()
        gen.tick(0, sink)
        assert len(sink.requests) == 1  # burst of 5 pending, 1 issued
        gen.tick(1, sink)
        assert len(sink.requests) == 2

    def test_pending_issued_in_edf_order(self):
        gen = generator(
            [
                PeriodicTask(period=300, wcet=1, name="slow"),
                PeriodicTask(period=50, wcet=1, name="fast"),
            ]
        )
        sink = AcceptAll()
        gen.tick(0, sink)
        gen.tick(1, sink)
        names = [r.task_name for r, _ in sink.requests]
        assert names == ["fast", "slow"]

    def test_rejected_injection_retried(self):
        gen = generator([PeriodicTask(period=100, wcet=1, name="t")])
        gen.tick(0, RejectAll())
        assert gen.pending_count == 1
        sink = AcceptAll()
        gen.tick(1, sink)
        assert gen.pending_count == 0
        assert len(sink.requests) == 1

    def test_random_phases_shift_first_release(self):
        import random

        gen = TrafficGenerator(
            0,
            TaskSet([PeriodicTask(period=100, wcet=1, name="t")]),
            rng=random.Random(1),
            random_phases=True,
        )
        sink = AcceptAll()
        gen.tick(0, sink)
        # with a random phase in [0, 100) the job usually is not at 0;
        # whatever the phase, release count is consistent with it
        phase_released = gen.released_jobs
        for cycle in range(1, 100):
            gen.tick(cycle, sink)
        assert gen.released_jobs == 1
        assert phase_released in (0, 1)


class TestQueuePolicies:
    def two_task_set(self):
        return TaskSet(
            [
                PeriodicTask(period=300, wcet=1, name="slow"),
                PeriodicTask(period=50, wcet=1, name="fast"),
            ]
        )

    def issue_order(self, policy):
        gen = TrafficGenerator(0, self.two_task_set(), queue_policy=policy)
        sink = AcceptAll()
        gen.tick(0, sink)
        gen.tick(1, sink)
        return [r.task_name for r, _ in sink.requests]

    def test_edf_issues_earliest_deadline_first(self):
        assert self.issue_order("edf") == ["fast", "slow"]

    def test_rm_issues_shortest_period_first(self):
        assert self.issue_order("rm") == ["fast", "slow"]

    def test_fifo_issues_release_order(self):
        # both release at cycle 0; FIFO falls back to creation order,
        # which follows task order in the set
        assert self.issue_order("fifo") == ["slow", "fast"]

    def test_rm_vs_edf_diverge_on_late_short_period_job(self):
        """EDF prefers the earlier absolute deadline, RM the shorter
        period — they diverge once a long-period job is due sooner
        than the short-period task's *current* job."""
        taskset = TaskSet(
            [
                PeriodicTask(period=150, wcet=1, name="long"),
                PeriodicTask(period=100, wcet=1, name="short"),
            ]
        )

        def head_at_cycle_100(policy):
            gen = TrafficGenerator(0, taskset, queue_policy=policy)
            sink = AcceptAll()
            gen.tick(0, sink)  # issues short's job 0 (deadline 100)
            gen.tick(100, RejectAll())  # releases short's job 1 (dl 200)
            return gen._pending[0][1].task_name

        # pending at t=100: long (deadline 150) vs short job 1 (deadline
        # 200, period 100)
        assert head_at_cycle_100("edf") == "long"
        assert head_at_cycle_100("rm") == "short"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficGenerator(
                0, self.two_task_set(), queue_policy="lottery"
            )


class TestAddresses:
    def test_burst_addresses_are_sequential(self):
        gen = generator([PeriodicTask(period=100, wcet=3, name="t")])
        sink = AcceptAll()
        for cycle in range(3):
            gen.tick(cycle, sink)
        addresses = [r.address for r, _ in sink.requests]
        stride = TrafficGenerator.BURST_STRIDE
        assert addresses[1] - addresses[0] == stride
        assert addresses[2] - addresses[1] == stride

    def test_clients_use_disjoint_address_windows(self):
        a = TrafficGenerator(0, TaskSet([PeriodicTask(period=10, wcet=1)]))
        b = TrafficGenerator(1, TaskSet([PeriodicTask(period=10, wcet=1)]))
        assert a.address_base != b.address_base


class TestOverflow:
    def test_overflow_drops_and_counts(self):
        gen = generator(
            [PeriodicTask(period=10, wcet=8, name="hog")], pending_capacity=4
        )
        gen.tick(0, RejectAll())  # 8 requests, only 4 fit
        assert gen.dropped_requests == 4
        assert gen.pending_count == 4

    def test_dropped_requests_fail_their_job(self):
        gen = generator(
            [PeriodicTask(period=10, wcet=8, name="hog")], pending_capacity=4
        )
        sink = AcceptAll()
        for cycle in range(8):
            gen.tick(cycle, sink)
        for request, _ in sink.requests:
            request.mark_complete(5)
            gen.on_response(request)
        job = gen.jobs[0]
        assert job.dropped == 4
        assert not job.met_deadline


class TestCriticalityShedding:
    def mixed_set(self):
        return TaskSet(
            [
                PeriodicTask(period=100, wcet=4, name="infotainment"),
                PeriodicTask(period=100, wcet=2, name="airbag"),
            ]
        )

    def test_critical_task_evicts_low_criticality_pending(self):
        gen = TrafficGenerator(
            0,
            self.mixed_set(),
            pending_capacity=4,
            criticality={"airbag": 10, "infotainment": 1},
        )
        # fill the queue with infotainment (released first), then the
        # airbag burst arrives into a full queue
        gen.tick(0, RejectAll())
        names = [r.task_name for _, r in gen._pending]
        assert names.count("airbag") == 2  # both critical ones admitted
        assert gen.dropped_requests == 2  # two infotainment evicted

    def test_without_criticality_newest_is_dropped(self):
        gen = TrafficGenerator(0, self.mixed_set(), pending_capacity=4)
        gen.tick(0, RejectAll())
        names = [r.task_name for _, r in gen._pending]
        # infotainment released first fills the queue; airbag dropped
        assert names.count("infotainment") == 4
        assert gen.dropped_requests == 2

    def test_no_eviction_among_equal_criticality(self):
        gen = TrafficGenerator(
            0,
            self.mixed_set(),
            pending_capacity=4,
            criticality={"airbag": 5, "infotainment": 5},
        )
        gen.tick(0, RejectAll())
        assert gen.dropped_requests == 2
        names = [r.task_name for _, r in gen._pending]
        assert names.count("infotainment") == 4

    def test_evicted_job_accounting(self):
        gen = TrafficGenerator(
            0,
            self.mixed_set(),
            pending_capacity=4,
            criticality={"airbag": 10, "infotainment": 1},
        )
        gen.tick(0, RejectAll())
        infotainment_job = next(
            job for job in gen.jobs if job.task_name == "infotainment"
        )
        assert infotainment_job.dropped == 2
        assert not infotainment_job.met_deadline

    def test_heap_order_preserved_after_eviction(self):
        gen = TrafficGenerator(
            0,
            self.mixed_set(),
            pending_capacity=4,
            criticality={"airbag": 10, "infotainment": 1},
        )
        gen.tick(0, RejectAll())
        sink = AcceptAll()
        while gen.pending_count:
            before = gen.pending_count
            gen.tick(1, sink)
            assert gen.pending_count == before - 1
        keys = [r.priority_key for r, _ in sink.requests]
        assert keys == sorted(keys)


class TestJobTracking:
    def drive_to_completion(self, gen, complete_at):
        sink = AcceptAll()
        cycle = 0
        while gen.pending_count or not sink.requests:
            gen.tick(cycle, sink)
            cycle += 1
            if cycle > 100:
                break
        for request, _ in sink.requests:
            request.mark_complete(complete_at)
            gen.on_response(request)

    def test_job_meets_deadline(self):
        gen = generator([PeriodicTask(period=50, wcet=2, name="t")])
        self.drive_to_completion(gen, complete_at=40)
        job = gen.jobs[0]
        assert job.finished and job.met_deadline
        assert gen.monitored_job_misses(horizon=60) == 0
        assert gen.monitored_jobs_judged(horizon=60) == 1

    def test_job_misses_deadline(self):
        gen = generator([PeriodicTask(period=50, wcet=2, name="t")])
        self.drive_to_completion(gen, complete_at=55)
        assert gen.monitored_job_misses(horizon=60) == 1

    def test_jobs_beyond_horizon_not_judged(self):
        gen = generator([PeriodicTask(period=50, wcet=1, name="t")])
        self.drive_to_completion(gen, complete_at=10)
        assert gen.monitored_jobs_judged(horizon=20) == 0

    def test_unmonitored_tasks_excluded(self):
        gen = TrafficGenerator(
            0,
            TaskSet(
                [
                    PeriodicTask(period=50, wcet=1, name="app"),
                    PeriodicTask(period=50, wcet=1, name="noise"),
                ]
            ),
            monitored_tasks={"app"},
        )
        sink = AcceptAll()
        gen.tick(0, sink)
        gen.tick(1, sink)
        # complete both late
        for request, _ in sink.requests:
            request.mark_complete(60)
            gen.on_response(request)
        assert gen.monitored_jobs_judged(horizon=100) == 1
        assert gen.monitored_job_misses(horizon=100) == 1  # only "app"

    def test_unknown_response_ignored(self):
        gen = generator([PeriodicTask(period=50, wcet=1, name="t")])
        from tests.conftest import make_request

        stray = make_request()
        stray.mark_complete(3)
        gen.on_response(stray)  # must not raise


class TestValidation:
    def test_rejects_negative_client(self):
        with pytest.raises(ConfigurationError):
            TrafficGenerator(-1, TaskSet([PeriodicTask(period=10, wcet=1)]))

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            generator([PeriodicTask(period=10, wcet=1)], pending_capacity=0)

    def test_rejects_bad_write_ratio(self):
        with pytest.raises(ConfigurationError):
            generator([PeriodicTask(period=10, wcet=1)], write_ratio=1.5)
