"""Unit tests for the DRAM device model."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.dram import DramDevice, DramTiming, FixedLatencyDevice
from repro.memory.request import MemoryRequest, RequestKind

from tests.conftest import make_request


def request_at(address: int, write: bool = False):
    return MemoryRequest(
        client_id=0,
        release_cycle=0,
        absolute_deadline=1000,
        address=address,
        kind=RequestKind.WRITE if write else RequestKind.READ,
    )


class TestDramTiming:
    def test_defaults_ordered(self):
        timing = DramTiming()
        assert timing.row_hit_cycles <= timing.row_miss_cycles
        assert timing.row_miss_cycles <= timing.row_conflict_cycles

    def test_rejects_inverted_ordering(self):
        with pytest.raises(ConfigurationError):
            DramTiming(row_hit_cycles=40, row_miss_cycles=30, row_conflict_cycles=50)

    def test_rejects_nonpositive_costs(self):
        with pytest.raises(ConfigurationError):
            DramTiming(row_hit_cycles=0)

    def test_rejects_negative_write_penalty(self):
        with pytest.raises(ConfigurationError):
            DramTiming(write_extra_cycles=-1)


class TestAddressMapping:
    def test_same_row_same_bank(self):
        dram = DramDevice(n_banks=8, row_size_bytes=2048)
        assert dram.bank_of(0) == dram.bank_of(2047)
        assert dram.row_of(0) == dram.row_of(2047)

    def test_adjacent_rows_rotate_banks(self):
        dram = DramDevice(n_banks=8, row_size_bytes=2048)
        assert dram.bank_of(0) == 0
        assert dram.bank_of(2048) == 1
        assert dram.bank_of(8 * 2048) == 0  # wraps around

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            DramDevice(n_banks=0)
        with pytest.raises(ConfigurationError):
            DramDevice(row_size_bytes=0)


class TestRowBufferBehaviour:
    def test_first_access_is_miss(self):
        dram = DramDevice()
        cost = dram.access(request_at(0))
        assert cost == dram.timing.row_miss_cycles
        assert dram.misses == 1

    def test_second_access_same_row_hits(self):
        dram = DramDevice()
        dram.access(request_at(0))
        cost = dram.access(request_at(64))
        assert cost == dram.timing.row_hit_cycles
        assert dram.hits == 1

    def test_different_row_same_bank_conflicts(self):
        dram = DramDevice(n_banks=8, row_size_bytes=2048)
        dram.access(request_at(0))
        conflicting = 8 * 2048  # same bank 0, next row
        cost = dram.access(request_at(conflicting))
        assert cost == dram.timing.row_conflict_cycles
        assert dram.conflicts == 1

    def test_write_penalty_added(self):
        dram = DramDevice()
        read_cost = dram.access_cost(request_at(0))
        write_cost = dram.access_cost(request_at(0, write=True))
        assert write_cost == read_cost + dram.timing.write_extra_cycles

    def test_access_cost_does_not_mutate(self):
        dram = DramDevice()
        dram.access_cost(request_at(0))
        assert dram.total_accesses == 0
        assert dram.open_row(0) is None

    def test_precharge_all_closes_rows(self):
        dram = DramDevice()
        dram.access(request_at(0))
        dram.precharge_all()
        assert dram.open_row(dram.bank_of(0)) is None
        # next access misses again (not a conflict)
        assert dram.access(request_at(0)) == dram.timing.row_miss_cycles

    def test_hit_ratio(self):
        dram = DramDevice()
        dram.access(request_at(0))
        dram.access(request_at(64))
        dram.access(request_at(128))
        assert dram.row_hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_empty(self):
        assert DramDevice().row_hit_ratio == 0.0

    def test_is_row_hit_tracks_state(self):
        dram = DramDevice()
        assert not dram.is_row_hit(request_at(0))
        dram.access(request_at(0))
        assert dram.is_row_hit(request_at(64))

    def test_streaming_burst_mostly_hits(self):
        """A sequential burst (one job's requests) hits after the opener —
        the locality the clients' address generator is designed to give."""
        dram = DramDevice()
        costs = [dram.access(request_at(64 * i)) for i in range(16)]
        assert costs[0] == dram.timing.row_miss_cycles
        assert all(c == dram.timing.row_hit_cycles for c in costs[1:])


class TestFixedLatencyDevice:
    def test_constant_cost(self):
        device = FixedLatencyDevice(7)
        assert device.access(make_request()) == 7
        assert device.access_cost(make_request()) == 7

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedLatencyDevice(0)
