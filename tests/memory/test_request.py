"""Unit tests for memory transactions."""

import pytest

from repro.errors import ProtocolError
from repro.memory.request import MemoryRequest, RequestKind, reset_request_ids

from tests.conftest import make_request


class TestConstruction:
    def test_ids_are_unique_and_increasing(self):
        reset_request_ids()
        a = make_request()
        b = make_request()
        assert b.rid == a.rid + 1

    def test_reset_request_ids(self):
        reset_request_ids()
        first = make_request()
        assert first.rid == 0

    def test_deadline_must_follow_release(self):
        with pytest.raises(ProtocolError):
            MemoryRequest(client_id=0, release_cycle=10, absolute_deadline=10)

    def test_default_kind_is_read(self):
        assert make_request().kind is RequestKind.READ


class TestPriority:
    def test_earlier_deadline_wins(self):
        urgent = make_request(release=0, deadline=50)
        relaxed = make_request(release=0, deadline=100)
        assert urgent.higher_priority_than(relaxed)
        assert not relaxed.higher_priority_than(urgent)

    def test_ties_broken_by_id(self):
        reset_request_ids()
        first = make_request(deadline=100)
        second = make_request(deadline=100)
        assert first.higher_priority_than(second)

    def test_priority_key_orders_like_comparison(self):
        a = make_request(deadline=30)
        b = make_request(deadline=60)
        assert (a.priority_key < b.priority_key) == a.higher_priority_than(b)


class TestLifecycle:
    def test_blocking_accumulates(self):
        request = make_request()
        request.charge_blocking()
        request.charge_blocking(3)
        assert request.blocking_cycles == 4

    def test_completion(self):
        request = make_request(release=5, deadline=100)
        request.mark_complete(42)
        assert request.completed
        assert request.response_time == 37
        assert request.met_deadline

    def test_late_completion_misses(self):
        request = make_request(release=0, deadline=10)
        request.mark_complete(11)
        assert not request.met_deadline

    def test_boundary_completion_meets(self):
        request = make_request(release=0, deadline=10)
        request.mark_complete(10)
        assert request.met_deadline

    def test_double_completion_rejected(self):
        request = make_request()
        request.mark_complete(5)
        with pytest.raises(ProtocolError):
            request.mark_complete(6)

    def test_response_time_before_completion_rejected(self):
        with pytest.raises(ProtocolError):
            make_request().response_time

    def test_incomplete_request_never_meets_deadline(self):
        assert not make_request().met_deadline
