"""Unit tests for the memory controller."""

import pytest

from repro.errors import CapacityError, ConfigurationError, SimulationError
from repro.memory.controller import ArbitrationPolicy, MemoryController
from repro.memory.dram import DramDevice, FixedLatencyDevice

from tests.conftest import make_request


def run_cycles(controller: MemoryController, start: int, count: int) -> int:
    for cycle in range(start, start + count):
        controller.tick(cycle)
    return start + count


class TestServiceBasics:
    def test_services_one_request(self):
        done = []
        controller = MemoryController(
            FixedLatencyDevice(3), on_response=lambda r, c: done.append((r, c))
        )
        request = make_request()
        controller.enqueue(request, 0)
        run_cycles(controller, 0, 5)
        assert len(done) == 1
        completed, at = done[0]
        assert completed is request
        assert at == 3  # enqueued at 0, 3 cycles of service
        assert request.service_start_cycle == 0
        assert request.service_end_cycle == 3

    def test_services_back_to_back(self):
        done = []
        controller = MemoryController(
            FixedLatencyDevice(2), on_response=lambda r, c: done.append(c)
        )
        controller.enqueue(make_request(), 0)
        controller.enqueue(make_request(), 0)
        run_cycles(controller, 0, 6)
        assert done == [2, 4]

    def test_unit_service_rate(self):
        """With cost 1 the controller sustains one request per cycle —
        the transaction-slot time base of the experiments."""
        done = []
        controller = MemoryController(
            FixedLatencyDevice(1),
            queue_capacity=16,
            on_response=lambda r, c: done.append(c),
        )
        for i in range(10):
            controller.enqueue(make_request(), 0)
        run_cycles(controller, 0, 10)
        assert done == list(range(1, 11))

    def test_idle_controller_does_nothing(self):
        controller = MemoryController(FixedLatencyDevice(1))
        run_cycles(controller, 0, 5)
        assert controller.serviced == 0
        assert controller.busy_cycles == 0


class TestBackpressure:
    def test_capacity_respected(self):
        controller = MemoryController(FixedLatencyDevice(5), queue_capacity=2)
        controller.enqueue(make_request(), 0)
        controller.enqueue(make_request(), 0)
        assert not controller.can_accept()
        with pytest.raises(CapacityError):
            controller.enqueue(make_request(), 0)

    def test_capacity_frees_as_serviced(self):
        controller = MemoryController(FixedLatencyDevice(1), queue_capacity=1)
        controller.enqueue(make_request(), 0)
        controller.tick(0)  # pulled into service
        assert controller.can_accept()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryController(FixedLatencyDevice(1), queue_capacity=0)


class TestBlockingAccounting:
    def test_queued_urgent_request_charged(self):
        controller = MemoryController(FixedLatencyDevice(4), queue_capacity=4)
        relaxed = make_request(deadline=1000)
        urgent = make_request(deadline=50)
        controller.enqueue(relaxed, 0)
        controller.enqueue(urgent, 0)
        run_cycles(controller, 0, 4)  # relaxed in service for 4 cycles
        assert urgent.blocking_cycles == 4

    def test_lower_priority_waiter_not_charged(self):
        controller = MemoryController(FixedLatencyDevice(4), queue_capacity=4)
        urgent = make_request(deadline=50)
        relaxed = make_request(deadline=1000)
        controller.enqueue(urgent, 0)
        controller.enqueue(relaxed, 0)
        run_cycles(controller, 0, 4)
        assert relaxed.blocking_cycles == 0


class TestFrFcfs:
    def test_row_hit_first(self):
        dram = DramDevice(n_banks=8, row_size_bytes=2048)
        controller = MemoryController(
            dram, queue_capacity=8, policy=ArbitrationPolicy.FR_FCFS
        )
        opener = make_request(address=0)
        controller.enqueue(opener, 0)
        controller.tick(0)  # opener starts: opens row 0 of bank 0
        conflict = make_request(address=8 * 2048)  # same bank, other row
        hit = make_request(address=64)  # open row
        controller.enqueue(conflict, 1)
        controller.enqueue(hit, 1)
        # run until opener finishes and next is picked
        for cycle in range(1, 2 + dram.timing.row_miss_cycles):
            controller.tick(cycle)
        assert hit.service_start_cycle >= 0
        assert conflict.service_start_cycle == -1

    def test_fcfs_ignores_row_state(self):
        dram = DramDevice()
        controller = MemoryController(
            dram, queue_capacity=8, policy=ArbitrationPolicy.FCFS
        )
        opener = make_request(address=0)
        controller.enqueue(opener, 0)
        controller.tick(0)
        conflict = make_request(address=8 * 2048)
        hit = make_request(address=64)
        controller.enqueue(conflict, 1)
        controller.enqueue(hit, 1)
        for cycle in range(1, 2 + dram.timing.row_miss_cycles):
            controller.tick(cycle)
        assert conflict.service_start_cycle >= 0  # arrival order preserved
        assert hit.service_start_cycle == -1


class TestSkipGuard:
    """on_cycles_skipped must never swallow the completion tick."""

    def test_valid_skip_replays_countdown(self):
        done = []
        controller = MemoryController(
            FixedLatencyDevice(5), on_response=lambda r, c: done.append(c)
        )
        controller.enqueue(make_request(), 0)
        controller.tick(0)  # service starts, 4 cycles remain after this
        # next_activity_cycle(1) pins the completion tick at cycle 4
        assert controller.next_activity_cycle(1) == 4
        controller.on_cycles_skipped(1, 3)  # leap cycles 1..3
        assert controller.busy_cycles == 1 + 3
        controller.tick(4)  # completion tick executes
        assert done == [5]

    def test_over_skip_raises_simulation_error(self):
        controller = MemoryController(FixedLatencyDevice(5))
        controller.enqueue(make_request(), 0)
        controller.tick(0)  # 4 cycles of service remain
        with pytest.raises(SimulationError):
            controller.on_cycles_skipped(1, 4)  # would swallow completion

    def test_over_skip_clamps_busy_cycles(self):
        controller = MemoryController(FixedLatencyDevice(5))
        controller.enqueue(make_request(), 0)
        controller.tick(0)  # busy_cycles == 1, 4 remain
        with pytest.raises(SimulationError):
            controller.on_cycles_skipped(1, 100)
        # only the 3 legal idle replays were counted, not the over-skip
        assert controller.busy_cycles == 1 + 3

    def test_skip_without_service_is_noop(self):
        controller = MemoryController(FixedLatencyDevice(5))
        controller.on_cycles_skipped(0, 1000)
        assert controller.busy_cycles == 0


class TestReorderCap:
    """FR-FCFS with a blacklisting-style bound on head bypasses."""

    @staticmethod
    def _controller(cap):
        dram = DramDevice(n_banks=8, row_size_bytes=2048)
        return dram, MemoryController(
            dram,
            queue_capacity=16,
            policy=ArbitrationPolicy.FR_FCFS,
            reorder_cap=cap,
        )

    @staticmethod
    def _starve(controller, dram, streak):
        """Open row 0, queue one row-miss, then feed ``streak`` row hits
        arriving behind it; run until the queue drains."""
        opener = make_request(address=0)
        controller.enqueue(opener, 0)
        controller.tick(0)  # opens row 0 of bank 0
        miss = make_request(address=8 * 2048)  # same bank, other row
        controller.enqueue(miss, 1)
        hits = [make_request(address=64 * (i + 1)) for i in range(streak)]
        for hit in hits:
            controller.enqueue(hit, 1)
        cycle = 1
        while controller.in_flight:
            controller.tick(cycle)
            cycle += 1
            assert cycle < 10_000
        return miss, hits

    def test_uncapped_reorders_every_hit_first(self):
        dram, controller = self._controller(cap=None)
        miss, hits = self._starve(controller, dram, streak=6)
        assert all(h.service_start_cycle < miss.service_start_cycle for h in hits)
        assert controller.reorder_count == 6

    def test_cap_bounds_row_miss_waiting(self):
        dram, controller = self._controller(cap=3)
        miss, hits = self._starve(controller, dram, streak=6)
        # exactly cap hits bypass the miss, then FCFS serves it
        before = [h for h in hits if h.service_start_cycle < miss.service_start_cycle]
        assert len(before) == 3
        assert controller.reorder_count == 3

    def test_capped_waits_shorter_than_uncapped(self):
        def miss_start(cap):
            dram, controller = self._controller(cap)
            miss, _ = self._starve(controller, dram, streak=8)
            return miss.service_start_cycle

        assert miss_start(2) < miss_start(None)

    def test_cap_zero_degenerates_to_fcfs(self):
        dram, controller = self._controller(cap=0)
        miss, hits = self._starve(controller, dram, streak=4)
        assert all(miss.service_start_cycle < h.service_start_cycle for h in hits)
        assert controller.reorder_count == 0

    def test_cap_resets_when_head_served(self):
        # After the capped head is served the bypass budget resets and
        # reordering resumes for the next head.  The misses target bank
        # 0 while the hits target bank 1, so serving a miss does not
        # close the hits' open row.
        dram, controller = self._controller(cap=2)
        controller.enqueue(make_request(address=0), 0)  # opens bank 0 row 0
        controller.tick(0)
        while controller.in_flight:
            controller.tick(1)
        controller.enqueue(make_request(address=2048), 1)  # opens bank 1 row 0
        cycle = 1
        while controller.in_flight:
            controller.tick(cycle)
            cycle += 1
        base = 2048 * 8
        misses = [make_request(address=base * (1 + i)) for i in range(2)]
        for m in misses:
            controller.enqueue(m, cycle)
        hits = [make_request(address=2048 + 64 * (i + 1)) for i in range(4)]
        for h in hits:
            controller.enqueue(h, cycle)
        while controller.in_flight:
            controller.tick(cycle)
            cycle += 1
            assert cycle < 50_000
        # each miss allowed exactly 2 bypasses: 4 reorders total
        assert controller.reorder_count == 4

    def test_negative_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryController(FixedLatencyDevice(1), reorder_cap=-1)

    def test_default_keeps_current_behaviour(self):
        assert MemoryController(FixedLatencyDevice(1)).reorder_cap is None


class TestRefresh:
    def test_refresh_stalls_service(self):
        """During the tRFC window nothing is serviced; requests resume
        where they paused afterwards."""
        done = []
        controller = MemoryController(
            FixedLatencyDevice(1),
            queue_capacity=16,
            on_response=lambda r, c: done.append(c),
            refresh_interval=10,
            refresh_duration=3,
        )
        for _ in range(12):
            controller.enqueue(make_request(), 0)
        run_cycles(controller, 0, 20)
        # cycles 10, 11, 12 are refresh stalls: at most 17 completions
        assert controller.refresh_stall_cycles == 3
        assert len(done) == 12
        assert all(c <= 10 or c > 13 for c in done)

    def test_refresh_adds_jitter_to_latency(self):
        def worst_response(refresh_interval):
            controller = MemoryController(
                FixedLatencyDevice(2),
                queue_capacity=8,
                refresh_interval=refresh_interval,
                refresh_duration=4 if refresh_interval else 0,
            )
            responses = []
            controller.on_response = lambda r, c: responses.append(
                c - r.arrive_controller_cycle
            )
            for cycle in range(60):
                if cycle % 6 == 0 and controller.can_accept():
                    controller.enqueue(make_request(release=cycle, deadline=cycle + 500), cycle)
                controller.tick(cycle)
            return max(responses)

        assert worst_response(10) > worst_response(0)

    def test_throughput_reduced_by_refresh_share(self):
        def throughput(refresh_interval, refresh_duration):
            controller = MemoryController(
                FixedLatencyDevice(1),
                queue_capacity=4,
                refresh_interval=refresh_interval,
                refresh_duration=refresh_duration,
            )
            for cycle in range(200):
                if controller.can_accept():
                    controller.enqueue(
                        make_request(release=cycle, deadline=cycle + 10_000),
                        cycle,
                    )
                controller.tick(cycle)
            return controller.serviced

        full = throughput(0, 0)
        refreshed = throughput(20, 4)  # 20% of time refreshing
        assert refreshed <= 0.85 * full

    def test_refresh_validation(self):
        with pytest.raises(ConfigurationError):
            MemoryController(FixedLatencyDevice(1), refresh_interval=-1)
        with pytest.raises(ConfigurationError):
            MemoryController(
                FixedLatencyDevice(1), refresh_interval=5, refresh_duration=5
            )


class TestIntrospection:
    def test_in_flight_counts_queue_and_service(self):
        controller = MemoryController(FixedLatencyDevice(5), queue_capacity=4)
        controller.enqueue(make_request(), 0)
        controller.enqueue(make_request(), 0)
        controller.tick(0)
        assert controller.busy
        assert controller.queue_depth == 1
        assert controller.in_flight == 2

    def test_busy_cycles_counted(self):
        controller = MemoryController(FixedLatencyDevice(3))
        controller.enqueue(make_request(), 0)
        run_cycles(controller, 0, 10)
        assert controller.busy_cycles == 3
