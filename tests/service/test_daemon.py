"""End-to-end tests of the admission daemon over real sockets: every
endpoint, error mapping, verdict parity with a direct in-process
session, and a small concurrent load smoke."""

import json
import threading

import pytest

from repro.analysis import SystemModel
from repro.service import (
    AdmissionService,
    ServiceClient,
    ServiceError,
    start_background,
)
from repro.tasks.task import PeriodicTask

SMALL = PeriodicTask(period=1000, wcet=1, name="small")
HEAVY = PeriodicTask(period=64, wcet=60, name="heavy")


@pytest.fixture(scope="module")
def model():
    return SystemModel.from_seed(16, utilization=0.3, seed=7)


@pytest.fixture()
def service(model):
    handle = start_background(model)
    client = ServiceClient(handle.host, handle.port)
    try:
        yield handle, client
    finally:
        client.close()
        handle.stop()
        handle.service.session.reset()
        handle.service.session._ctx.cache.reset_stats()


class TestEndpoints:
    def test_healthz(self, service):
        _, client = service
        assert client.healthz() == {"status": "ok"}

    def test_model_summary(self, service):
        _, client = service
        summary = client.model()
        assert summary["n_clients"] == 16
        assert summary["baseline_schedulable"] is True

    def test_probe_admitted_returns_interface(self, service):
        _, client = service
        response = client.admission(3, SMALL)
        assert response["admitted"] is True
        assert response["committed"] is False
        assert response["interface"]["period"] >= 1

    def test_probe_rejected_returns_witness(self, service):
        _, client = service
        response = client.admission(3, HEAVY)
        assert response["admitted"] is False
        assert "over-utilized" in response["witness"]["reason"]

    def test_commit_then_reset(self, service, model):
        handle, client = service
        response = client.admission(3, SMALL, commit=True)
        assert response["committed"] is True
        session = handle.service.session
        assert len(session.tasksets[3]) == len(model.client_tasksets[3]) + 1
        assert client.reset() == {"status": "reset"}
        assert session.tasksets == dict(model.client_tasksets)

    def test_metrics_counters_and_latency(self, service):
        _, client = service
        client.admission(3, SMALL)
        client.admission(3, HEAVY)
        payload = client.metrics()
        metrics = payload["metrics"]
        assert metrics["service/admitted"] >= 1
        assert metrics["service/rejected"] >= 1
        assert metrics["service/errors"] == 0
        assert metrics["service/latency_ms_count"] >= 2
        assert metrics["service/latency_ms_p50"] >= 0
        assert payload["cache"]["hit_rate"] > 0

    def test_evict_drops_client_and_commits(self, service, model):
        handle, client = service
        response = client.evict(3)
        assert response["committed"] is True
        assert response["admitted"] is True
        session = handle.service.session
        assert 3 not in session.tasksets
        # re-admission of the original workload is accepted again
        readmit = client.admission(
            3, list(model.client_tasksets[3]), commit=True
        )
        assert readmit["committed"] is True

    def test_evict_requires_valid_client(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.evict(99)
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/evict", {})
        assert err.value.status == 400

    def test_metrics_exposes_tail_latency_block(self, service):
        _, client = service
        client.admission(3, SMALL)
        client.evict(5)
        payload = client.metrics()
        block = payload["latency_ms"]
        assert set(block) == {"p50", "p95", "p99", "max"}
        assert block["max"] >= block["p99"] >= block["p50"] >= 0.0
        # evicts are timed through the same histogram as admissions
        assert payload["metrics"]["service/latency_ms_count"] >= 2

    def test_verdicts_match_inprocess_session(self, service, model):
        _, client = service
        session = model.session()
        for client_id in (0, 5, 11):
            for task in (SMALL, HEAVY):
                remote = client.admission(client_id, task)
                local = session.probe(client_id, task)
                assert remote["admitted"] == local.admitted
                if local.admitted:
                    assert remote["interface"]["period"] == (
                        local.interface.period
                    )
                    assert remote["interface"]["budget"] == (
                        local.interface.budget
                    )


class TestErrorMapping:
    def test_unknown_path_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_is_405(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/healthz")
        assert err.value.status == 405

    def test_invalid_json_is_400(self, service):
        handle, client = service
        conn = client._conn
        conn.request(
            "POST",
            "/admission",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert "JSON" in body["error"]

    def test_bad_payload_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client._request(
                "POST", "/admission", {"client_id": 1, "tasks": []}
            )
        assert err.value.status == 400

    def test_out_of_range_client_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.admission(99, SMALL)
        assert err.value.status == 400

    def test_errors_do_not_kill_the_connection(self, service):
        _, client = service
        with pytest.raises(ServiceError):
            client._request("GET", "/nope")
        assert client.healthz() == {"status": "ok"}


class TestLoadSmoke:
    def test_concurrent_probes_no_errors_and_cache_hits(self, model):
        """A few hundred keep-alive requests from several threads: no
        5xx, verdicts stable, non-zero cache hit rate."""
        handle = start_background(model)
        per_thread, n_threads = 60, 4
        failures: list[str] = []

        def worker(tid: int) -> None:
            with ServiceClient(handle.host, handle.port) as client:
                for i in range(per_thread):
                    task = SMALL if i % 3 else HEAVY
                    expected = task is SMALL
                    try:
                        response = client.admission((tid + i) % 16, task)
                    except ServiceError as exc:  # any 4xx/5xx is a failure
                        failures.append(str(exc))
                        continue
                    if response["admitted"] != expected:
                        failures.append(f"verdict flip at {tid}/{i}")

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(n_threads)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(handle.host, handle.port) as client:
                payload = client.metrics()
        finally:
            handle.stop()
        assert failures == []
        metrics = payload["metrics"]
        assert metrics["service/errors"] == 0
        assert (
            metrics["service/admitted"] + metrics["service/rejected"]
            == per_thread * n_threads
        )
        assert payload["cache"]["hit_rate"] > 0.5


class TestServiceObject:
    def test_max_workers_validated(self, model):
        with pytest.raises(Exception):
            AdmissionService(model, max_workers=0)

    def test_handle_reports_url(self, model):
        handle = start_background(model)
        try:
            assert handle.url.startswith("http://127.0.0.1:")
            assert handle.port is not None and handle.port > 0
        finally:
            handle.stop()
