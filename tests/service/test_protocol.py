"""Tests for the service wire protocol: request validation and the
decision/interface payload builders."""

import pytest

from repro.analysis import SystemModel
from repro.analysis.prm import ResourceInterface
from repro.service.protocol import (
    MAX_TASKS_PER_REQUEST,
    RequestError,
    decision_payload,
    interface_payload,
    parse_admission_request,
    parse_tasks,
    task_payload,
)
from repro.tasks.task import PeriodicTask


class TestParseTasks:
    def test_round_trip(self):
        task = PeriodicTask(period=1000, wcet=2, name="cam")
        parsed = parse_tasks([task_payload(task)])
        assert len(parsed) == 1
        only = next(iter(parsed))
        assert (only.period, only.wcet, only.name) == (1000, 2, "cam")

    def test_name_optional(self):
        parsed = parse_tasks([{"period": 10, "wcet": 1}])
        assert next(iter(parsed)).name == ""

    @pytest.mark.parametrize(
        "payload",
        [
            "nope",
            [],
            [42],
            [{"period": 10}],
            [{"wcet": 1}],
            [{"period": "10", "wcet": 1}],
            [{"period": 10, "wcet": True}],
            [{"period": 10, "wcet": 1, "extra": 1}],
            [{"period": 10, "wcet": 1, "name": 5}],
            [{"period": 0, "wcet": 1}],
            [{"period": 10, "wcet": -1}],
            [{"period": 10, "wcet": 11}],  # wcet > period
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(RequestError):
            parse_tasks(payload)

    def test_oversized_list_rejected(self):
        payload = [{"period": 100, "wcet": 1}] * (MAX_TASKS_PER_REQUEST + 1)
        with pytest.raises(RequestError):
            parse_tasks(payload)


class TestParseAdmissionRequest:
    def test_defaults_to_probe(self):
        client_id, tasks, commit = parse_admission_request(
            {"client_id": 3, "tasks": [{"period": 10, "wcet": 1}]}
        )
        assert client_id == 3
        assert len(tasks) == 1
        assert commit is False

    def test_commit_flag(self):
        _, _, commit = parse_admission_request(
            {
                "client_id": 0,
                "tasks": [{"period": 10, "wcet": 1}],
                "commit": True,
            }
        )
        assert commit is True

    @pytest.mark.parametrize(
        "body",
        [
            [],
            {"tasks": [{"period": 10, "wcet": 1}]},
            {"client_id": "3", "tasks": [{"period": 10, "wcet": 1}]},
            {"client_id": True, "tasks": [{"period": 10, "wcet": 1}]},
            {"client_id": 3, "tasks": [{"period": 10, "wcet": 1}], "x": 1},
            {"client_id": 3, "tasks": [{"period": 10, "wcet": 1}], "commit": 1},
        ],
    )
    def test_malformed_requests_rejected(self, body):
        with pytest.raises(RequestError):
            parse_admission_request(body)


class TestPayloads:
    def test_interface_payload(self):
        payload = interface_payload(ResourceInterface(36, 2))
        assert payload == {"period": 36, "budget": 2, "bandwidth": 2 / 36}

    def test_admitted_decision_payload(self):
        model = SystemModel.from_seed(16, utilization=0.3, seed=7)
        decision = model.session().probe(
            3, PeriodicTask(period=1000, wcet=1)
        )
        payload = decision_payload(decision)
        assert payload["admitted"] is True
        assert payload["committed"] is False
        assert payload["interface"]["budget"] >= 1
        assert payload["path"][0]["port"] == 3 % 4
        assert "witness" not in payload

    def test_rejected_decision_payload(self):
        model = SystemModel.from_seed(16, utilization=0.3, seed=7)
        decision = model.session().probe(
            3, PeriodicTask(period=64, wcet=60)
        )
        payload = decision_payload(decision)
        assert payload["admitted"] is False
        assert "interface" not in payload
        witness = payload["witness"]
        assert witness["client_id"] == 3
        assert witness["reason"]
        assert witness["root_bandwidth"] == payload["root_bandwidth"]
