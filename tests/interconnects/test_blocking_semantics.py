"""Cross-design tests of the blocking-latency metric's semantics.

Fig. 6's metric — time blocked by lower-priority requests — must mean
the same thing on every interconnect for the comparison to be fair.
These scenarios pin the accounting rules:

* a deadline-aware arbiter given conflict-free traffic charges nothing;
* a heuristic arbiter forwarding against deadline order charges the
  inverted waiter, every cycle it waits;
* waiting caused by one's own reservation (budget, token, TDM credit)
  is shaping, never blocking.
"""

from repro.analysis.prm import ResourceInterface
from repro.core.interconnect import BlueScaleInterconnect
from repro.interconnects.axi_icrt import AxiIcRtInterconnect
from repro.interconnects.bluetree import BlueTreeInterconnect
from repro.memory.controller import MemoryController
from repro.memory.dram import FixedLatencyDevice

from tests.conftest import make_request


def wired(interconnect):
    controller = MemoryController(FixedLatencyDevice(1), queue_capacity=8)
    interconnect.attach_controller(controller)
    return interconnect, controller


def drive(interconnect, controller, cycles, start=0):
    delivered = []
    for cycle in range(start, start + cycles):
        interconnect.tick_request_path(cycle)
        controller.tick(cycle)
        delivered.extend(interconnect.tick_response_path(cycle))
    return delivered


class TestEdfDesignsChargeNothingOnOrderedTraffic:
    def test_bluescale_sequential_deadlines(self):
        interconnect, controller = wired(BlueScaleInterconnect(16))
        requests = [
            make_request(client_id=c, deadline=100 + 10 * c) for c in range(4)
        ]
        for request in requests:
            interconnect.try_inject(request, 0)
        drive(interconnect, controller, 30)
        # EDF serves exactly in deadline order: no inversions anywhere
        assert all(r.blocking_cycles == 0 for r in requests)

    def test_axi_sequential_deadlines(self):
        interconnect, controller = wired(AxiIcRtInterconnect(4))
        requests = [
            make_request(client_id=c, deadline=100 + 10 * c) for c in range(4)
        ]
        for request in requests:
            interconnect.try_inject(request, 0)
        drive(interconnect, controller, 30)
        assert all(r.blocking_cycles == 0 for r in requests)


class TestHeuristicArbitrationCharges:
    def test_bluetree_left_priority_inversion(self):
        interconnect, controller = wired(BlueTreeInterconnect(4))
        late = make_request(client_id=0, deadline=900)  # left path
        urgent = make_request(client_id=1, deadline=50)  # right path
        interconnect.try_inject(late, 0)
        interconnect.try_inject(urgent, 0)
        drive(interconnect, controller, 20)
        assert urgent.blocking_cycles > 0
        assert late.blocking_cycles == 0


class TestShapingIsNotBlocking:
    def test_budget_exhausted_port_not_charged(self):
        """A BlueScale port waiting on its own replenishment accrues no
        blocking even while later-deadline traffic flows past."""
        interconnect, controller = wired(
            BlueScaleInterconnect(16, buffer_capacity=4)
        )
        # Give client 0's leaf port a tiny budget; leave others generous.
        leaf = interconnect.elements[(1, 0)]
        leaf.program_port(0, ResourceInterface(50, 1), now=0)
        for port in range(1, 4):
            leaf.program_port(port, ResourceInterface(2, 1), now=0)
        first = make_request(client_id=0, deadline=60)
        second = make_request(client_id=0, deadline=70)
        interconnect.try_inject(first, 0)
        interconnect.try_inject(second, 0)
        # later-deadline traffic from a sibling client flows meanwhile
        for i in range(6):
            interconnect.try_inject(
                make_request(client_id=1, deadline=500 + i), 0
            )
        drive(interconnect, controller, 2)
        # any charge so far happened while port 0 still had budget
        # (sibling servers with shorter periods may win a cycle first)
        early_charge = second.blocking_cycles
        drive(interconnect, controller, 38, start=2)
        # after port 0's single budget unit is spent on 'first', the
        # long wait for replenishment accrues NO further blocking even
        # though later-deadline sibling traffic keeps flowing past
        assert second.blocking_cycles == early_charge

    def test_axi_token_throttled_client_not_charged(self):
        interconnect, controller = wired(AxiIcRtInterconnect(4))
        interconnect.configure_regulation(budgets=[1, 8, 8, 8], window=50)
        burner = make_request(client_id=0, deadline=400)
        throttled = make_request(client_id=0, deadline=100)
        relaxed = make_request(client_id=1, deadline=900)
        interconnect.try_inject(burner, 0)
        interconnect.try_inject(throttled, 0)
        interconnect.try_inject(relaxed, 0)
        drive(interconnect, controller, 10)
        assert throttled.blocking_cycles == 0


class TestRandomAccessBuffersReorderSameClientTraffic:
    def test_bluescale_bypasses_fifo_head_of_line(self):
        """The paper's Sec. 4.1 point, measured: a later-injected urgent
        request overtakes its own client's earlier relaxed request in a
        random-access buffer, but is stuck behind it in AXI-IC^RT's
        ingress FIFO — where it accrues blocking."""

        def run(make_interconnect):
            interconnect = make_interconnect()
            controller = MemoryController(
                FixedLatencyDevice(6), queue_capacity=8
            )
            interconnect.attach_controller(controller)
            late = make_request(client_id=0, deadline=900)
            urgent = make_request(client_id=0, deadline=100)
            interconnect.try_inject(late, 0)
            interconnect.try_inject(urgent, 0)
            for cycle in range(40):
                interconnect.tick_request_path(cycle)
                controller.tick(cycle)
                interconnect.tick_response_path(cycle)
            return urgent

        reordered = run(lambda: BlueScaleInterconnect(16))
        fifo_bound = run(lambda: AxiIcRtInterconnect(4))
        assert reordered.blocking_cycles == 0  # EDF fetch overtook
        assert fifo_bound.blocking_cycles > 0  # stuck behind FIFO head
        assert reordered.complete_cycle < fifo_bound.complete_cycle
