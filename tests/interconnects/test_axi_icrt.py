"""Unit tests for the centralized AXI-IC^RT baseline."""

import pytest

from repro.errors import ConfigurationError
from repro.interconnects.axi_icrt import AxiIcRtInterconnect
from repro.memory.controller import MemoryController
from repro.memory.dram import FixedLatencyDevice

from tests.conftest import make_request


def wired(n_clients=4, **kwargs):
    interconnect = AxiIcRtInterconnect(n_clients, **kwargs)
    controller = MemoryController(FixedLatencyDevice(1), queue_capacity=8)
    interconnect.attach_controller(controller)
    return interconnect, controller


def drive(interconnect, controller, cycles):
    delivered = []
    for cycle in range(cycles):
        interconnect.tick_request_path(cycle)
        controller.tick(cycle)
        delivered.extend(interconnect.tick_response_path(cycle))
    return delivered


class TestGlobalEdfArbitration:
    def test_earliest_deadline_served_first(self):
        interconnect, controller = wired()
        relaxed = make_request(client_id=0, deadline=900)
        urgent = make_request(client_id=3, deadline=100)
        interconnect.try_inject(relaxed, 0)
        interconnect.try_inject(urgent, 0)
        delivered = drive(interconnect, controller, 12)
        assert delivered.index(urgent) < delivered.index(relaxed)

    def test_pipeline_latency_applied(self):
        interconnect, controller = wired(pipeline_latency=3)
        request = make_request(client_id=0, deadline=1000)
        interconnect.try_inject(request, 0)
        drive(interconnect, controller, 12)
        # arbitration at cycle 0, pipeline exit at 3, service 1, response 3
        assert request.arrive_controller_cycle >= 3

    def test_fifo_backpressure(self):
        interconnect, _ = wired(fifo_capacity=2)
        assert interconnect.try_inject(make_request(client_id=1), 0)
        assert interconnect.try_inject(make_request(client_id=1), 0)
        assert not interconnect.try_inject(make_request(client_id=1), 0)

    def test_all_requests_complete(self):
        interconnect, controller = wired()
        requests = [make_request(client_id=c % 4, deadline=1000) for c in range(12)]
        injected = 0
        delivered = []
        for cycle in range(60):
            while injected < len(requests) and interconnect.try_inject(
                requests[injected], cycle
            ):
                injected += 1
            interconnect.tick_request_path(cycle)
            controller.tick(cycle)
            delivered.extend(interconnect.tick_response_path(cycle))
        assert len(delivered) == 12
        assert interconnect.requests_in_flight() == 0


class TestRegulation:
    def test_exhausted_client_waits_for_window(self):
        interconnect, controller = wired()
        interconnect.configure_regulation(budgets=[1, 4, 4, 4], window=10)
        first = make_request(client_id=0, deadline=500)
        second = make_request(client_id=0, deadline=501)
        interconnect.try_inject(first, 0)
        interconnect.try_inject(second, 0)
        drive(interconnect, controller, 30)
        # one token per 10-cycle window: second waits for replenishment
        assert first.arrive_controller_cycle < 10
        assert second.arrive_controller_cycle >= 10

    def test_regulated_inversion_charged_to_eligible_waiter(self):
        interconnect, controller = wired()
        interconnect.configure_regulation(budgets=[1, 4, 4, 4], window=100)
        burner = make_request(client_id=0, deadline=400)
        urgent = make_request(client_id=0, deadline=100)  # same client, later
        relaxed = make_request(client_id=1, deadline=900)
        interconnect.try_inject(burner, 0)  # consumes client 0's only token
        interconnect.try_inject(urgent, 0)
        interconnect.try_inject(relaxed, 0)
        drive(interconnect, controller, 4)
        # relaxed forwards while the ineligible urgent waits: urgent is NOT
        # charged (shaped by its own regulation), per the metric definition
        assert urgent.blocking_cycles == 0

    def test_budget_validation(self):
        interconnect, _ = wired()
        with pytest.raises(ConfigurationError):
            interconnect.configure_regulation([1, 2, 3], window=10)  # wrong n
        with pytest.raises(ConfigurationError):
            interconnect.configure_regulation([1, 2, 3, 11], window=10)  # > window
        with pytest.raises(ConfigurationError):
            interconnect.configure_regulation([1, 2, 3, -1], window=10)
        with pytest.raises(ConfigurationError):
            interconnect.configure_regulation([1, 1, 1, 1], window=0)

    def test_budgets_from_utilizations(self):
        budgets = AxiIcRtInterconnect.budgets_from_utilizations(
            [0.5, 0.001, 0.9], window=100, margin=1.2
        )
        assert budgets[0] == 60
        assert budgets[1] == 1  # floor of one slot
        assert budgets[2] == 100  # capped at the window


class TestArbitrationInterval:
    def test_slow_arbiter_halves_decision_rate(self):
        fast, fast_ctrl = wired()
        slow, slow_ctrl = wired(arbitration_interval=2)
        for interconnect in (fast, slow):
            for i in range(6):
                interconnect.try_inject(
                    make_request(client_id=i % 4, deadline=1000), 0
                )
        fast_done = drive(fast, fast_ctrl, 10)
        slow_done = drive(slow, slow_ctrl, 10)
        assert len(fast_done) > len(slow_done)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AxiIcRtInterconnect(4, arbitration_interval=0)
        with pytest.raises(ConfigurationError):
            AxiIcRtInterconnect(4, pipeline_latency=0)
        with pytest.raises(ConfigurationError):
            AxiIcRtInterconnect(4, fifo_capacity=0)
