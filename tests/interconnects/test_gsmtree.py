"""Unit tests for GSMTree (TDM and FBSP reservations)."""

import pytest

from repro.errors import ConfigurationError
from repro.interconnects.gsmtree import (
    GsmTreeInterconnect,
    build_fbsp_frame,
    build_tdm_frame,
    gsmtree_fbsp,
    gsmtree_tdm,
)
from repro.memory.controller import MemoryController
from repro.memory.dram import FixedLatencyDevice

from tests.conftest import make_request


def wired(interconnect):
    controller = MemoryController(FixedLatencyDevice(1), queue_capacity=8)
    interconnect.attach_controller(controller)
    return interconnect, controller


def drive(interconnect, controller, cycles, start=0):
    delivered = []
    for cycle in range(start, start + cycles):
        interconnect.tick_request_path(cycle)
        controller.tick(cycle)
        delivered.extend(interconnect.tick_response_path(cycle))
    return delivered


class TestFrames:
    def test_tdm_frame_round_robin(self):
        assert build_tdm_frame(4) == [0, 1, 2, 3]

    def test_tdm_rejects_zero_clients(self):
        with pytest.raises(ConfigurationError):
            build_tdm_frame(0)

    def test_fbsp_slots_proportional(self):
        frame = build_fbsp_frame([0.6, 0.2, 0.2], min_frame=10)
        counts = [frame.count(c) for c in range(3)]
        assert counts[0] > counts[1]
        assert counts[0] == pytest.approx(6, abs=1)
        assert len(frame) == 10

    def test_fbsp_every_client_gets_a_slot(self):
        frame = build_fbsp_frame([0.99, 0.005, 0.005], min_frame=8)
        assert all(frame.count(c) >= 1 for c in range(3))

    def test_fbsp_interleaves_slots(self):
        frame = build_fbsp_frame([0.5, 0.5], min_frame=4)
        assert frame == [0, 1, 0, 1]

    def test_fbsp_zero_weights_degrade_to_tdm(self):
        frame = build_fbsp_frame([0.0, 0.0, 0.0])
        assert sorted(set(frame)) == [0, 1, 2]

    def test_fbsp_rejects_negative_weight(self):
        with pytest.raises(ConfigurationError):
            build_fbsp_frame([0.5, -0.1])

    def test_fbsp_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            build_fbsp_frame([])


class TestFbspFrameProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=12
        ),
        frame_scale=st.integers(1, 6),
    )
    @settings(max_examples=60)
    def test_frame_well_formed(self, weights, frame_scale):
        frame = build_fbsp_frame(weights, min_frame=frame_scale * len(weights))
        # exactly the requested length (>= one slot per client)
        assert len(frame) >= len(weights)
        # every client owns at least one slot
        assert set(frame) == set(range(len(weights)))

    @given(
        heavy=st.floats(min_value=0.5, max_value=1.0),
        light=st.floats(min_value=0.001, max_value=0.05),
    )
    @settings(max_examples=40)
    def test_heavier_client_never_fewer_slots(self, heavy, light):
        frame = build_fbsp_frame([heavy, light, light, light], min_frame=16)
        assert frame.count(0) >= frame.count(1)


class TestTdmAdmission:
    def test_injection_gated_by_credits(self):
        """A client may inject one request per owned slot (plus its
        banked credits); the reservation throttles it at the source."""
        interconnect = gsmtree_tdm(4)
        cap = interconnect.CREDIT_CAP
        accepted = sum(
            interconnect.try_inject(make_request(client_id=0, deadline=10_000), 0)
            for _ in range(cap + 3)
        )
        assert accepted == cap  # banked credits only

    def test_credits_replenish_in_own_slot(self):
        interconnect, controller = wired(gsmtree_tdm(4))
        for _ in range(interconnect.CREDIT_CAP):
            assert interconnect.try_inject(make_request(client_id=0, deadline=10_000), 0)
        assert not interconnect.try_inject(make_request(client_id=0, deadline=10_000), 1)
        # drain the tree so the leaf FIFO has space again
        drive(interconnect, controller, 3, start=1)
        # client 0 owns slots 0, 4, 8...: a credit returns at cycle 4
        assert interconnect.try_inject(make_request(client_id=0, deadline=10_000), 4)
        # and only one: the next inject in the same slot is rejected
        assert not interconnect.try_inject(make_request(client_id=0, deadline=10_000), 4)

    def test_equal_shares_regardless_of_demand(self):
        """TDM gives every client the same injection rate — the
        demand-blind reservation the paper criticizes."""
        interconnect, controller = wired(gsmtree_tdm(4))
        heavy_accepted = 0
        light_accepted = 0
        for cycle in range(64):
            if interconnect.try_inject(
                make_request(client_id=0, deadline=10_000), cycle
            ):
                heavy_accepted += 1
            if cycle % 16 == 0 and interconnect.try_inject(
                make_request(client_id=1, deadline=10_000), cycle
            ):
                light_accepted += 1
            interconnect.tick_request_path(cycle)
            controller.tick(cycle)
            interconnect.tick_response_path(cycle)
        # client 0 wants 64 but gets ~16 (1/4 of slots) + banked credits
        assert heavy_accepted <= 16 + interconnect.CREDIT_CAP
        assert light_accepted == 4  # light demand fully admitted


class TestFbspAdmission:
    def test_heavy_client_gets_more_bandwidth_than_tdm(self):
        workloads = [0.7, 0.05, 0.05, 0.05]
        fbsp = gsmtree_fbsp(4, workloads)
        tdm = gsmtree_tdm(4)
        def admitted(interconnect):
            count = 0
            controller = MemoryController(FixedLatencyDevice(1), queue_capacity=8)
            interconnect.attach_controller(controller)
            for cycle in range(64):
                if interconnect.try_inject(
                    make_request(client_id=0, deadline=100_000), cycle
                ):
                    count += 1
                interconnect.tick_request_path(cycle)
                controller.tick(cycle)
                interconnect.tick_response_path(cycle)
            return count
        assert admitted(fbsp) > admitted(tdm)

    def test_workload_count_must_match(self):
        with pytest.raises(ConfigurationError):
            gsmtree_fbsp(4, [0.5, 0.5])

    def test_names(self):
        assert gsmtree_tdm(4).name == "GSMTree-TDM"
        assert gsmtree_fbsp(4, [0.1] * 4).name == "GSMTree-FBSP"


class TestRootSchedule:
    def test_slot_owner_cycles_through_frame(self):
        interconnect = GsmTreeInterconnect(4, frame=[2, 0, 1])
        assert [interconnect.slot_owner(c) for c in range(6)] == [2, 0, 1, 2, 0, 1]

    def test_slot_cycles_stretch_slots(self):
        interconnect = GsmTreeInterconnect(4, frame=[0, 1], slot_cycles=3)
        owners = [interconnect.slot_owner(c) for c in range(8)]
        assert owners == [0, 0, 0, 1, 1, 1, 0, 0]

    def test_frame_validation(self):
        with pytest.raises(ConfigurationError):
            GsmTreeInterconnect(4, frame=[])
        with pytest.raises(ConfigurationError):
            GsmTreeInterconnect(4, frame=[5])
        with pytest.raises(ConfigurationError):
            GsmTreeInterconnect(4, slot_cycles=0)

    def test_slack_reclamation_keeps_tree_working(self):
        """Unused slots are reclaimed: a single client still gets its
        requests through slots it does not own."""
        interconnect, controller = wired(gsmtree_tdm(4))
        requests = [make_request(client_id=2, deadline=10_000) for _ in range(3)]
        injected = 0
        delivered = []
        for cycle in range(40):
            while injected < 3 and interconnect.try_inject(requests[injected], cycle):
                injected += 1
            interconnect.tick_request_path(cycle)
            controller.tick(cycle)
            delivered.extend(interconnect.tick_response_path(cycle))
        assert len(delivered) == 3


class TestEndToEnd:
    def test_all_admitted_requests_complete(self):
        interconnect, controller = wired(gsmtree_tdm(8))
        injected = []
        backlog = [make_request(client_id=c % 8, deadline=10_000) for c in range(24)]
        delivered = []
        for cycle in range(300):
            if backlog and interconnect.try_inject(backlog[0], cycle):
                injected.append(backlog.pop(0))
            interconnect.tick_request_path(cycle)
            controller.tick(cycle)
            delivered.extend(interconnect.tick_response_path(cycle))
        assert len(delivered) == len(injected) == 24
        assert interconnect.requests_in_flight() == 0
