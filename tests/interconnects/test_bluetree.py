"""Unit tests for BlueTree and BlueTree-Smooth."""

import pytest

from repro.errors import ConfigurationError
from repro.interconnects.bluetree import (
    BlueTreeInterconnect,
    BlueTreeNode,
    BlueTreeSmoothInterconnect,
)
from repro.memory.controller import MemoryController
from repro.memory.dram import FixedLatencyDevice

from tests.conftest import make_request


def wired(n_clients=8, **kwargs):
    interconnect = BlueTreeInterconnect(n_clients, **kwargs)
    controller = MemoryController(FixedLatencyDevice(1), queue_capacity=8)
    interconnect.attach_controller(controller)
    return interconnect, controller


def drive(interconnect, controller, cycles):
    delivered = []
    for cycle in range(cycles):
        interconnect.tick_request_path(cycle)
        controller.tick(cycle)
        delivered.extend(interconnect.tick_response_path(cycle))
    return delivered


class TestTopology:
    def test_binary_tree_node_count(self):
        assert len(BlueTreeInterconnect(8).nodes) == 7
        assert len(BlueTreeInterconnect(16).nodes) == 15

    def test_deeper_than_bluescale(self):
        # 16 clients: 4 mux stages vs BlueScale's 2 SE levels
        assert BlueTreeInterconnect(16).topology.depth == 3


class TestBlockingFactorArbitration:
    def sink_node(self, alpha):
        node = BlueTreeNode((0, 0), fifo_capacity=8, alpha=alpha)
        forwarded = []
        node.forward = lambda request, cycle: (forwarded.append(request), True)[1]
        return node, forwarded

    def test_left_priority(self):
        node, forwarded = self.sink_node(alpha=2)
        left = make_request(client_id=0)
        right = make_request(client_id=1)
        node.try_accept(0, left)
        node.try_accept(1, right)
        node.tick(0)
        assert forwarded == [left]

    def test_right_slips_after_alpha_left_forwards(self):
        """With α=2, the right-hand path gets one slot per two left
        forwards — the bounded-blocking heuristic of Sec. 2.2."""
        node, forwarded = self.sink_node(alpha=2)
        lefts = [make_request(client_id=0, deadline=1000 + i) for i in range(4)]
        rights = [make_request(client_id=1, deadline=2000 + i) for i in range(2)]
        for request in lefts:
            node.try_accept(0, request)
        for request in rights:
            node.try_accept(1, request)
        for cycle in range(6):
            node.tick(cycle)
        # pattern: L L R L L R
        assert forwarded == [lefts[0], lefts[1], rights[0], lefts[2], lefts[3], rights[1]]

    def test_alpha_one_is_round_robin(self):
        node, forwarded = self.sink_node(alpha=1)
        lefts = [make_request(client_id=0) for _ in range(2)]
        rights = [make_request(client_id=1) for _ in range(2)]
        for l, r in zip(lefts, rights):
            node.try_accept(0, l)
            node.try_accept(1, r)
        for cycle in range(4):
            node.tick(cycle)
        assert forwarded == [lefts[0], rights[0], lefts[1], rights[1]]

    def test_right_alone_forwards(self):
        node, forwarded = self.sink_node(alpha=2)
        right = make_request(client_id=1)
        node.try_accept(1, right)
        node.tick(0)
        assert forwarded == [right]

    def test_arbitration_ignores_deadlines(self):
        """The heuristic forwards the left path even when the right holds
        an earlier deadline — the design flaw BlueScale fixes."""
        node, forwarded = self.sink_node(alpha=2)
        late = make_request(client_id=0, deadline=900)
        urgent = make_request(client_id=1, deadline=10)
        node.try_accept(0, late)
        node.try_accept(1, urgent)
        node.tick(0)
        assert forwarded == [late]
        assert urgent.blocking_cycles == 1  # inversion charged

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            BlueTreeNode((0, 0), fifo_capacity=2, alpha=0)


class TestEndToEnd:
    def test_all_requests_complete(self):
        interconnect, controller = wired(8)
        requests = [make_request(client_id=c, deadline=1000) for c in range(8)]
        for request in requests:
            assert interconnect.try_inject(request, 0)
        delivered = drive(interconnect, controller, 40)
        assert sorted(r.rid for r in delivered) == sorted(r.rid for r in requests)
        assert interconnect.requests_in_flight() == 0

    def test_shallow_fifos_backpressure_quickly(self):
        interconnect, _ = wired(8, fifo_capacity=2)
        accepted = sum(
            interconnect.try_inject(make_request(client_id=0), 0) for _ in range(5)
        )
        assert accepted == 2


class TestSmoothVariant:
    def test_deeper_buffers(self):
        smooth = BlueTreeSmoothInterconnect(8)
        plain = BlueTreeInterconnect(8)
        assert smooth.fifo_capacity > plain.fifo_capacity

    def test_absorbs_bigger_bursts_at_ingress(self):
        smooth = BlueTreeSmoothInterconnect(8)
        accepted = sum(
            smooth.try_inject(make_request(client_id=0), 0) for _ in range(10)
        )
        assert accepted == smooth.fifo_capacity

    def test_name_distinguishes_variants(self):
        assert BlueTreeSmoothInterconnect(8).name == "BlueTree-Smooth"
        assert BlueTreeInterconnect(8).name == "BlueTree"
