"""Tests for the shared interconnect base and the mux-tree substrate."""

import pytest

from repro.errors import ConfigurationError
from repro.interconnects.base import Interconnect, charge_blocking_against
from repro.interconnects.bluetree import BlueTreeInterconnect
from repro.interconnects.mux_tree import MuxNode
from repro.memory.controller import MemoryController
from repro.memory.dram import FixedLatencyDevice

from tests.conftest import make_request


class TestInterconnectBase:
    def test_rejects_zero_clients(self):
        with pytest.raises(ConfigurationError):
            BlueTreeInterconnect(0)

    def test_attach_controller_wires_responses(self):
        interconnect = BlueTreeInterconnect(4)
        controller = MemoryController(FixedLatencyDevice(1))
        interconnect.attach_controller(controller)
        assert controller.on_response == interconnect.begin_response

    def test_response_delivery_respects_latency(self):
        interconnect = BlueTreeInterconnect(4)
        request = make_request(client_id=0)
        latency = interconnect.response_latency(0)
        interconnect.begin_response(request, cycle=10)
        for cycle in range(10, 10 + latency):
            assert interconnect.tick_response_path(cycle) == []
        delivered = interconnect.tick_response_path(10 + latency)
        assert delivered == [request]
        assert request.complete_cycle == 10 + latency

    def test_responses_in_flight_counter(self):
        interconnect = BlueTreeInterconnect(4)
        interconnect.begin_response(make_request(client_id=0), cycle=0)
        interconnect.begin_response(make_request(client_id=1), cycle=0)
        assert interconnect.responses_in_flight() == 2
        interconnect.tick_response_path(10_000)
        assert interconnect.responses_in_flight() == 0

    def test_simultaneous_responses_deliver_in_fifo_order(self):
        interconnect = BlueTreeInterconnect(4)
        first = make_request(client_id=0)
        second = make_request(client_id=1)
        interconnect.begin_response(first, cycle=0)
        interconnect.begin_response(second, cycle=0)
        delivered = interconnect.tick_response_path(10_000)
        assert delivered == [first, second]

    def test_charge_blocking_helper(self):
        forwarded = make_request(deadline=500)
        urgent = make_request(deadline=100)
        relaxed = make_request(deadline=900)
        charge_blocking_against(forwarded, [urgent, relaxed])
        assert urgent.blocking_cycles == 1
        assert relaxed.blocking_cycles == 0

    def test_abstract_base_enforces_interface(self):
        with pytest.raises(TypeError):
            Interconnect(4)  # abstract methods missing


class TestMuxNode:
    def test_choose_port_is_abstract(self):
        node = MuxNode((0, 0), fifo_capacity=2)
        node.try_accept(0, make_request())
        with pytest.raises(NotImplementedError):
            node.tick(0)

    def test_fifo_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            MuxNode((0, 0), fifo_capacity=0)

    def test_occupancy(self):
        node = MuxNode((0, 0), fifo_capacity=4)
        node.try_accept(0, make_request())
        node.try_accept(1, make_request())
        node.try_accept(1, make_request())
        assert node.occupancy() == 3


class TestTreeBackpressure:
    def test_stall_propagates_down_to_ingress(self):
        """With the controller refusing everything, the whole request
        path fills up and ingress eventually rejects."""
        interconnect = BlueTreeInterconnect(4, fifo_capacity=1)
        controller = MemoryController(FixedLatencyDevice(1000), queue_capacity=1)
        interconnect.attach_controller(controller)
        accepted = 0
        for cycle in range(100):
            if interconnect.try_inject(make_request(client_id=0), cycle):
                accepted += 1
            interconnect.tick_request_path(cycle)
            controller.tick(cycle)
        # path capacity: leaf fifo 1 + root fifo 1 + controller queue 1
        # + one in service = finite, far below 100
        assert accepted <= 5
        assert interconnect.requests_in_flight() <= 2

    def test_nothing_lost_under_backpressure(self):
        interconnect = BlueTreeInterconnect(4, fifo_capacity=1)
        controller = MemoryController(FixedLatencyDevice(5), queue_capacity=1)
        interconnect.attach_controller(controller)
        accepted = []
        delivered = []
        for cycle in range(400):
            if len(accepted) < 10:
                request = make_request(client_id=cycle % 4, deadline=cycle + 10_000)
                if interconnect.try_inject(request, cycle):
                    accepted.append(request)
            interconnect.tick_request_path(cycle)
            controller.tick(cycle)
            delivered.extend(interconnect.tick_response_path(cycle))
        assert len(delivered) == len(accepted) == 10
