"""Tests for the avionics workload catalogue."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.avionics import (
    ALL_AVIONICS,
    DAL_LEVELS,
    PARTITIONS,
    AvionicsProfile,
    assign_partitions,
    partition_taskset,
    tasks_at_or_above,
)


class TestCatalogue:
    def test_names_unique(self):
        names = [p.name for p in ALL_AVIONICS]
        assert len(set(names)) == len(names)

    def test_every_profile_valid_task(self):
        for profile in ALL_AVIONICS:
            task = profile.as_task()
            assert 1 <= task.wcet <= task.period

    def test_partitions_cover_catalogue(self):
        assert {p.partition for p in ALL_AVIONICS} == set(PARTITIONS)

    def test_flight_control_is_dal_a_and_fast(self):
        fc = [p for p in ALL_AVIONICS if p.partition == "flight-control"]
        assert all(p.dal == "A" for p in fc)
        assert all(p.period <= 500 for p in fc)

    def test_cabin_is_low_criticality(self):
        cabin = [p for p in ALL_AVIONICS if p.partition == "cabin"]
        assert all(p.dal in ("C", "D", "E") for p in cabin)

    def test_invalid_dal_rejected(self):
        with pytest.raises(ConfigurationError):
            AvionicsProfile("x", "cabin", "Z", 100, 1)

    def test_total_load_is_moderate(self):
        total = sum(p.transactions_per_job / p.period for p in ALL_AVIONICS)
        assert 0.05 < total < 0.5


class TestPartitionMapping:
    def test_partition_taskset(self):
        nav = partition_taskset("navigation", client_id=2)
        assert len(nav) == 4
        assert all(task.client_id == 2 for task in nav)

    def test_unknown_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_taskset("galley")

    def test_assign_partitions_segregates(self):
        assignment = assign_partitions(8)
        assert sorted(assignment) == [0, 1, 2, 3]
        for client, taskset in assignment.items():
            assert all(task.client_id == client for task in taskset)

    def test_too_few_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_partitions(3)


class TestDalFiltering:
    def test_dal_a_only_flight_control(self):
        critical = tasks_at_or_above("A")
        assert len(critical) == 4

    def test_dal_ordering_is_monotone(self):
        sizes = [len(tasks_at_or_above(dal)) for dal in DAL_LEVELS]
        assert sizes == sorted(sizes)
        assert sizes[-1] == len(ALL_AVIONICS)

    def test_unknown_dal_rejected(self):
        with pytest.raises(ConfigurationError):
            tasks_at_or_above("F")


class TestAvionicsOnBlueScale:
    def test_partitioned_system_composes_and_meets_deadlines(self):
        """The avionics partitions compose on a 4-client BlueScale and
        run without a single deadline miss."""
        from repro.clients import TrafficGenerator
        from repro.core import BlueScaleInterconnect
        from repro.soc import SoCSimulation

        assignment = assign_partitions(4)
        interconnect = BlueScaleInterconnect(4, buffer_capacity=2)
        composition = interconnect.configure(assignment)
        assert composition.schedulable
        clients = [
            TrafficGenerator(c, ts) for c, ts in assignment.items()
        ]
        result = SoCSimulation(clients, interconnect).run(10_000, drain=4_000)
        assert result.deadline_miss_ratio == 0.0
