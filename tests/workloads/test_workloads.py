"""Unit tests for the automotive workloads and interference builders."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workloads.automotive import (
    ALL_PROFILES,
    FUNCTION_PROFILES,
    SAFETY_PROFILES,
    assign_case_study,
    case_study_taskset,
    function_taskset,
    profile_by_name,
    safety_taskset,
)
from repro.workloads.interference import (
    DNN_STREAMS,
    build_interference,
    dnn_interference_taskset,
)


class TestAutomotiveCatalogue:
    def test_ten_plus_ten_tasks(self):
        """The paper's case study uses 10 safety + 10 function tasks."""
        assert len(SAFETY_PROFILES) == 10
        assert len(FUNCTION_PROFILES) == 10
        assert len(case_study_taskset()) == 20

    def test_categories_consistent(self):
        assert all(p.category == "safety" for p in SAFETY_PROFILES)
        assert all(p.category == "function" for p in FUNCTION_PROFILES)

    def test_names_unique(self):
        names = [p.name for p in ALL_PROFILES]
        assert len(set(names)) == len(names)

    def test_named_kernels_present(self):
        # kernels the paper names explicitly
        for name in ("crc32", "rsa32", "core-self-test", "fft", "speed-calc"):
            assert profile_by_name(name) is not None

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_by_name("quake3")

    def test_profiles_are_valid_tasks(self):
        for profile in ALL_PROFILES:
            task = profile.as_task()
            assert 1 <= task.wcet <= task.period

    def test_application_load_is_light(self):
        """The 20 tasks alone load the interconnect lightly, leaving the
        utilization sweep to interference tasks."""
        utilization = case_study_taskset().utilization_float
        assert 0.05 < utilization < 0.35

    def test_safety_function_split(self):
        assert len(safety_taskset()) == 10
        assert len(function_taskset()) == 10


class TestAssignment:
    def test_round_robin_over_16(self):
        assignment = assign_case_study(16)
        assert sorted(assignment) == list(range(16))
        sizes = [len(assignment[c]) for c in range(16)]
        assert sizes[:4] == [2, 2, 2, 2]  # 20 tasks over 16 clients
        assert sum(sizes) == 20

    def test_64_cores_leaves_most_idle(self):
        assignment = assign_case_study(64)
        loaded = [c for c in assignment if len(assignment[c]) > 0]
        assert len(loaded) == 20

    def test_tasks_carry_client_ids(self):
        assignment = assign_case_study(8)
        for client, taskset in assignment.items():
            assert all(task.client_id == client for task in taskset)

    def test_rejects_zero_processors(self):
        with pytest.raises(ConfigurationError):
            assign_case_study(0)


class TestInterference:
    def app_utils(self, n=8):
        assignment = assign_case_study(n)
        return {c: ts.utilization_float for c, ts in assignment.items()}

    def test_reaches_target_utilization(self):
        rng = random.Random(4)
        utils = self.app_utils()
        interference = build_interference(rng, utils, 0.7)
        total = sum(utils.values()) + sum(
            ts.utilization_float for ts in interference.values()
        )
        assert total == pytest.approx(0.7, abs=0.1)

    def test_no_client_overloaded(self):
        rng = random.Random(4)
        utils = self.app_utils(4)
        interference = build_interference(rng, utils, 0.9 * 4 * 0.9)
        for client, taskset in interference.items():
            assert utils[client] + taskset.utilization_float <= 1.0

    def test_target_already_met_adds_nothing(self):
        rng = random.Random(4)
        utils = self.app_utils()
        current = sum(utils.values())
        interference = build_interference(rng, utils, current * 0.5)
        assert all(len(ts) == 0 for ts in interference.values())

    def test_impossible_target_rejected(self):
        rng = random.Random(4)
        with pytest.raises(ConfigurationError):
            build_interference(rng, {0: 0.5, 1: 0.5}, 2.5)

    def test_empty_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            build_interference(random.Random(0), {}, 0.5)

    def test_tasks_carry_owner_client(self):
        rng = random.Random(4)
        utils = self.app_utils()
        interference = build_interference(rng, utils, 0.8)
        for client, taskset in interference.items():
            assert all(task.client_id == client for task in taskset)


class TestDnnStreams:
    def test_three_models(self):
        """SqueezeNet on MNIST, EMNIST and CIFAR-10 (paper Sec. 6.4)."""
        assert len(DNN_STREAMS) == 3
        names = [name for name, _, _ in DNN_STREAMS]
        assert any("mnist" in n for n in names)
        assert any("cifar" in n for n in names)

    def test_taskset_carries_client(self):
        taskset = dnn_interference_taskset(client_id=9)
        assert len(taskset) == 3
        assert all(task.client_id == 9 for task in taskset)

    def test_streams_are_heavy_bursts(self):
        taskset = dnn_interference_taskset()
        assert all(task.wcet >= 50 for task in taskset)
