"""The regression gate: structure, tags, tolerance rules, wall-clock.

These tests build :class:`CellRecord` artifacts directly (no
simulation) — the gate is pure comparison logic, and every edge the
legacy comparer mishandled (missing metrics, NaN, zero baselines) must
surface as an explicit violation, never a silent pass.
"""

from __future__ import annotations

import dataclasses
import math

from repro.campaigns import (
    CampaignArtifacts,
    GateConfig,
    diff_campaigns,
    format_gate_report,
    golden_payload,
    load_artifacts,
)
from repro.campaigns.executor import CellRecord
from repro.campaigns.spec import ToleranceRule, canonical_json


def record(cell_id="fig6/s0/design=A", scalars=(("a/miss", 0.5),),
           tags=(("a/trace", "abc"),), error=None, index=0):
    return CellRecord(
        cell_id=cell_id,
        index=index,
        family="fig6",
        seed=1,
        coords=(("design", "A"),),
        settings=(("trials", 1),),
        scalars=tuple(scalars),
        tags=tuple(tags),
        error=error,
    )


def artifacts(records, gate=None, timings=()):
    manifest = {"name": "t", "cells": len(records), "failed": 0}
    if gate is not None:
        manifest["gate"] = gate.as_dict()
    return CampaignArtifacts(
        manifest=manifest, records=list(records), timings=list(timings)
    )


def kinds(violations):
    return [violation.kind for violation in violations]


class TestStructure:
    def test_identical_runs_pass(self):
        assert diff_campaigns(artifacts([record()]),
                              artifacts([record()])) == []

    def test_missing_cell_is_structure_violation(self):
        violations = diff_campaigns(artifacts([record()]), artifacts([]))
        assert kinds(violations) == ["structure"]
        assert "missing from run" in violations[0].detail

    def test_extra_cell_is_structure_violation(self):
        violations = diff_campaigns(artifacts([]), artifacts([record()]))
        assert kinds(violations) == ["structure"]
        assert "bless" in violations[0].detail

    def test_error_status_change_is_failure(self):
        broken = record(error="SimulationError: boom")
        violations = diff_campaigns(
            artifacts([record()]), artifacts([broken])
        )
        assert kinds(violations) == ["failure"]
        # a failed cell short-circuits: no metric noise on top
        assert len(violations) == 1


class TestTags:
    def test_tag_flip_always_exact(self):
        changed = record(tags=(("a/trace", "DIFFERENT"),))
        violations = diff_campaigns(
            artifacts([record()]),
            artifacts([changed]),
            gate=GateConfig(
                rules=(ToleranceRule("*", "relative", 1e9),)
            ),
        )
        assert kinds(violations) == ["tag"]


class TestMetricRules:
    def test_exact_by_default(self):
        moved = record(scalars=(("a/miss", 0.5000001),))
        violations = diff_campaigns(
            artifacts([record()]), artifacts([moved])
        )
        assert kinds(violations) == ["metric"]
        assert "exact" in violations[0].detail

    def test_relative_band(self):
        gate = GateConfig(
            rules=(ToleranceRule("*/miss", "relative", 0.10),)
        )
        within = record(scalars=(("a/miss", 0.54),))
        beyond = record(scalars=(("a/miss", 0.60),))
        assert diff_campaigns(
            artifacts([record()]), artifacts([within]), gate=gate
        ) == []
        violations = diff_campaigns(
            artifacts([record()]), artifacts([beyond]), gate=gate
        )
        assert kinds(violations) == ["metric"]

    def test_absolute_band(self):
        gate = GateConfig(
            rules=(ToleranceRule("*/miss", "absolute", 0.2),)
        )
        within = record(scalars=(("a/miss", 0.69),))
        beyond = record(scalars=(("a/miss", 0.71),))
        assert diff_campaigns(
            artifacts([record()]), artifacts([within]), gate=gate
        ) == []
        assert kinds(
            diff_campaigns(
                artifacts([record()]), artifacts([beyond]), gate=gate
            )
        ) == ["metric"]

    def test_ignore_rule(self):
        gate = GateConfig(rules=(ToleranceRule("*/miss", "ignore"),))
        moved = record(scalars=(("a/miss", 99.0),))
        assert diff_campaigns(
            artifacts([record()]), artifacts([moved]), gate=gate
        ) == []

    def test_first_matching_rule_wins(self):
        gate = GateConfig(
            rules=(
                ToleranceRule("a/*", "ignore"),
                ToleranceRule("*/miss", "exact"),
            )
        )
        moved = record(scalars=(("a/miss", 99.0),))
        assert diff_campaigns(
            artifacts([record()]), artifacts([moved]), gate=gate
        ) == []

    def test_missing_metric_is_violation_even_under_relative(self):
        gate = GateConfig(rules=(ToleranceRule("*", "relative", 1e9),))
        gone = record(scalars=())
        violations = diff_campaigns(
            artifacts([record()]), artifacts([gone]), gate=gate
        )
        assert kinds(violations) == ["metric"]
        assert "removed" in violations[0].detail

    def test_nan_is_violation_under_every_kind(self):
        nan_record = record(scalars=(("a/miss", math.nan),))
        for rule in (
            ToleranceRule("*", "exact"),
            ToleranceRule("*", "relative", 1e9),
            ToleranceRule("*", "absolute", 1e9),
        ):
            violations = diff_campaigns(
                artifacts([record()]),
                artifacts([nan_record]),
                gate=GateConfig(rules=(rule,)),
            )
            assert kinds(violations) == ["metric"], rule.kind

    def test_two_nans_are_equal(self):
        nan_record = record(scalars=(("a/miss", math.nan),))
        assert diff_campaigns(
            artifacts([nan_record]), artifacts([nan_record])
        ) == []

    def test_zero_baseline_never_raises(self):
        zero = record(scalars=(("a/miss", 0.0),))
        moved = record(scalars=(("a/miss", 0.3),))
        gate = GateConfig(rules=(ToleranceRule("*", "relative", 1e9),))
        violations = diff_campaigns(
            artifacts([zero]), artifacts([moved]), gate=gate
        )
        assert kinds(violations) == ["metric"]


class TestGateSource:
    def test_gate_read_from_current_manifest(self):
        gate = GateConfig(rules=(ToleranceRule("*/miss", "ignore"),))
        moved = record(scalars=(("a/miss", 9.0),))
        assert diff_campaigns(
            artifacts([record()]), artifacts([moved], gate=gate)
        ) == []

    def test_explicit_gate_overrides_manifest(self):
        sealed = GateConfig(rules=(ToleranceRule("*/miss", "ignore"),))
        moved = record(scalars=(("a/miss", 9.0),))
        violations = diff_campaigns(
            artifacts([record()]),
            artifacts([moved], gate=sealed),
            gate=GateConfig(),  # strict: everything exact
        )
        assert kinds(violations) == ["metric"]


class TestWallClock:
    def timed(self, seconds):
        return artifacts(
            [record()],
            timings=[{"cell_id": "fig6/s0/design=A", "seconds": seconds,
                      "workers": 1}],
        )

    def test_slowdown_beyond_band_fails(self):
        gate = GateConfig(wall_clock_tolerance=0.5)
        violations = diff_campaigns(
            self.timed(1.0), self.timed(2.0), gate=gate
        )
        assert kinds(violations) == ["wall_clock"]

    def test_speedup_never_fails(self):
        gate = GateConfig(wall_clock_tolerance=0.5)
        assert diff_campaigns(
            self.timed(2.0), self.timed(0.1), gate=gate
        ) == []

    def test_no_timings_no_check(self):
        gate = GateConfig(wall_clock_tolerance=0.0)
        assert diff_campaigns(
            artifacts([record()]), self.timed(100.0), gate=gate
        ) == []
        assert diff_campaigns(
            self.timed(100.0), artifacts([record()]), gate=gate
        ) == []

    def test_resumed_timings_last_line_wins(self):
        run = artifacts(
            [record()],
            timings=[
                {"cell_id": "fig6/s0/design=A", "seconds": 50.0,
                 "workers": 1},
                {"cell_id": "fig6/s0/design=A", "seconds": 1.0,
                 "workers": 1},
            ],
        )
        assert run.wall_clock_seconds() == 1.0


class TestGoldenRoundTrip:
    def test_payload_round_trips_through_load(self, tmp_path):
        source = artifacts(
            [record()], timings=[{"cell_id": "x", "seconds": 1.0}]
        )
        payload = golden_payload(source, comment="test baseline")
        assert "timings" not in payload  # machine-dependent, dropped
        path = tmp_path / "golden.json"
        path.write_text(canonical_json(payload) + "\n", encoding="utf-8")
        loaded = load_artifacts(path)
        assert loaded.records == source.records
        assert diff_campaigns(loaded, source) == []

    def test_injected_regression_detected(self, tmp_path):
        source = artifacts([record()])
        path = tmp_path / "golden.json"
        path.write_text(
            canonical_json(golden_payload(source, comment="c")) + "\n",
            encoding="utf-8",
        )
        worse = dataclasses.replace(
            source.records[0], scalars=(("a/miss", 0.9),)
        )
        violations = diff_campaigns(
            load_artifacts(path), artifacts([worse])
        )
        assert kinds(violations) == ["metric"]


class TestReportFormat:
    def test_pass_and_fail_strings(self):
        assert "gate PASS" in format_gate_report([], "golden.json")
        violations = diff_campaigns(artifacts([record()]), artifacts([]))
        report = format_gate_report(violations, "golden.json")
        assert "gate FAIL: 1 regression(s)" in report
        assert "[structure]" in report
