"""``repro campaign run / report / diff`` exit codes and artifacts.

The acceptance criterion lives here: ``repro campaign diff`` exits 1
on an injected metric regression and 0 against its own golden payload.
One tiny campaign executes for real (module-cached); everything else
derives from its artifacts.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.campaigns import golden_payload, load_artifacts
from repro.campaigns.spec import canonical_json
from repro.cli import main

from tests.campaigns.conftest import TINY_RAW


@pytest.fixture(scope="module")
def tiny_run(tmp_path_factory):
    """A completed real run of the tiny spec, via the CLI itself."""
    root = tmp_path_factory.mktemp("cli")
    spec_path = root / "tiny.json"
    spec_path.write_text(json.dumps(TINY_RAW), encoding="utf-8")
    out = root / "results"
    assert main(["campaign", "run", str(spec_path), "--out", str(out)]) == 0
    return spec_path, out


class TestRun:
    def test_rerun_resumes_to_exit_zero(self, tiny_run, capsys):
        spec_path, out = tiny_run
        assert (
            main(["campaign", "run", str(spec_path), "--out", str(out)])
            == 0
        )
        captured = capsys.readouterr().out
        assert "4 resumed, 0 executed" in captured

    def test_failed_cell_exits_one(self, tmp_path, capsys):
        raw = copy.deepcopy(TINY_RAW)
        raw["sweeps"][0]["design"] = ["NoSuchDesign"]
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps(raw), encoding="utf-8")
        code = main(
            ["campaign", "run", str(spec_path), "--out",
             str(tmp_path / "out")]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_workers_and_backend_flags_accepted(self, tiny_run, tmp_path):
        spec_path, out = tiny_run
        other = tmp_path / "parallel"
        assert (
            main(
                ["campaign", "run", str(spec_path), "--out", str(other),
                 "--workers", "2", "--sim-backend", "scalar"]
            )
            == 0
        )
        assert (
            (other / "cells.jsonl").read_bytes()
            == (out / "cells.jsonl").read_bytes()
        )


class TestReport:
    def test_report_writes_artifacts(self, tiny_run, tmp_path):
        _, out = tiny_run
        report_dir = tmp_path / "report"
        assert (
            main(
                ["campaign", "report", str(out), "--out", str(report_dir)]
            )
            == 0
        )
        assert (report_dir / "report.md").exists()
        assert (report_dir / "series.jsonl").exists()


class TestDiff:
    def golden_path(self, out, tmp_path, mutate=None):
        payload = golden_payload(load_artifacts(out), comment="test")
        if mutate is not None:
            mutate(payload)
        path = tmp_path / "golden.json"
        path.write_text(canonical_json(payload) + "\n", encoding="utf-8")
        return path

    def test_clean_baseline_exits_zero(self, tiny_run, tmp_path, capsys):
        _, out = tiny_run
        golden = self.golden_path(out, tmp_path)
        assert main(["campaign", "diff", str(golden), str(out)]) == 0
        assert "gate PASS" in capsys.readouterr().out

    def test_injected_regression_exits_one(
        self, tiny_run, tmp_path, capsys
    ):
        _, out = tiny_run

        def worsen(payload):
            scalars = payload["cells"][0]["scalars"]
            key = next(k for k in scalars if k.endswith("/blocking"))
            scalars[key] += 0.5

        golden = self.golden_path(out, tmp_path, mutate=worsen)
        assert main(["campaign", "diff", str(golden), str(out)]) == 1
        captured = capsys.readouterr().out
        assert "gate FAIL" in captured and "[metric]" in captured

    def test_injected_trace_flip_exits_one(
        self, tiny_run, tmp_path, capsys
    ):
        _, out = tiny_run

        def flip(payload):
            tags = payload["cells"][0]["tags"]
            key = next(k for k in tags if k.endswith("/trace"))
            tags[key] = "0" * 64

        golden = self.golden_path(out, tmp_path, mutate=flip)
        assert main(["campaign", "diff", str(golden), str(out)]) == 1
        assert "[tag]" in capsys.readouterr().out

    def test_committed_golden_baseline_passes(self, tmp_path):
        """The acceptance check CI runs: a fresh run of the committed
        spec gates cleanly against the committed golden baseline."""
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent.parent
        spec = repo / "campaigns" / "ci.json"
        golden = repo / "tests" / "fixtures" / "golden_campaign.json"
        out = tmp_path / "ci"
        assert (
            main(["campaign", "run", str(spec), "--out", str(out)]) == 0
        )
        assert main(["campaign", "diff", str(golden), str(out)]) == 0
