"""Resumable execution: kill mid-run, restart, byte-identical output.

The headline guarantee under test: a campaign killed after k of n
cells and resumed — at *any* worker count — finishes with
``cells.jsonl`` and ``manifest.json`` byte-identical to an
uninterrupted serial run.  Wall-clock lives in ``timings.jsonl``,
which is exempt (machines differ; manifests must not).
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import expand_campaign, load_campaign_dir, run_campaign
from repro.campaigns.executor import (
    CELLS_FILE,
    MANIFEST_FILE,
    TIMINGS_FILE,
)
from repro.errors import ConfigurationError
from repro.runtime import ExecutionHooks


class _Kill(Exception):
    """Stands in for SIGKILL: aborts the run after k collected cells."""


class _KillAfter(ExecutionHooks):
    def __init__(self, cells: int) -> None:
        self.cells = cells
        self.seen = 0

    def on_trial_done(self, outcome, done, total) -> None:
        self.seen += 1
        if self.seen >= self.cells:
            raise _Kill(f"killed after {self.seen} cells")


def artifact_bytes(directory) -> dict[str, bytes]:
    return {
        name: (directory / name).read_bytes()
        for name in (CELLS_FILE, MANIFEST_FILE)
    }


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted serial run of the tiny spec (module-cached)."""
    import copy

    from repro.campaigns import parse_campaign_spec

    from tests.campaigns.conftest import TINY_RAW

    spec = parse_campaign_spec(copy.deepcopy(TINY_RAW))
    directory = tmp_path_factory.mktemp("reference")
    run = run_campaign(spec, directory, workers=1)
    assert not run.failed_cells
    return spec, directory


class TestResumeByteIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("kill_after", [1, 3])
    def test_killed_then_resumed_matches_uninterrupted(
        self, reference, tmp_path, workers, kill_after
    ):
        spec, reference_dir = reference
        with pytest.raises(_Kill):
            run_campaign(
                spec, tmp_path, workers=1, hooks=_KillAfter(kill_after)
            )
        # the kill left a partial checkpoint and no manifest
        assert not (tmp_path / MANIFEST_FILE).exists()
        checkpointed = (
            (tmp_path / CELLS_FILE).read_text().strip().splitlines()
        )
        assert len(checkpointed) == kill_after

        run = run_campaign(spec, tmp_path, workers=workers)
        assert run.resumed_cells == kill_after
        assert run.executed_cells == len(run.records) - kill_after
        assert artifact_bytes(tmp_path) == artifact_bytes(reference_dir)

    def test_torn_final_line_discarded_on_resume(
        self, reference, tmp_path
    ):
        spec, reference_dir = reference
        with pytest.raises(_Kill):
            run_campaign(spec, tmp_path, workers=1, hooks=_KillAfter(2))
        with open(tmp_path / CELLS_FILE, "a", encoding="utf-8") as handle:
            handle.write('{"cell_id": "fig6/s0/desi')  # hard-kill torn
        run = run_campaign(spec, tmp_path, workers=1)
        assert run.resumed_cells == 2
        assert artifact_bytes(tmp_path) == artifact_bytes(reference_dir)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial(self, reference, tmp_path, workers):
        spec, reference_dir = reference
        run_campaign(spec, tmp_path, workers=workers)
        assert artifact_bytes(tmp_path) == artifact_bytes(reference_dir)

    def test_completed_run_resumes_to_noop(self, reference, tmp_path):
        spec, reference_dir = reference
        run_campaign(spec, tmp_path, workers=1)
        before = artifact_bytes(tmp_path)
        run = run_campaign(spec, tmp_path, workers=1)
        assert run.executed_cells == 0
        assert run.resumed_cells == len(run.records)
        assert artifact_bytes(tmp_path) == before


class TestCheckpointGuards:
    def test_checkpoint_for_different_spec_refused(
        self, reference, tmp_path, tiny_raw
    ):
        spec, _ = reference
        with pytest.raises(_Kill):
            run_campaign(spec, tmp_path, workers=1, hooks=_KillAfter(1))
        from repro.campaigns import parse_campaign_spec

        tiny_raw["seed"] = 8  # different campaign, same directory
        other = parse_campaign_spec(tiny_raw)
        with pytest.raises(ConfigurationError, match="different"):
            run_campaign(other, tmp_path, workers=1)

    def test_resume_false_discards_checkpoint(
        self, reference, tmp_path, tiny_raw
    ):
        spec, reference_dir = reference
        with pytest.raises(_Kill):
            run_campaign(spec, tmp_path, workers=1, hooks=_KillAfter(1))
        from repro.campaigns import parse_campaign_spec

        tiny_raw["seed"] = 8
        other = parse_campaign_spec(tiny_raw)
        run = run_campaign(other, tmp_path, workers=1, resume=False)
        assert run.resumed_cells == 0
        assert run.executed_cells == len(run.records)
        # and the other spec's artifacts differ from the reference ones
        assert artifact_bytes(tmp_path) != artifact_bytes(reference_dir)

    def test_failed_cells_recorded_and_retried(self, tmp_path):
        """A cell whose trials fail is a recorded failure, not a crash,
        and a resume re-executes it instead of trusting the record."""
        from repro.campaigns import parse_campaign_spec

        raw = {
            "name": "bad",
            "seed": 1,
            "sweeps": [
                {
                    "family": "fig6",
                    "design": ["NoSuchDesign"],
                    "trials": 1,
                    "horizon": 300,
                }
            ],
        }
        spec = parse_campaign_spec(raw)
        run = run_campaign(spec, tmp_path, workers=1)
        assert len(run.failed_cells) == 1
        assert "NoSuchDesign" in (run.failed_cells[0].error or "")
        assert run.manifest["failed"] == 1
        again = run_campaign(spec, tmp_path, workers=1)
        assert again.resumed_cells == 0  # errored records never resume
        assert again.executed_cells == 1


class TestArtifacts:
    def test_timings_outside_the_digest(self, reference, tmp_path):
        """Tampering with timings.jsonl changes nothing the manifest
        certifies — wall-clock is explicitly machine-dependent."""
        spec, reference_dir = reference
        run_campaign(spec, tmp_path, workers=1)
        (tmp_path / TIMINGS_FILE).write_text(
            '{"cell_id":"x","seconds":999.0,"workers":1}\n',
            encoding="utf-8",
        )
        assert artifact_bytes(tmp_path) == artifact_bytes(reference_dir)
        manifest, records, timings = load_campaign_dir(tmp_path)
        assert timings[0]["seconds"] == 999.0
        assert manifest["cells"] == len(records)

    def test_cells_jsonl_is_canonical_grid_order(self, reference):
        spec, directory = reference
        cells = expand_campaign(spec)
        lines = (
            (directory / CELLS_FILE).read_text().strip().splitlines()
        )
        assert [json.loads(line)["cell_id"] for line in lines] == [
            cell.cell_id for cell in cells
        ]
        for line in lines:
            payload = json.loads(line)
            assert line == json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )

    def test_load_incomplete_dir_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no completed"):
            load_campaign_dir(tmp_path)
