"""Spec parsing and validation: strict keys, gated formats, digests."""

from __future__ import annotations

import json

import pytest

from repro.campaigns import (
    CampaignSpec,
    GateConfig,
    ToleranceRule,
    load_campaign_spec,
    parse_campaign_spec,
)
from repro.errors import ConfigurationError


def raw_spec(**overrides):
    raw = {
        "name": "demo",
        "seed": 3,
        "sweeps": [
            {"family": "fig6", "design": ["BlueScale"], "trials": 1}
        ],
    }
    raw.update(overrides)
    return raw


class TestParsing:
    def test_round_trip(self):
        spec = parse_campaign_spec(raw_spec())
        assert spec.name == "demo"
        assert spec.seed == 3
        assert spec.cell_count == 1
        assert spec.sweeps[0].family == "fig6"

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown campaign"):
            parse_campaign_spec(raw_spec(sweps=[]))

    def test_missing_name_rejected(self):
        raw = raw_spec()
        del raw["name"]
        with pytest.raises(ConfigurationError, match="no 'name'"):
            parse_campaign_spec(raw)

    def test_no_sweeps_rejected(self):
        with pytest.raises(ConfigurationError, match="no sweeps"):
            parse_campaign_spec(raw_spec(sweeps=[]))

    def test_unknown_sweep_key_rejected(self):
        raw = raw_spec(
            sweeps=[{"family": "fig6", "desgin": ["BlueScale"]}]
        )
        with pytest.raises(ConfigurationError, match="unknown keys"):
            parse_campaign_spec(raw)

    def test_family_specific_keys_stay_family_specific(self):
        """churn has no design axis; fig6 has no scenario axis."""
        with pytest.raises(ConfigurationError, match="unknown keys"):
            parse_campaign_spec(
                raw_spec(sweeps=[{"family": "churn", "design": ["X"]}])
            )
        with pytest.raises(ConfigurationError, match="unknown keys"):
            parse_campaign_spec(
                raw_spec(sweeps=[{"family": "fig6", "scenario": [2]}])
            )

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            parse_campaign_spec(raw_spec(sweeps=[{"family": "fig9"}]))

    def test_setting_as_list_rejected(self):
        with pytest.raises(ConfigurationError, match="scalar setting"):
            parse_campaign_spec(
                raw_spec(sweeps=[{"family": "fig6", "trials": [1, 2]}])
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            parse_campaign_spec(
                raw_spec(sweeps=[{"family": "fig6", "design": []}])
            )

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            parse_campaign_spec(
                raw_spec(
                    sweeps=[{"family": "fig6", "design": ["A", "A"]}]
                )
            )

    def test_axes_normalize_into_canonical_order(self):
        spec = parse_campaign_spec(
            raw_spec(
                sweeps=[
                    {
                        "family": "fig6",
                        "utilization": [0.5],
                        "design": ["BlueScale"],
                        "n": [8, 16],
                    }
                ]
            )
        )
        assert [name for name, _ in spec.sweeps[0].axes] == [
            "design",
            "n",
            "utilization",
        ]


class TestGateConfig:
    def test_unknown_gate_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown gate"):
            parse_campaign_spec(raw_spec(gate={"tolerances": []}))

    def test_bad_rule_shape_rejected(self):
        with pytest.raises(ConfigurationError, match="bad gate rule"):
            GateConfig.from_mapping({"rules": [{"kind": "exact"}]})

    def test_unknown_rule_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="tolerance kind"):
            ToleranceRule(pattern="*", kind="fuzzy")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            ToleranceRule(pattern="*", kind="relative", tolerance=-0.1)
        with pytest.raises(ConfigurationError, match="non-negative"):
            GateConfig(wall_clock_tolerance=-1.0)

    def test_rules_parse(self):
        gate = GateConfig.from_mapping(
            {
                "rules": [
                    {"pattern": "*/miss", "kind": "relative",
                     "tolerance": 0.05},
                    {"pattern": "*/obs/*", "kind": "ignore"},
                ],
                "wall_clock_tolerance": 2.0,
            }
        )
        assert gate.rules[0].tolerance == 0.05
        assert gate.rules[1].kind == "ignore"
        assert gate.wall_clock_tolerance == 2.0


class TestDigests:
    def test_digest_independent_of_key_order(self):
        forward = raw_spec()
        shuffled = dict(reversed(list(forward.items())))
        shuffled["sweeps"] = [
            dict(reversed(list(sweep.items())))
            for sweep in forward["sweeps"]
        ]
        assert (
            parse_campaign_spec(forward).digest()
            == parse_campaign_spec(shuffled).digest()
        )

    def test_digest_sensitive_to_values(self):
        assert (
            parse_campaign_spec(raw_spec(seed=3)).digest()
            != parse_campaign_spec(raw_spec(seed=4)).digest()
        )

    def test_spec_is_frozen_and_hashable(self):
        spec = parse_campaign_spec(raw_spec())
        assert isinstance(hash(spec), int)
        assert isinstance(spec, CampaignSpec)


class TestLoading:
    def test_json_file(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(raw_spec()), encoding="utf-8")
        assert load_campaign_spec(path).name == "demo"

    def test_toml_file_gated_on_tomllib(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text(
            'name = "demo"\nseed = 3\n\n[[sweeps]]\nfamily = "fig6"\n'
            'design = ["BlueScale"]\ntrials = 1\n',
            encoding="utf-8",
        )
        try:
            import tomllib  # noqa: F401
        except ImportError:
            with pytest.raises(ConfigurationError, match="tomllib"):
                load_campaign_spec(path)
        else:
            assert load_campaign_spec(path).name == "demo"

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "c.yaml"
        path.write_text("name: demo\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match=".json or .toml"):
            load_campaign_spec(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no campaign spec"):
            load_campaign_spec(tmp_path / "absent.json")

    def test_committed_ci_spec_parses(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent.parent
        spec = load_campaign_spec(repo / "campaigns" / "ci.json")
        assert spec.name == "ci-tiny"
        assert spec.cell_count == 4
