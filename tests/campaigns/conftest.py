"""Shared campaign-test scaffolding: a tiny real spec and a cheap one.

``tiny_raw``/``tiny_spec`` is a *real* fig6 sweep (2 designs × 2
utilizations at a very short horizon) small enough to execute in a few
hundred milliseconds — the resume, CLI and gate-round-trip tests run
it for real, because the byte-identity guarantees under test only mean
something against actual simulation output.
"""

from __future__ import annotations

import copy

import pytest

from repro.campaigns import parse_campaign_spec

TINY_RAW = {
    "name": "tiny",
    "seed": 7,
    "sweeps": [
        {
            "family": "fig6",
            "design": ["AXI-IC^RT", "BlueScale"],
            "n": 5,
            "utilization": [0.4, 0.7],
            "trials": 1,
            "horizon": 400,
            "drain": 200,
        }
    ],
    "gate": {"wall_clock_tolerance": 25.0},
}


@pytest.fixture
def tiny_raw():
    return copy.deepcopy(TINY_RAW)


@pytest.fixture
def tiny_spec(tiny_raw):
    return parse_campaign_spec(tiny_raw)
