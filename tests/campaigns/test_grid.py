"""Property tests for grid expansion (hypothesis).

The campaign machinery's whole byte-identity story rests on three
expansion properties; each is pinned here on randomized specs:

* deterministic order — the cell list is a pure function of the
  normalized spec, with exact cartesian cell counts;
* key-order invariance — shuffling every mapping in the spec *file*
  changes neither the spec digest, the expanded grid, nor its digest;
* disjoint seed streams — no two cells share a cell seed, and the
  actual per-trial seed streams the families derive from those cell
  seeds never overlap.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import (
    expand_campaign,
    grid_digest,
    parse_campaign_spec,
)
from repro.campaigns.families import cell_trial_specs
from repro.campaigns.spec import AXIS_ORDER

DESIGNS = ("AXI-IC^RT", "BlueTree", "BlueScale", "GSMTree-TDM")

# Axis value pools, deliberately *unvalidated* values allowed: expansion
# is pure — family adapters validate at run time, not expansion time.
AXIS_POOLS = {
    "design": st.lists(
        st.sampled_from(DESIGNS), min_size=1, max_size=3, unique=True
    ),
    "n": st.lists(
        st.sampled_from((4, 5, 8, 16, 64)),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    "utilization": st.lists(
        st.sampled_from((0.2, 0.4, 0.5, 0.7, 0.9)),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    "sim_backend": st.lists(
        st.sampled_from(("scalar", "batched")),
        min_size=1,
        max_size=2,
        unique=True,
    ),
}


@st.composite
def sweep_blocks(draw):
    axes = draw(
        st.lists(
            st.sampled_from(sorted(AXIS_POOLS)),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    block = {"family": "fig6"}
    for axis in axes:
        block[axis] = draw(AXIS_POOLS[axis])
    block["trials"] = draw(st.integers(min_value=1, max_value=3))
    block["horizon"] = draw(st.sampled_from((300, 400, 500)))
    return block


@st.composite
def campaign_raws(draw):
    return {
        "name": draw(st.sampled_from(("alpha", "beta"))),
        "seed": draw(st.integers(min_value=0, max_value=2**32)),
        "sweeps": draw(
            st.lists(sweep_blocks(), min_size=1, max_size=3)
        ),
    }


def shuffle_mapping(mapping, rng):
    """The same mapping with every dict's key order randomized."""
    items = list(mapping.items())
    rng.shuffle(items)
    shuffled = {}
    for key, value in items:
        if isinstance(value, dict):
            value = shuffle_mapping(value, rng)
        elif isinstance(value, list):
            value = [
                shuffle_mapping(entry, rng)
                if isinstance(entry, dict)
                else entry
                for entry in value
            ]
        shuffled[key] = value
    return shuffled


class TestExpansionProperties:
    @given(raw=campaign_raws())
    @settings(max_examples=50, deadline=None)
    def test_exact_cartesian_cell_counts(self, raw):
        spec = parse_campaign_spec(raw)
        cells = expand_campaign(spec)
        expected = 0
        for sweep in raw["sweeps"]:
            count = 1
            for key, value in sweep.items():
                if isinstance(value, list):
                    count *= len(value)
            expected += count
        assert len(cells) == expected == spec.cell_count
        assert [cell.index for cell in cells] == list(range(len(cells)))

    @given(raw=campaign_raws())
    @settings(max_examples=50, deadline=None)
    def test_deterministic_order_and_axis_nesting(self, raw):
        spec = parse_campaign_spec(raw)
        first = expand_campaign(spec)
        second = expand_campaign(spec)
        assert first == second
        # within each sweep the coordinates walk the cartesian product
        # in AXIS_ORDER with the spec's value order per axis
        for sweep_index, sweep in enumerate(spec.sweeps):
            mine = [c for c in first if c.sweep == sweep_index]
            names = [name for name, _ in sweep.axes]
            assert names == [a for a in AXIS_ORDER if a in names]
            expected = [
                tuple(zip(names, point))
                for point in itertools.product(
                    *[values for _, values in sweep.axes]
                )
            ]
            assert [c.coords for c in mine] == expected

    @given(raw=campaign_raws(), shuffle_seed=st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_key_order_shuffle_invariance(self, raw, shuffle_seed):
        shuffled = shuffle_mapping(raw, random.Random(shuffle_seed))
        spec = parse_campaign_spec(raw)
        spec_shuffled = parse_campaign_spec(shuffled)
        assert spec == spec_shuffled
        assert spec.digest() == spec_shuffled.digest()
        assert grid_digest(expand_campaign(spec)) == grid_digest(
            expand_campaign(spec_shuffled)
        )

    @given(raw=campaign_raws())
    @settings(max_examples=50, deadline=None)
    def test_cell_seeds_unique_per_workload(self, raw):
        """Seeds are unique per *workload*: cells differing only in an
        engine-backend axis share a seed (they must replay identical
        trials for the gate's differential tag check); all other cells
        get distinct seeds."""
        from repro.campaigns.grid import ENGINE_AXES

        cells = expand_campaign(parse_campaign_spec(raw))
        assert len({cell.cell_id for cell in cells}) == len(cells)
        by_workload = {}
        for cell in cells:
            workload = (
                cell.family,
                cell.sweep,
                tuple(
                    (axis, value)
                    for axis, value in cell.coords
                    if axis not in ENGINE_AXES
                ),
            )
            by_workload.setdefault(workload, set()).add(cell.seed)
        # one seed per workload, all workload seeds distinct
        assert all(len(seeds) == 1 for seeds in by_workload.values())
        all_seeds = {seeds.pop() for seeds in by_workload.values()}
        assert len(all_seeds) == len(by_workload)


class TestSeedStreamDisjointness:
    def test_per_cell_trial_seed_streams_never_overlap(self, tiny_spec):
        """The *actual* trial seeds the family adapters derive (not
        just the cell seeds) are pairwise disjoint across cells."""
        cells = expand_campaign(tiny_spec)
        streams = [
            {spec.seed for spec in cell_trial_specs(cell)}
            for cell in cells
        ]
        for a, b in itertools.combinations(range(len(streams)), 2):
            assert not streams[a] & streams[b], (a, b)
        assert all(streams)

    def test_engine_sibling_cells_share_trial_streams(self):
        """Cells that differ only in ``sim_backend`` run the *same*
        trials — that equality is what makes a backend sweep a
        differential test rather than two unrelated experiments."""
        cells = expand_campaign(
            parse_campaign_spec(
                {
                    "name": "diff",
                    "seed": 5,
                    "sweeps": [
                        {
                            "family": "fig6",
                            "design": ["BlueScale"],
                            "n": 5,
                            "sim_backend": ["scalar", "batched"],
                            "trials": 2,
                            "horizon": 300,
                        }
                    ],
                }
            )
        )
        assert len(cells) == 2 and cells[0].seed == cells[1].seed
        assert cell_trial_specs(cells[0]) == cell_trial_specs(cells[1])

    def test_grid_reslicing_keeps_cell_seeds(self, tiny_raw):
        """Dropping a sibling axis value must not move the surviving
        cells' seeds — seeds key off the cell id, not list position."""
        full = expand_campaign(parse_campaign_spec(tiny_raw))
        tiny_raw["sweeps"][0]["utilization"] = [0.7]
        sliced = expand_campaign(parse_campaign_spec(tiny_raw))
        full_seeds = {cell.cell_id: cell.seed for cell in full}
        for cell in sliced:
            assert cell.seed == full_seeds[cell.cell_id]
