"""Family adapters: cells map onto the existing experiment triples."""

from __future__ import annotations

import pytest

from repro.campaigns import expand_campaign, parse_campaign_spec
from repro.campaigns.families import (
    FAMILIES,
    cell_trial_specs,
    family_axes,
    parse_fault_axis,
    run_cell,
)
from repro.campaigns.spec import AXIS_ORDER
from repro.errors import ConfigurationError, SimulationError


def one_cell(sweep):
    spec = parse_campaign_spec(
        {"name": "f", "seed": 5, "sweeps": [sweep]}
    )
    cells = expand_campaign(spec)
    assert len(cells) == 1
    return cells[0]


class TestRegistry:
    def test_every_family_axis_is_a_known_axis(self):
        for family in FAMILIES.values():
            assert set(family.axes) <= set(AXIS_ORDER), family.name

    def test_family_axes_includes_extra_settings(self):
        assert "observability" in family_axes("fig6")
        assert "analysis" in family_axes("fig7")
        assert "fault" in family_axes("isolation")
        assert "scenario" in family_axes("churn")

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            family_axes("fig9")


class TestFaultAxis:
    def test_parses_size_x_every(self):
        assert parse_fault_axis("24x60") == (24, 60)

    @pytest.mark.parametrize("bad", ["24", "x", "ax b", "0x60", "24x0"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_axis(bad)


class TestCellValidation:
    def test_unknown_design_fails_at_run_time(self):
        cell = one_cell(
            {"family": "fig6", "design": ["Nope"], "trials": 1,
             "horizon": 300}
        )
        with pytest.raises(ConfigurationError, match="unknown design"):
            run_cell(cell)

    def test_out_of_range_utilization_rejected(self):
        cell = one_cell(
            {"family": "fig6", "design": ["BlueScale"],
             "utilization": [1.5], "trials": 1, "horizon": 300}
        )
        with pytest.raises(ConfigurationError, match="utilization"):
            run_cell(cell)


class TestRunCell:
    def test_fig6_cell_metrics_and_trace_tags(self):
        cell = one_cell(
            {"family": "fig6", "design": ["BlueScale"], "n": 5,
             "utilization": [0.5], "trials": 2, "horizon": 400,
             "drain": 200}
        )
        metrics = run_cell(cell)
        assert metrics.scalars["cell/trials"] == 2.0
        assert "BlueScale/miss" in metrics.scalars
        assert metrics.tags["cell_id"] == cell.cell_id
        # combined digest: sha256 hex over the per-trial trace digests
        assert len(metrics.tags["BlueScale/trace"]) == 64

    def test_trial_count_matches_spec(self):
        cell = one_cell(
            {"family": "fig6", "design": ["BlueScale"], "n": 5,
             "utilization": [0.5], "trials": 3, "horizon": 300}
        )
        assert len(cell_trial_specs(cell)) == 3

    def test_backend_axis_pins_and_restores_default(self):
        from repro.sim.backend import (
            get_default_sim_backend,
            set_default_sim_backend,
        )

        previous = set_default_sim_backend("batched")
        try:
            cell = one_cell(
                {"family": "fig6", "design": ["BlueScale"], "n": 5,
                 "utilization": [0.5], "sim_backend": ["scalar"],
                 "trials": 1, "horizon": 300}
            )
            run_cell(cell)
            assert get_default_sim_backend() == "batched"
        finally:
            set_default_sim_backend(previous)

    def test_backend_axis_value_is_bit_identical(self):
        base = {
            "family": "fig6", "design": ["BlueScale"], "n": 5,
            "utilization": [0.5], "trials": 1, "horizon": 300,
        }
        tags = {}
        for backend in ("scalar", "batched"):
            cell = one_cell({**base, "sim_backend": [backend]})
            tags[backend] = run_cell(cell).tags["BlueScale/trace"]
        assert tags["scalar"] == tags["batched"]

    def test_failed_trial_fails_whole_cell(self, monkeypatch):
        cell = one_cell(
            {"family": "fig6", "design": ["BlueScale"], "n": 5,
             "utilization": [0.5], "trials": 1, "horizon": 300}
        )
        import dataclasses

        def boom(spec):
            raise RuntimeError("injected")

        # the runner is resolved at build time inside run_cell's plan,
        # so swap in a family whose build hands the executor a failing
        # runner (CellFamily is frozen — replace the registry entry)
        from repro.campaigns import families

        original = families.FAMILIES["fig6"]

        def patched(c):
            runner, specs, fold = original.build(c)
            return boom, specs, fold

        monkeypatch.setitem(
            families.FAMILIES,
            "fig6",
            dataclasses.replace(original, build=patched),
        )
        with pytest.raises(SimulationError, match="1 of 1"):
            run_cell(cell)
