"""Summarizer: markdown report + JSONL series from campaign artifacts."""

from __future__ import annotations

import json

from repro.campaigns import golden_payload, summarize_campaign
from repro.campaigns.executor import CellRecord
from repro.campaigns.gate import CampaignArtifacts
from repro.campaigns.spec import canonical_json
from repro.campaigns.summarize import render_report, render_series


def record(cell_id, index, scalars, error=None, family="fig6",
           coords=(("design", "A"),)):
    return CellRecord(
        cell_id=cell_id,
        index=index,
        family=family,
        seed=1,
        coords=tuple(coords),
        settings=(("trials", 2),),
        scalars=tuple(scalars),
        tags=(("trace", "t"),),
        error=error,
    )


def two_family_artifacts():
    records = [
        record(
            "fig6/s0/design=A",
            0,
            (
                ("A/miss", 0.25),
                ("A/obs/inject_count", 10.0),
                ("A/obs/latency_p95", 6.0),
                ("cell/trials", 2.0),
            ),
        ),
        record(
            "fig6/s0/design=B",
            1,
            (
                ("B/miss", 0.5),
                ("A/obs/inject_count", 4.0),
                ("A/obs/latency_p95", 2.0),
                ("cell/trials", 2.0),
            ),
            coords=(("design", "B"),),
        ),
        record(
            "churn/s1/scenario=2",
            2,
            (),
            family="churn",
            coords=(("scenario", 2),),
            error="SimulationError: boom",
        ),
    ]
    manifest = {
        "name": "demo",
        "cells": 3,
        "failed": 1,
        "spec_digest": "aaa",
        "grid_digest": "bbb",
        "cells_digest": "ccc",
    }
    timings = [
        {"cell_id": "fig6/s0/design=A", "seconds": 1.5, "workers": 1},
        {"cell_id": "fig6/s0/design=B", "seconds": 0.5, "workers": 1},
    ]
    return CampaignArtifacts(manifest, records, timings)


class TestRenderReport:
    def test_header_tables_failures_and_wall_clock(self):
        report = render_report(two_family_artifacts())
        assert "# Campaign report — demo" in report
        assert "cells: 3 (1 failed)" in report
        assert "`aaa`" in report and "`ccc`" in report
        assert "total cell wall-clock: 2.00 s" in report
        # one table per family, in first-seen order
        assert report.index("### fig6") < report.index("### churn")
        assert "design=A" in report and "design=B" in report
        assert "FAILED" in report and "ok" in report
        assert "## Failures" in report
        assert "SimulationError: boom" in report

    def test_obs_scalars_folded_not_tabulated(self):
        report = render_report(two_family_artifacts())
        # counters sum, percentiles average, and obs columns stay out
        # of the per-family tables
        assert "Observability (folded across cells)" in report
        assert "| 14.000 |" in report  # 10 + 4 inject_count
        assert "| 4.000 |" in report  # mean(6, 2) latency_p95
        fig6_table = report.split("### fig6")[1].split("###")[0]
        assert "obs" not in fig6_table

    def test_no_timings_no_wall_clock_line(self):
        artifacts = two_family_artifacts()
        artifacts.timings = []
        assert "wall-clock" not in render_report(artifacts)


class TestRenderSeries:
    def test_one_canonical_line_per_cell(self):
        series = render_series(two_family_artifacts())
        lines = series.strip().splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["cell_id"] == "fig6/s0/design=A"
        assert first["coords"] == {"design": "A"}
        assert first["seconds"] == 1.5
        assert first["error"] is None
        failed = json.loads(lines[2])
        assert failed["error"] == "SimulationError: boom"
        assert "seconds" not in failed
        for line in lines:
            assert line == canonical_json(json.loads(line))


class TestSummarizeCampaign:
    def test_from_golden_file(self, tmp_path):
        payload = golden_payload(two_family_artifacts(), comment="c")
        golden = tmp_path / "golden.json"
        golden.write_text(canonical_json(payload) + "\n", encoding="utf-8")
        report_path, series_path = summarize_campaign(golden)
        assert report_path.parent == tmp_path
        assert "# Campaign report — demo" in report_path.read_text()
        assert len(series_path.read_text().strip().splitlines()) == 3

    def test_out_dir_override(self, tmp_path):
        payload = golden_payload(two_family_artifacts(), comment="c")
        golden = tmp_path / "golden.json"
        golden.write_text(canonical_json(payload) + "\n", encoding="utf-8")
        out = tmp_path / "elsewhere"
        report_path, series_path = summarize_campaign(golden, out_dir=out)
        assert report_path.parent == out and series_path.parent == out
