"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests must not depend on global random state."""
    return random.Random(0xB1DE5CA1)


@pytest.fixture
def small_taskset() -> TaskSet:
    """A comfortable task set (U = 0.2) used across analysis tests."""
    return TaskSet(
        [
            PeriodicTask(period=40, wcet=4, name="a"),
            PeriodicTask(period=100, wcet=10, name="b"),
        ]
    )


@pytest.fixture
def tight_taskset() -> TaskSet:
    """A heavily loaded task set (U = 0.9)."""
    return TaskSet(
        [
            PeriodicTask(period=10, wcet=5, name="hot"),
            PeriodicTask(period=20, wcet=8, name="warm"),
        ]
    )


def make_request(
    client_id: int = 0,
    release: int = 0,
    deadline: int | None = None,
    address: int = 0,
):
    """Convenience factory for MemoryRequest used across suites."""
    from repro.memory.request import MemoryRequest

    return MemoryRequest(
        client_id=client_id,
        release_cycle=release,
        absolute_deadline=deadline if deadline is not None else release + 100,
        address=address,
    )
