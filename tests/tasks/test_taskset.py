"""Unit tests for TaskSet."""

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def ts(*pairs):
    return TaskSet([PeriodicTask(period=p, wcet=c) for p, c in pairs])


class TestAggregates:
    def test_utilization_sums(self):
        taskset = ts((10, 1), (20, 5))
        assert taskset.utilization == Fraction(1, 10) + Fraction(1, 4)

    def test_empty_utilization_zero(self):
        assert TaskSet().utilization == 0

    def test_min_max_period(self):
        taskset = ts((30, 1), (10, 1), (20, 1))
        assert taskset.min_period == 10
        assert taskset.max_period == 30

    def test_min_period_of_empty_raises(self):
        with pytest.raises(ConfigurationError):
            TaskSet().min_period
        with pytest.raises(ConfigurationError):
            TaskSet().max_period

    def test_hyperperiod(self):
        assert ts((4, 1), (6, 1)).hyperperiod() == 12
        assert TaskSet().hyperperiod() == 1


class TestContainerProtocol:
    def test_len_iter_getitem(self):
        taskset = ts((10, 1), (20, 2))
        assert len(taskset) == 2
        assert [t.period for t in taskset] == [10, 20]
        assert taskset[1].wcet == 2

    def test_add_and_extend(self):
        taskset = TaskSet()
        taskset.add(PeriodicTask(period=5, wcet=1))
        taskset.extend([PeriodicTask(period=7, wcet=1)])
        assert len(taskset) == 2

    def test_constructor_copies_input_list(self):
        source = [PeriodicTask(period=5, wcet=1)]
        taskset = TaskSet(source)
        source.append(PeriodicTask(period=9, wcet=1))
        assert len(taskset) == 1


class TestPartitioning:
    def test_by_client_groups(self):
        tasks = [
            PeriodicTask(period=10, wcet=1, client_id=0),
            PeriodicTask(period=20, wcet=1, client_id=1),
            PeriodicTask(period=30, wcet=1, client_id=0),
        ]
        groups = TaskSet(tasks).by_client()
        assert sorted(groups) == [0, 1]
        assert len(groups[0]) == 2

    def test_by_client_requires_assignment(self):
        with pytest.raises(ConfigurationError):
            ts((10, 1)).by_client()

    def test_for_client_filters(self):
        tasks = [
            PeriodicTask(period=10, wcet=1, client_id=0),
            PeriodicTask(period=20, wcet=1, client_id=1),
        ]
        subset = TaskSet(tasks).for_client(1)
        assert len(subset) == 1
        assert subset[0].period == 20

    def test_for_client_missing_gives_empty(self):
        assert len(ts((10, 1)).for_client(9)) == 0

    def test_merged_with(self):
        merged = ts((10, 1)).merged_with(ts((20, 2)))
        assert len(merged) == 2


class TestTransforms:
    def test_scaled(self):
        scaled = ts((100, 10)).scaled(1.5)
        assert scaled[0].wcet == 15

    def test_sorted_by_period(self):
        ordered = ts((30, 1), (10, 1), (20, 1)).sorted_by_period()
        assert [t.period for t in ordered] == [10, 20, 30]

    def test_sorted_does_not_mutate_original(self):
        original = ts((30, 1), (10, 1))
        original.sorted_by_period()
        assert [t.period for t in original] == [30, 10]
