"""Unit and property tests for the workload generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tasks.generators import (
    assign_round_robin,
    generate_client_tasksets,
    generate_taskset,
    generate_transaction_taskset,
    log_uniform_periods,
    uunifast,
    uunifast_discard,
)
from repro.tasks.task import PeriodicTask


class TestUUniFast:
    def test_shares_sum_to_total(self, rng):
        shares = uunifast(rng, 10, 0.8)
        assert sum(shares) == pytest.approx(0.8)
        assert len(shares) == 10

    def test_all_shares_positive(self, rng):
        assert all(s >= 0 for s in uunifast(rng, 50, 2.0))

    def test_rejects_bad_input(self, rng):
        with pytest.raises(ConfigurationError):
            uunifast(rng, 0, 0.5)
        with pytest.raises(ConfigurationError):
            uunifast(rng, 5, 0.0)

    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 40),
        total=st.floats(min_value=0.05, max_value=4.0),
    )
    @settings(max_examples=50)
    def test_sum_property(self, seed, n, total):
        shares = uunifast(random.Random(seed), n, total)
        assert sum(shares) == pytest.approx(total, rel=1e-9)


class TestUUniFastDiscard:
    def test_respects_cap(self, rng):
        shares = uunifast_discard(rng, 8, 4.0, cap=1.0)
        assert all(s <= 1.0 for s in shares)
        assert sum(shares) == pytest.approx(4.0)

    def test_impossible_cap_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            uunifast_discard(rng, 2, 3.0, cap=1.0)

    def test_nonpositive_cap_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            uunifast_discard(rng, 2, 0.5, cap=0)


class TestLogUniformPeriods:
    def test_within_range(self, rng):
        periods = log_uniform_periods(rng, 100, 50, 5000)
        assert all(50 <= p <= 5000 for p in periods)

    def test_granularity_snapping(self, rng):
        periods = log_uniform_periods(rng, 50, 100, 1000, granularity=10)
        assert all(p % 10 == 0 or p in (100, 1000) for p in periods)

    def test_rejects_bad_range(self, rng):
        with pytest.raises(ConfigurationError):
            log_uniform_periods(rng, 5, 100, 50)
        with pytest.raises(ConfigurationError):
            log_uniform_periods(rng, 5, 0, 50)
        with pytest.raises(ConfigurationError):
            log_uniform_periods(rng, 5, 10, 50, granularity=0)

    def test_spans_decades(self, rng):
        # Log-uniform draws should populate both ends of a wide range.
        periods = log_uniform_periods(rng, 500, 10, 10_000)
        assert min(periods) < 100
        assert max(periods) > 1000


class TestGenerateTaskset:
    def test_utilization_near_target(self, rng):
        taskset = generate_taskset(rng, 20, 0.5)
        assert taskset.utilization_float == pytest.approx(0.5, abs=0.15)

    def test_all_tasks_valid(self, rng):
        taskset = generate_taskset(rng, 30, 0.7)
        for task in taskset:
            assert 1 <= task.wcet <= task.period


class TestGenerateTransactionTaskset:
    def test_wcets_within_range(self, rng):
        taskset = generate_transaction_taskset(rng, 20, 0.4, wcet_min=1, wcet_max=8)
        assert all(1 <= t.wcet <= 8 for t in taskset)

    def test_periods_within_range(self, rng):
        taskset = generate_transaction_taskset(
            rng, 20, 0.4, period_min=50, period_max=9000
        )
        assert all(50 <= t.period <= 9000 for t in taskset)

    def test_utilization_tracks_target(self, rng):
        taskset = generate_transaction_taskset(rng, 25, 0.6)
        # Integer rounding and period clamping change it a little.
        assert taskset.utilization_float == pytest.approx(0.6, abs=0.2)

    def test_rejects_bad_wcet_range(self, rng):
        with pytest.raises(ConfigurationError):
            generate_transaction_taskset(rng, 5, 0.5, wcet_min=4, wcet_max=2)


class TestGenerateClientTasksets:
    def test_every_client_present_and_assigned(self, rng):
        tasksets = generate_client_tasksets(rng, 16, 3, 0.8)
        assert sorted(tasksets) == list(range(16))
        for client, taskset in tasksets.items():
            assert len(taskset) == 3
            assert all(t.client_id == client for t in taskset)

    def test_system_utilization_near_target(self, rng):
        tasksets = generate_client_tasksets(rng, 16, 3, 0.8)
        total = sum(ts.utilization_float for ts in tasksets.values())
        assert total == pytest.approx(0.8, abs=0.25)

    def test_no_client_overloaded(self, rng):
        tasksets = generate_client_tasksets(rng, 4, 4, 2.5)
        for taskset in tasksets.values():
            assert taskset.utilization_float <= 1.0 + 1e-6

    def test_rejects_zero_clients(self, rng):
        with pytest.raises(ConfigurationError):
            generate_client_tasksets(rng, 0, 3, 0.5)

    def test_deterministic_for_seed(self):
        a = generate_client_tasksets(random.Random(5), 8, 2, 0.6)
        b = generate_client_tasksets(random.Random(5), 8, 2, 0.6)
        for client in a:
            assert [(t.period, t.wcet) for t in a[client]] == [
                (t.period, t.wcet) for t in b[client]
            ]


class TestAssignRoundRobin:
    def test_cycles_over_clients(self):
        tasks = [PeriodicTask(period=10 * (i + 1), wcet=1) for i in range(5)]
        assigned = assign_round_robin(tasks, 2)
        assert [t.client_id for t in assigned] == [0, 1, 0, 1, 0]

    def test_rejects_zero_clients(self):
        with pytest.raises(ConfigurationError):
            assign_round_robin([], 0)
