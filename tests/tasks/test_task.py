"""Unit tests for the periodic task model."""

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.tasks.task import Job, PeriodicTask


class TestPeriodicTask:
    def test_basic_construction(self):
        task = PeriodicTask(period=100, wcet=10, name="t")
        assert task.deadline == 100  # implicit deadline
        assert task.utilization == Fraction(1, 10)

    def test_utilization_is_exact(self):
        task = PeriodicTask(period=3, wcet=1)
        assert task.utilization == Fraction(1, 3)
        # no float drift: 3 * 1/3 == 1 exactly
        assert 3 * task.utilization == 1

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask(period=0, wcet=1)

    def test_rejects_nonpositive_wcet(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask(period=10, wcet=0)

    def test_rejects_overutilizing_task(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask(period=5, wcet=6)

    def test_full_utilization_allowed(self):
        task = PeriodicTask(period=5, wcet=5)
        assert task.utilization == 1

    def test_with_client(self):
        task = PeriodicTask(period=10, wcet=2, name="x")
        assigned = task.with_client(3)
        assert assigned.client_id == 3
        assert assigned.period == 10 and assigned.wcet == 2
        assert task.client_id is None  # original untouched (frozen)

    def test_scaled_wcet(self):
        task = PeriodicTask(period=100, wcet=10)
        assert task.scaled(2.0).wcet == 20
        assert task.scaled(0.5).wcet == 5

    def test_scaled_clamps_to_period(self):
        task = PeriodicTask(period=10, wcet=8)
        assert task.scaled(5.0).wcet == 10

    def test_scaled_never_below_one(self):
        task = PeriodicTask(period=10, wcet=1)
        assert task.scaled(0.01).wcet == 1

    def test_frozen(self):
        task = PeriodicTask(period=10, wcet=2)
        with pytest.raises(AttributeError):
            task.period = 20


class TestJob:
    def test_deadline_and_remaining(self):
        task = PeriodicTask(period=50, wcet=5)
        job = Job(task=task, release=100, job_index=2)
        assert job.absolute_deadline == 150
        assert job.remaining == 5
        assert not job.finished

    def test_execute_consumes_work(self):
        job = Job(task=PeriodicTask(period=10, wcet=3), release=0, job_index=0)
        assert job.execute(2) == 2
        assert job.remaining == 1
        assert job.execute(5) == 1  # only what's left
        assert job.finished

    def test_execute_on_finished_job_is_noop(self):
        job = Job(task=PeriodicTask(period=10, wcet=1), release=0, job_index=0)
        job.execute()
        assert job.execute() == 0

    def test_explicit_remaining(self):
        job = Job(
            task=PeriodicTask(period=10, wcet=5), release=0, job_index=0, remaining=2
        )
        assert job.remaining == 2
