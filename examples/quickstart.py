"""Quickstart: build a 16-client BlueScale system and simulate it.

This walks the full pipeline of the library in ~50 lines:

1. generate a synthetic periodic workload for 16 clients;
2. run the interface-selection composition (paper Sec. 5) to get every
   Scale Element's server-task parameters;
3. wire clients -> BlueScale quadtree -> memory controller;
4. simulate and report latency / deadline statistics.

Run:  python examples/quickstart.py
"""

import random

from repro.analysis import compose
from repro.clients import TrafficGenerator
from repro.core import BlueScaleInterconnect
from repro.soc import SoCSimulation
from repro.tasks import generate_client_tasksets
from repro.topology import quadtree


def main() -> None:
    n_clients = 16
    rng = random.Random(2022)

    # 1. A workload: three transaction tasks per client, ~80% system load.
    tasksets = generate_client_tasksets(
        rng, n_clients, tasks_per_client=3, system_utilization=0.80
    )
    total = sum(ts.utilization_float for ts in tasksets.values())
    print(f"workload: {n_clients} clients, total utilization {total:.2f}")

    # 2. Interface selection, level by level (leaf SEs up to the root).
    topology = quadtree(n_clients)
    composition = compose(topology, tasksets)
    print(
        f"composition: schedulable={composition.schedulable}, "
        f"root bandwidth {float(composition.root_bandwidth):.3f}"
    )
    root_interfaces = composition.interfaces[(0, 0)]
    for port, interface in enumerate(root_interfaces):
        print(
            f"  root SE port {port}: (Pi={interface.period}, "
            f"Theta={interface.budget})  bandwidth={interface.bandwidth_float:.3f}"
        )

    # 3. Build the hardware: quadtree of Scale Elements + unit-service
    #    memory controller (wired by SoCSimulation).
    interconnect = BlueScaleInterconnect(n_clients, buffer_capacity=2)
    interconnect.apply_composition(composition)
    clients = [
        TrafficGenerator(client_id, taskset)
        for client_id, taskset in tasksets.items()
    ]

    # 4. Simulate 50k transaction slots (+ drain) and report.
    simulation = SoCSimulation(clients, interconnect)
    result = simulation.run(horizon=50_000)
    response = result.response_summary()
    print(
        f"simulated: {result.requests_completed} transactions, "
        f"deadline miss ratio {result.deadline_miss_ratio:.4%}"
    )
    print(
        f"response time: mean {response.mean:.1f}, p99 {response.p99:.0f}, "
        f"max {response.maximum:.0f} slots"
    )
    print(f"mean blocking latency: {result.mean_blocking:.2f} slots")


if __name__ == "__main__":
    main()
