"""Automotive case study (paper Sec. 6.4) at one utilization point.

Builds the paper's system-level scenario — 16 processors running the
ten safety + ten function automotive tasks, one DNN accelerator, and
interference tasks raising the system to 70% utilization — then runs
it on BlueScale *and* on BlueTree, and prints a per-task comparison of
worst-case response behaviour and deadline misses.

Run:  python examples/automotive_case_study.py
"""

import random
from collections import defaultdict

from repro.clients import AcceleratorClient, ProcessorClient
from repro.experiments.factory import DEFAULT_FACTORY_CONFIG, build_interconnect
from repro.soc import SoCSimulation
from repro.tasks import TaskSet
from repro.workloads import (
    assign_case_study,
    build_interference,
    dnn_interference_taskset,
)

N_PROCESSORS = 16
TARGET_UTILIZATION = 0.70
HORIZON = 30_000


def build_system(interconnect_name: str, rng: random.Random):
    application = assign_case_study(N_PROCESSORS)
    accelerator_id = N_PROCESSORS
    accelerator_tasks = dnn_interference_taskset(client_id=accelerator_id)
    utilizations = {c: ts.utilization_float for c, ts in application.items()}
    utilizations[accelerator_id] = accelerator_tasks.utilization_float
    interference = build_interference(rng, utilizations, TARGET_UTILIZATION)

    combined = {
        c: application[c].merged_with(interference.get(c, TaskSet()))
        for c in application
    }
    combined[accelerator_id] = accelerator_tasks.merged_with(
        interference.get(accelerator_id, TaskSet())
    )
    n_clients = N_PROCESSORS + 1
    interconnect = build_interconnect(
        interconnect_name, n_clients, combined, DEFAULT_FACTORY_CONFIG
    )
    clients = [
        ProcessorClient(
            c,
            application[c],
            interference.get(c, TaskSet()),
            rng=random.Random(c),
        )
        for c in application
    ]
    clients.append(
        AcceleratorClient(
            accelerator_id,
            combined[accelerator_id],
            bandwidth_cap=1.0 / n_clients,
            rng=random.Random(accelerator_id),
        )
    )
    return clients, interconnect


def run(interconnect_name: str) -> None:
    rng = random.Random("case-study")
    clients, interconnect = build_system(interconnect_name, rng)
    simulation = SoCSimulation(clients, interconnect)
    result = simulation.run(HORIZON, drain=8_000)

    # Per-task lateness statistics from the job records.
    worst_lateness: dict[str, int] = defaultdict(lambda: -(10**9))
    misses: dict[str, int] = defaultdict(int)
    jobs: dict[str, int] = defaultdict(int)
    for client in clients[:-1]:  # processors only (the HA is load)
        for job in client.jobs:
            if not job.monitored or job.deadline > HORIZON:
                continue
            jobs[job.task_name] += 1
            if job.finished and job.dropped == 0:
                lateness = job.last_completion - job.deadline
            else:
                lateness = 10**9  # never finished
            worst_lateness[job.task_name] = max(
                worst_lateness[job.task_name], lateness
            )
            if not job.met_deadline:
                misses[job.task_name] += 1

    print(f"=== {interconnect_name} ===")
    print(
        f"requests completed: {result.requests_completed}, "
        f"overall miss ratio {result.deadline_miss_ratio:.4%}"
    )
    print(f"{'task':<18} {'jobs':>5} {'misses':>7} {'worst lateness':>15}")
    for task in sorted(jobs):
        lateness = worst_lateness[task]
        shown = "unfinished" if lateness >= 10**8 else str(lateness)
        print(f"{task:<18} {jobs[task]:>5} {misses[task]:>7} {shown:>15}")
    total_misses = sum(misses.values())
    verdict = "SUCCESS" if total_misses == 0 else f"{total_misses} job misses"
    print(f"trial outcome: {verdict}\n")


def main() -> None:
    for name in ("BlueScale", "BlueTree"):
        run(name)


if __name__ == "__main__":
    main()
