"""Hardware design-space exploration with the cost/frequency models.

Sweeps the client count and prints, for every interconnect in the
paper's Table 1, the projected FPGA resources, power and maximum
frequency — the data behind Table 1 and Fig. 5 — plus a what-if:
how a deeper Scale-Element port buffer trades area for scheduling
slack.

Run:  python examples/design_space_exploration.py
"""

from repro.experiments.reporting import format_table
from repro.hardware import (
    area_fraction,
    axi_icrt_cost,
    axi_icrt_fmax_mhz,
    bluescale_cost,
    bluescale_fmax_mhz,
    bluetree_cost,
    bluetree_smooth_cost,
    gsmtree_cost,
    legacy_fmax_mhz,
    legacy_system_cost,
    scale_element_cost,
)


def resource_sweep() -> None:
    rows = []
    for n in (4, 8, 16, 32, 64, 128):
        blue = bluescale_cost(n)
        axi = axi_icrt_cost(n)
        tree = bluetree_cost(n)
        rows.append(
            [
                n,
                blue.luts,
                axi.luts,
                tree.luts,
                gsmtree_cost(n).luts,
                bluetree_smooth_cost(n).luts,
                f"{blue.power_mw:.0f}/{axi.power_mw:.0f}",
            ]
        )
    print(
        format_table(
            ["clients", "BlueScale", "AXI-IC^RT", "BlueTree", "GSMTree",
             "BT-Smooth", "power BS/AXI (mW)"],
            rows,
            title="LUT consumption vs client count",
        )
    )


def frequency_sweep() -> None:
    rows = []
    for n in (4, 8, 16, 32, 64, 128):
        legacy = legacy_fmax_mhz(n)
        axi = axi_icrt_fmax_mhz(n)
        blue = bluescale_fmax_mhz(n)
        limiter = "interconnect" if axi < legacy else "cores"
        rows.append([n, f"{legacy:.0f}", f"{axi:.0f}", f"{blue:.0f}", limiter])
    print(
        format_table(
            ["clients", "legacy fmax", "AXI-IC^RT fmax", "BlueScale fmax",
             "AXI system limited by"],
            rows,
            title="Maximum frequency vs client count (MHz)",
        )
    )


def buffer_depth_tradeoff() -> None:
    rows = []
    for depth in (2, 4, 8, 16):
        se = scale_element_cost(buffer_depth=depth)
        rows.append([depth, se.luts, se.registers, f"{se.power_mw:.1f}"])
    print(
        format_table(
            ["port-buffer depth", "LUTs/SE", "registers/SE", "power/SE (mW)"],
            rows,
            title="Scale Element cost vs random-access-buffer depth",
        )
    )


def platform_budget() -> None:
    rows = []
    for n in (16, 64, 128):
        legacy = legacy_system_cost(n)
        with_blue = legacy + bluescale_cost(n)
        with_axi = legacy + axi_icrt_cost(n)
        rows.append(
            [
                n,
                f"{area_fraction(legacy):.1%}",
                f"{area_fraction(with_blue):.1%}",
                f"{area_fraction(with_axi):.1%}",
            ]
        )
    print(
        format_table(
            ["clients", "legacy", "legacy+BlueScale", "legacy+AXI-IC^RT"],
            rows,
            title="Platform area budget (fraction of a VC707)",
        )
    )


def synthesis_report() -> None:
    from repro.hardware import format_synthesis_report, synthesize_bluescale_system

    print(format_synthesis_report(synthesize_bluescale_system(64)))


def main() -> None:
    resource_sweep()
    print()
    frequency_sweep()
    print()
    buffer_depth_tradeoff()
    print()
    platform_budget()
    print()
    synthesis_report()


if __name__ == "__main__":
    main()
