"""Paired comparison via trace capture and replay.

Records the exact transaction stream one trial produces, saves it to
disk, then replays the *identical* traffic against all six evaluated
interconnects — removing workload sampling noise from the comparison
(a paired experiment instead of independent trials).

Run:  python examples/trace_replay.py
"""

import random
import tempfile
from pathlib import Path

from repro.clients import TrafficGenerator
from repro.experiments.factory import INTERCONNECT_NAMES, build_interconnect
from repro.sim.trace import (
    TraceReplayClient,
    load_trace,
    save_trace,
    split_by_client,
    trace_from_clients,
)
from repro.soc import SoCSimulation
from repro.tasks import generate_client_tasksets

N_CLIENTS = 16
HORIZON = 15_000


def main() -> None:
    # 1. Capture: run a generator-driven trial once.
    rng = random.Random(2022)
    tasksets = generate_client_tasksets(
        rng, N_CLIENTS, tasks_per_client=3, system_utilization=0.8
    )
    generators = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
    capture_interconnect = build_interconnect("BlueScale", N_CLIENTS, tasksets)
    SoCSimulation(generators, capture_interconnect).run(HORIZON, drain=5_000)
    records = trace_from_clients(generators)

    # 2. Persist and reload (the archive format).
    trace_path = Path(tempfile.gettempdir()) / "bluescale_trace.jsonl"
    count = save_trace(records, trace_path)
    records = load_trace(trace_path)
    print(f"captured {count} transactions -> {trace_path}")

    # 3. Replay the identical traffic on every design.
    per_client = split_by_client(records)
    print(f"\n{'interconnect':<16} {'miss ratio':>10} {'mean resp':>10} "
          f"{'p99 resp':>9}")
    for name in INTERCONNECT_NAMES:
        replay_clients = [
            TraceReplayClient(c, list(recs)) for c, recs in per_client.items()
        ]
        interconnect = build_interconnect(name, N_CLIENTS, tasksets)
        result = SoCSimulation(replay_clients, interconnect).run(
            HORIZON, drain=8_000
        )
        summary = result.response_summary()
        print(
            f"{name:<16} {result.deadline_miss_ratio:>10.4%} "
            f"{summary.mean:>10.1f} {summary.p99:>9.0f}"
        )


if __name__ == "__main__":
    main()
