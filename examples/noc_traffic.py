"""Inter-processor communication on the mesh NoC substrate.

The paper's platform pairs the memory interconnect with a 9x9 mesh NoC
for inter-processor messages (Sec. 6).  This example exercises that
substrate standalone: uniform-random message traffic on a 9x9 mesh,
reporting delivered-message latency against the zero-load (Manhattan
hop) bound.

Run:  python examples/noc_traffic.py
"""

import random

from repro.noc import MeshNoC, Message
from repro.sim.stats import SummaryStatistics

WIDTH = HEIGHT = 9
MESSAGES = 2_000
INJECTION_RATE = 0.15  # messages per node per cycle


def main() -> None:
    rng = random.Random(9)
    mesh = MeshNoC(WIDTH, HEIGHT)
    positions = [(x, y) for x in range(WIDTH) for y in range(HEIGHT)]

    injected = 0
    pending: list[Message] = []
    cycle = 0
    while injected < MESSAGES or mesh.in_flight > 0 or pending:
        # Uniform-random traffic: each node injects with a fixed rate.
        if injected < MESSAGES:
            for source in positions:
                if rng.random() < INJECTION_RATE / len(positions) * 8:
                    destination = rng.choice(positions)
                    if destination != source:
                        pending.append(
                            Message(source=source, destination=destination)
                        )
                        injected += 1
        still_pending = []
        for message in pending:
            if not mesh.inject(message, cycle):
                still_pending.append(message)
        pending = still_pending
        mesh.tick(cycle)
        cycle += 1
        if cycle > 200_000:
            raise RuntimeError("mesh failed to drain")

    latencies = [float(m.latency) for m in mesh.delivered]
    zero_load = [
        float(mesh.hop_distance(m.source, m.destination)) for m in mesh.delivered
    ]
    observed = SummaryStatistics.from_sample(latencies)
    ideal = SummaryStatistics.from_sample(zero_load)
    print(f"delivered {len(mesh.delivered)} messages in {cycle} cycles")
    print(f"latency: mean {observed.mean:.1f}, p99 {observed.p99:.0f}, "
          f"max {observed.maximum:.0f} cycles")
    print(f"zero-load hops: mean {ideal.mean:.1f}, max {ideal.maximum:.0f}")
    print(f"mean queueing overhead: {observed.mean - ideal.mean:.1f} cycles")


if __name__ == "__main__":
    main()
