"""Walk through the paper's Sec. 5 analysis on a small example.

Demonstrates, without any simulation:

* supply bound function sbf(t) of a periodic resource (Pi, Theta);
* demand bound function dbf(t) of an EDF task set;
* the Theorem-1 test bound beta and the dbf<=sbf schedulability test;
* the Theorem-2 period range and the minimum-bandwidth interface
  search (binary search over Theta per candidate Pi);
* the hierarchical composition over a 16-client quadtree, and the
  path-local update when a task joins one client.

Run:  python examples/schedulability_analysis.py
"""

from fractions import Fraction

from repro.analysis import (
    ResourceInterface,
    compose,
    dbf,
    is_schedulable,
    sbf,
    select_interface,
    theorem1_bound,
    theorem2_period_bound,
    update_client,
)
from repro.tasks import PeriodicTask, TaskSet
from repro.topology import quadtree


def main() -> None:
    # A VE's task set: two transaction tasks on one client.
    taskset = TaskSet(
        [
            PeriodicTask(period=40, wcet=4, name="sensor"),
            PeriodicTask(period=100, wcet=10, name="control"),
        ]
    )
    print(f"task set utilization U = {taskset.utilization} "
          f"({taskset.utilization_float:.3f})")

    # Supply vs demand for a candidate interface.
    interface = ResourceInterface(period=10, budget=3)
    print(f"\ncandidate interface (Pi={interface.period}, Theta={interface.budget}),"
          f" bandwidth {interface.bandwidth_float:.2f}")
    beta = theorem1_bound(interface, taskset.utilization)
    print(f"Theorem 1 test bound beta = {beta}")
    print(f"{'t':>5} {'dbf':>5} {'sbf':>5}")
    for t in (20, 40, 80, 100, 120, 200):
        print(f"{t:>5} {dbf(t, taskset):>5} {sbf(t, interface):>5}")
    verdict = is_schedulable(taskset, interface)
    print(f"schedulable on (10,3)? {verdict.schedulable}")

    from repro.experiments.reporting import format_supply_demand

    print()
    print(format_supply_demand(taskset, interface, horizon=200))

    # Theorem 2 period range, then the minimum-bandwidth search.
    sibling_utilization = Fraction(1, 2)  # other VEs' load on this SE
    bound = theorem2_period_bound(taskset, sibling_utilization)
    print(f"\nTheorem 2: feasible periods Pi <= {bound}")
    selection = select_interface(taskset, sibling_utilization)
    chosen = selection.interface
    print(
        f"minimum-bandwidth interface: (Pi={chosen.period}, "
        f"Theta={chosen.budget}), bandwidth {chosen.bandwidth_float:.3f} "
        f"(examined {selection.periods_examined} periods)"
    )

    # Hierarchical composition over a 16-client quadtree.
    topology = quadtree(16)
    client_tasksets = {
        client: TaskSet(
            [PeriodicTask(period=200 + 40 * client, wcet=6, name=f"t{client}")]
        )
        for client in range(16)
    }
    composition = compose(topology, client_tasksets)
    print(
        f"\ncomposition over {topology.n_nodes()} SEs: "
        f"schedulable={composition.schedulable}, "
        f"root bandwidth {float(composition.root_bandwidth):.3f}"
    )

    # A task joins client 5: only the SEs on its path are re-resolved.
    client_tasksets[5] = client_tasksets[5].merged_with(
        TaskSet([PeriodicTask(period=150, wcet=5, name="joiner")])
    )
    updated = update_client(composition, client_tasksets, client_id=5)
    path = topology.path_to_root(5)
    changed = [
        node
        for node in composition.interfaces
        if composition.interfaces[node] != updated.interfaces[node]
    ]
    print(f"task joined client 5: path to root = {path}")
    print(f"SEs whose interfaces changed: {changed} (all on the path: "
          f"{set(changed) <= set(path)})")
    print(f"updated root bandwidth: {float(updated.root_bandwidth):.3f}")


if __name__ == "__main__":
    main()
