"""End-to-end worst-case response-time budgeting (library extension).

The paper proves schedulability (deadlines met); integrators usually
also need *response-time budgets*: how late can each task's memory
traffic be, in the worst case?  This example runs the holistic
WCRT analysis (Spuri-on-sbf with Tindell-style jitter propagation)
over a composed 16-client system and compares the analytical bounds
against the worst responses observed in simulation.

Run:  python examples/wcrt_analysis.py
"""

import random
from collections import defaultdict

from repro.analysis.response_time import holistic_response_bounds
from repro.clients import TrafficGenerator
from repro.core import BlueScaleInterconnect
from repro.soc import SoCSimulation
from repro.tasks import generate_client_tasksets

N_CLIENTS = 16
HORIZON = 30_000


def main() -> None:
    rng = random.Random(11)
    tasksets = generate_client_tasksets(
        rng, N_CLIENTS, tasks_per_client=2, system_utilization=0.6
    )
    interconnect = BlueScaleInterconnect(N_CLIENTS, buffer_capacity=2)
    composition = interconnect.configure(tasksets)
    print(f"composition schedulable: {composition.schedulable}")

    # Analytical bounds (whole tree, jitter-aware).
    bounds = holistic_response_bounds(tasksets, composition)

    # Observed worst responses from a long simulation.
    clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
    SoCSimulation(clients, interconnect).run(HORIZON, drain=10_000)
    observed: dict[tuple[int, str], int] = defaultdict(int)
    for client in clients:
        for job in client.jobs:
            if job.finished and job.dropped == 0:
                key = (client.client_id, job.task_name)
                observed[key] = max(
                    observed[key], job.last_completion - job.release
                )

    print(f"\n{'client':>6} {'task':<8} {'(T, C)':<12} {'deadline':>8} "
          f"{'WCRT bound':>10} {'observed':>9} {'margin':>7}")
    tightness = []
    for client_id in sorted(tasksets):
        bound = bounds[client_id]
        for task in tasksets[client_id]:
            wcrt = bound.bound_for(task.name)
            seen = observed.get((client_id, task.name), 0)
            tightness.append(seen / wcrt)
            print(
                f"{client_id:>6} {task.name:<8} "
                f"({task.period}, {task.wcet})".ljust(34)
                + f"{task.deadline:>8} {wcrt:>10} {seen:>9} "
                f"{seen / wcrt:>6.0%}"
            )
    print(
        f"\nbounds hold for all {len(tightness)} tasks; observed/bound: "
        f"mean {sum(tightness) / len(tightness):.0%}, "
        f"max {max(tightness):.0%}"
    )


if __name__ == "__main__":
    main()
