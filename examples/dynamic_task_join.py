"""Online churn with `repro.scenarios`: joins, mode switches, transients.

One of BlueScale's headline properties (paper Sec. 3.2): when a task
joins or leaves a client, only the server tasks on that client's
memory-request path are refreshed — every other SE keeps its
parameters.  A centralized design must recompute *all* clients'
bandwidth allocations on any change.

This example scripts a whole churn timeline as a
:class:`repro.scenarios.ScenarioPlan` — a client joining, another
changing rate, a mode switch, a leave — and drives it through both
consumers of a plan:

1. the **analysis layer** (:func:`repro.scenarios.replay_plan`): every
   event becomes an ``admit``/``retask``/``evict`` decision on a live
   :class:`~repro.analysis.session.AdmissionSession`, and every
   committed transition reports how many SE ports must be reprogrammed
   (the O(log n) path) plus its *transient bound* — the window during
   which jobs released under the old budgets may still be draining;
2. the **simulator** (:class:`repro.scenarios.ScenarioDriver`): the same
   plan replayed against live traffic generators mid-simulation, so the
   churn actually happens to the cycle-accurate system.

Run:  python examples/dynamic_task_join.py            (~10 s)

The full three-policy comparison (BlueScale re-selection vs static and
dynamic AXI regulation, with transient verification) is the `churn`
experiment: ``python -m repro churn --verify``.
"""

import random
import time

from repro.analysis import SystemModel
from repro.core.interconnect import BlueScaleInterconnect
from repro.clients import TrafficGenerator
from repro.experiments.factory import axi_budgets
from repro.scenarios import (
    ScenarioDriver,
    ScenarioEvent,
    ScenarioKind,
    ScenarioPlan,
    rate_scaled,
    replay_plan,
)
from repro.soc import SoCSimulation
from repro.tasks import PeriodicTask, TaskSet, generate_client_tasksets
from repro.topology import quadtree


def build_plan(tasksets) -> ScenarioPlan:
    """A hand-written churn timeline over four different clients."""
    return ScenarioPlan(
        (
            # a new task joins client 42 (merged into its running set)
            ScenarioEvent(
                kind=ScenarioKind.CLIENT_JOIN,
                cycle=1_000,
                client_id=42,
                tasks=(PeriodicTask(period=500, wcet=4, name="joined"),),
            ),
            # client 7 drops to a lighter rate (periods stretched 1.5x)
            ScenarioEvent(
                kind=ScenarioKind.RATE_CHANGE,
                cycle=2_000,
                client_id=7,
                factor=1.5,
            ),
            # client 12 switches operating mode: a different task set
            ScenarioEvent(
                kind=ScenarioKind.MODE_SWITCH,
                cycle=3_000,
                client_id=12,
                tasks=tuple(rate_scaled(tasksets[12], 2.0)),
            ),
            # client 30 shuts down entirely
            ScenarioEvent(
                kind=ScenarioKind.CLIENT_LEAVE,
                cycle=4_000,
                client_id=30,
            ),
        )
    )


def analysis_leg() -> None:
    n_clients = 64
    rng = random.Random(7)
    tasksets = generate_client_tasksets(
        rng, n_clients, tasks_per_client=2, system_utilization=0.5
    )
    topology = quadtree(n_clients)

    t0 = time.perf_counter()
    model = SystemModel.build(topology, tasksets, label="churn demo")
    full_time = time.perf_counter() - t0
    print(
        f"initial composition over {topology.n_nodes()} SEs: "
        f"{full_time * 1000:.0f} ms, "
        f"schedulable={model.baseline.schedulable}"
    )

    plan = build_plan(tasksets)
    # First pass: just the admission decisions, to time the path-local
    # re-selection itself (transient windows add holistic response-time
    # analysis on top, which dwarfs the update being measured).
    t0 = time.perf_counter()
    replay_plan(model.session(), plan, transients=False)
    replay_time = time.perf_counter() - t0
    print(
        f"\nreplaying {len(plan)} transitions through the admission "
        f"session: {replay_time * 1000:.0f} ms total "
        f"({full_time / max(replay_time / len(plan), 1e-9):.0f}x faster "
        f"per transition than a full recompose)"
    )
    # Second pass on a fresh session: same decisions, now with the
    # per-transition transient bounds.
    session = model.session()
    replayed = replay_plan(session, plan, transients=True)
    for r in replayed:
        t = r.transient
        detail = (
            f"{t.reprogrammed_ports} SE ports reprogrammed, transient "
            f"window {t.window} cycles"
            if t is not None
            else "rejected — system state untouched"
        )
        print(
            f"  [{r.index}] cycle {r.event.cycle:>5} "
            f"{r.event.kind.value:<12} client {r.event.client_id:>2}: "
            f"{detail}"
        )

    # The centralized alternative recomputes every client's budget on
    # every one of those transitions.
    budgets = axi_budgets(n_clients, session.tasksets, window=200, margin=1.5)
    worst_ports = max(
        r.transient.reprogrammed_ports for r in replayed if r.transient
    )
    print(
        f"\ncentralized (AXI-IC^RT-style) allocator: {len(budgets)} client "
        f"budgets recomputed per change (vs <= {worst_ports} SE ports "
        f"for BlueScale's path-local update)"
    )


def simulator_leg() -> None:
    """The same kind of plan applied to live traffic, mid-simulation."""
    n_clients = 16
    rng = random.Random(3)
    tasksets = generate_client_tasksets(
        rng, n_clients, tasks_per_client=2, system_utilization=0.4
    )
    # Client 15 starts idle and joins at cycle 1000; client 3 leaves.
    joiner = n_clients - 1
    base = {c: ts for c, ts in tasksets.items() if c != joiner}
    plan = ScenarioPlan(
        (
            ScenarioEvent(
                kind=ScenarioKind.CLIENT_JOIN,
                cycle=1_000,
                client_id=joiner,
                tasks=tuple(tasksets[joiner]),
            ),
            ScenarioEvent(
                kind=ScenarioKind.CLIENT_LEAVE, cycle=3_000, client_id=3
            ),
        )
    )
    interconnect = BlueScaleInterconnect(n_clients)
    model = SystemModel.build(interconnect.topology, base)
    interconnect.configure_from_model(model)
    clients = [
        TrafficGenerator(
            c, base.get(c, TaskSet()), rng=random.Random(f"demo/{c}")
        )
        for c in range(n_clients)
    ]
    sim = SoCSimulation(
        clients, interconnect, scenario=ScenarioDriver(plan)
    )
    result = sim.run(4_000, drain=2_000)
    print(
        f"\nsimulated the same churn live on {n_clients} clients: "
        f"{result.scenario_counters['events_applied']} events applied, "
        f"{result.jobs_judged} jobs judged, "
        f"miss ratio {result.deadline_miss_ratio:.3f}"
    )


def main() -> None:
    analysis_leg()
    simulator_leg()
    print(
        "\nfull policy comparison with transient verification: "
        "python -m repro churn --verify"
    )


if __name__ == "__main__":
    main()
