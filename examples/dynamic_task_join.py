"""Scheduling scalability: path-local updates when tasks join/leave.

One of BlueScale's headline properties (paper Sec. 3.2): when a task
joins or leaves a client, only the server tasks on that client's
memory-request path are refreshed — every other SE keeps its
parameters.  A centralized design must recompute *all* clients'
bandwidth allocations.

This example quantifies that: on a 64-client system it adds a task to
one client, re-resolves, and counts (a) how many SEs changed under
BlueScale's path-local update vs (b) how many client budgets a
centralized AXI-IC^RT-style allocator must recompute.

Run:  python examples/dynamic_task_join.py
"""

import random
import time

from repro.analysis import SystemModel
from repro.experiments.factory import axi_budgets
from repro.tasks import PeriodicTask, generate_client_tasksets
from repro.topology import quadtree


def main() -> None:
    n_clients = 64
    rng = random.Random(7)
    tasksets = generate_client_tasksets(
        rng, n_clients, tasks_per_client=3, system_utilization=0.6
    )
    topology = quadtree(n_clients)

    # Freeze the composed system into a SystemModel once; admissions
    # then run through a cheap per-request AdmissionSession.
    t0 = time.perf_counter()
    model = SystemModel.build(topology, tasksets, label="dynamic-join demo")
    full_time = time.perf_counter() - t0
    baseline = model.baseline
    print(
        f"initial composition over {topology.n_nodes()} SEs: "
        f"{full_time * 1000:.0f} ms, schedulable={baseline.schedulable}"
    )

    # A new task joins client 42.
    joining_client = 42
    session = model.session()
    t0 = time.perf_counter()
    decision = session.admit(
        joining_client, PeriodicTask(period=500, wcet=4, name="joined")
    )
    update_time = time.perf_counter() - t0
    updated = decision.composition
    changed = [
        node
        for node in baseline.interfaces
        if baseline.interfaces[node] != updated.interfaces[node]
    ]
    path = topology.path_to_root(joining_client)
    print(
        f"\nBlueScale path-local update: {update_time * 1000:.0f} ms "
        f"({full_time / max(update_time, 1e-9):.1f}x faster than recompose)"
    )
    print(f"  request path of client {joining_client}: {path}")
    print(f"  SEs touched: {len(path)} of {topology.n_nodes()}")
    print(f"  SEs actually changed: {changed}")
    print(f"  admitted: {decision.admitted}, still schedulable: {updated.schedulable}")
    print(f"  client {joining_client}'s new leaf interface: {decision.interface}")

    # The centralized alternative: every client budget is recomputed.
    tasksets = session.tasksets
    before = axi_budgets(n_clients, tasksets, window=200, margin=1.5)
    after = axi_budgets(n_clients, tasksets, window=200, margin=1.5)
    print(
        f"\ncentralized (AXI-IC^RT-style) allocator: recomputes "
        f"{len(before)} client budgets on any change "
        f"(vs {len(path)} SEs for BlueScale)"
    )
    assert len(after) == n_clients


if __name__ == "__main__":
    main()
