"""Scheduling scalability: path-local updates when tasks join/leave.

One of BlueScale's headline properties (paper Sec. 3.2): when a task
joins or leaves a client, only the server tasks on that client's
memory-request path are refreshed — every other SE keeps its
parameters.  A centralized design must recompute *all* clients'
bandwidth allocations.

This example quantifies that: on a 64-client system it adds a task to
one client, re-resolves, and counts (a) how many SEs changed under
BlueScale's path-local update vs (b) how many client budgets a
centralized AXI-IC^RT-style allocator must recompute.

Run:  python examples/dynamic_task_join.py
"""

import random
import time

from repro.analysis import compose, update_client
from repro.experiments.factory import axi_budgets
from repro.tasks import PeriodicTask, generate_client_tasksets
from repro.topology import quadtree


def main() -> None:
    n_clients = 64
    rng = random.Random(7)
    tasksets = generate_client_tasksets(
        rng, n_clients, tasks_per_client=3, system_utilization=0.6
    )
    topology = quadtree(n_clients)

    t0 = time.perf_counter()
    baseline = compose(topology, tasksets)
    full_time = time.perf_counter() - t0
    print(
        f"initial composition over {topology.n_nodes()} SEs: "
        f"{full_time * 1000:.0f} ms, schedulable={baseline.schedulable}"
    )

    # A new task joins client 42.
    joining_client = 42
    tasksets[joining_client] = tasksets[joining_client].merged_with(
        type(tasksets[joining_client])(
            [PeriodicTask(period=500, wcet=4, name="joined", client_id=joining_client)]
        )
    )

    t0 = time.perf_counter()
    updated = update_client(baseline, tasksets, joining_client)
    update_time = time.perf_counter() - t0
    changed = [
        node
        for node in baseline.interfaces
        if baseline.interfaces[node] != updated.interfaces[node]
    ]
    path = topology.path_to_root(joining_client)
    print(
        f"\nBlueScale path-local update: {update_time * 1000:.0f} ms "
        f"({full_time / max(update_time, 1e-9):.1f}x faster than recompose)"
    )
    print(f"  request path of client {joining_client}: {path}")
    print(f"  SEs touched: {len(path)} of {topology.n_nodes()}")
    print(f"  SEs actually changed: {changed}")
    print(f"  still schedulable: {updated.schedulable}")

    # The centralized alternative: every client budget is recomputed.
    before = axi_budgets(n_clients, tasksets, window=200, margin=1.5)
    after = axi_budgets(n_clients, tasksets, window=200, margin=1.5)
    print(
        f"\ncentralized (AXI-IC^RT-style) allocator: recomputes "
        f"{len(before)} client budgets on any change "
        f"(vs {len(path)} SEs for BlueScale)"
    )
    assert len(after) == n_clients


if __name__ == "__main__":
    main()
