"""The admission-control daemon, end to end, in one process.

Spins up ``repro.service``'s HTTP daemon on an ephemeral port (the same
daemon ``python -m repro serve`` runs), then acts as an integrator
loading software onto a 16-client BlueScale SoC:

1. probe a light camera pipeline on client 3 — admitted, and the
   response carries the leaf ``(Π, Θ)`` interface the client would get;
2. commit it, so the daemon's session now carries the new workload;
3. try to load a memory hog next to it — rejected, and the response
   carries the *witness*: which Scale Element over-subscribes and by
   how much;
4. read the service metrics: every decision was answered from the
   shared analysis cache after the model's one-time composition.

Run:  python examples/admission_service.py
"""

from repro.analysis import SystemModel
from repro.service import ServiceClient, start_background
from repro.tasks import PeriodicTask


def main() -> None:
    # One frozen model = one deployed system. Composed exactly once.
    model = SystemModel.from_seed(16, utilization=0.3, seed=7)
    handle = start_background(model)
    print(f"daemon listening on {handle.url}")
    print(f"model: {model.label}, baseline schedulable: {model.schedulable}")

    with ServiceClient(handle.host, handle.port) as client:
        camera = [
            PeriodicTask(period=1000, wcet=2, name="camera/frame"),
            PeriodicTask(period=4000, wcet=1, name="camera/stats"),
        ]
        probe = client.admission(3, camera)
        print(
            f"\nprobe camera pipeline on client 3: "
            f"admitted={probe['admitted']}"
        )
        print(f"  leaf interface: {probe['interface']}")

        commit = client.admission(3, camera, commit=True)
        print(f"commit: committed={commit['committed']}")
        print("  reprogrammed path:")
        for hop in commit["path"]:
            print(
                f"    SE{tuple(hop['node'])} port {hop['port']}: "
                f"(Π={hop['interface']['period']}, "
                f"Θ={hop['interface']['budget']})"
            )

        hog = PeriodicTask(period=64, wcet=60, name="dma/hog")
        rejected = client.admission(3, hog)
        print(f"\nprobe DMA hog on client 3: admitted={rejected['admitted']}")
        witness = rejected["witness"]
        print(f"  witness: {witness['reason']}")
        print(
            f"  submission asked for "
            f"{witness['submitted_utilization']:.2f} bandwidth; root would "
            f"need {witness['root_bandwidth']:.2f} > 1"
        )

        metrics = client.metrics()
        print(
            f"\nservice answered {metrics['metrics']['service/requests']:.0f} "
            f"requests ({metrics['metrics']['service/admitted']:.0f} admitted, "
            f"{metrics['metrics']['service/rejected']:.0f} rejected), "
            f"cache hit rate {metrics['cache']['hit_rate']:.0%}"
        )

    handle.stop()


if __name__ == "__main__":
    main()
