"""Debugging latency with per-request timelines (library extension).

When a request is late, the question is *where the cycles went*:
queued at its leaf SE's port buffer, budget-paced at an interior
level, or waiting at the memory controller.  A :class:`Timeline`
wrapped around the interconnect records every hop; this example runs a
loaded 16-client system and prints the Gantt rows of the three slowest
journeys.

Run:  python examples/timeline_debugging.py
"""

import random

from repro.clients import TrafficGenerator
from repro.core import BlueScaleInterconnect
from repro.sim.timeline import Timeline, format_timeline
from repro.soc import SoCSimulation
from repro.tasks import generate_client_tasksets

N_CLIENTS = 16
HORIZON = 15_000


def main() -> None:
    rng = random.Random(31)
    tasksets = generate_client_tasksets(
        rng, N_CLIENTS, tasks_per_client=3, system_utilization=0.85
    )
    interconnect = BlueScaleInterconnect(N_CLIENTS, buffer_capacity=2)
    composition = interconnect.configure(tasksets)
    timeline = Timeline(interconnect)

    clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
    result = SoCSimulation(clients, interconnect).run(HORIZON, drain=6_000)
    print(
        f"composed (schedulable={composition.schedulable}), simulated "
        f"{result.requests_completed} transactions, miss ratio "
        f"{result.deadline_miss_ratio:.4%}"
    )
    print(f"timelines recorded: {len(timeline)}\n")
    print("three slowest journeys:")
    for record in timeline.slowest(3):
        print()
        print(format_timeline(record))
        leaf, port = interconnect.topology.leaf_of_client(record.client_id)
        interface = composition.interfaces[leaf][port]
        print(
            f"  (leaf interface of client {record.client_id}: "
            f"Pi={interface.period}, Theta={interface.budget} — long gaps "
            f"before the first SE hop are budget pacing)"
        )


if __name__ == "__main__":
    main()
