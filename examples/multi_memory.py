"""Scaling memory bandwidth with multiple channels (library extension).

One BlueScale tree guarantees at most one transaction per slot at its
root.  This example adds memory channels — one quadtree of SEs per
channel, traffic interleaved by address — and shows a workload that
overloads one channel running cleanly on two, with per-channel
compositional guarantees intact.

Run:  python examples/multi_memory.py
"""

from repro.clients import TrafficGenerator
from repro.core.multi_memory import MultiMemorySystem, run_multi_memory_trial
from repro.tasks import PeriodicTask, TaskSet

N_CLIENTS = 16
HORIZON = 20_000


def build_workload() -> dict[int, TaskSet]:
    """An even ~1.3-utilization workload: too much for one channel."""
    periods = (180, 205, 235, 250)
    tasksets = {}
    for client in range(N_CLIENTS):
        tasks = []
        for index in range(4):
            period = periods[index % 4] + 3 * client
            wcet = max(1, round(period * 1.3 / (N_CLIENTS * 4)))
            tasks.append(
                PeriodicTask(
                    period=period, wcet=wcet, name=f"t{index}", client_id=client
                )
            )
        tasksets[client] = TaskSet(tasks)
    return tasksets


def main() -> None:
    tasksets = build_workload()
    total = sum(ts.utilization_float for ts in tasksets.values())
    print(f"workload: {N_CLIENTS} clients, aggregate utilization {total:.2f}")

    print(f"\n{'channels':>8} {'schedulable':>12} {'miss ratio':>11} "
          f"{'balance':>8} {'per-channel load':>18}")
    for n_channels in (1, 2, 4):
        system = MultiMemorySystem(N_CLIENTS, n_channels=n_channels)
        system.configure(tasksets)
        loads = [
            sum(ts.utilization_float for ts in channel.values())
            for channel in system.split_tasksets_by_channel(tasksets)
        ]
        clients = [
            TrafficGenerator(c, ts) for c, ts in tasksets.items()
        ]
        result = run_multi_memory_trial(clients, system, HORIZON, drain=8_000)
        print(
            f"{n_channels:>8} {str(system.schedulable):>12} "
            f"{result.deadline_miss_ratio:>11.4%} "
            f"{result.channel_balance():>8.2f} "
            f"{'/'.join(f'{load:.2f}' for load in loads):>18}"
        )


if __name__ == "__main__":
    main()
