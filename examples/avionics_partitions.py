"""IMA-style avionics partitions on BlueScale (library extension).

Maps four avionics partitions (flight-control, navigation,
surveillance, cabin) onto segregated clients of a BlueScale system,
composes the interfaces, derives per-function worst-case response
bounds, and verifies the most critical (DAL A) functions get the
tightest guarantees — all while the cabin entertainment stream hammers
the memory.

Run:  python examples/avionics_partitions.py
"""

from repro.analysis.response_time import holistic_response_bounds
from repro.clients import TrafficGenerator
from repro.core import BlueScaleInterconnect
from repro.soc import SoCSimulation
from repro.workloads.avionics import ALL_AVIONICS, assign_partitions

N_CLIENTS = 4
HORIZON = 30_000


def main() -> None:
    assignment = assign_partitions(N_CLIENTS)
    interconnect = BlueScaleInterconnect(N_CLIENTS, buffer_capacity=2)
    composition = interconnect.configure(assignment)
    print(f"composition schedulable: {composition.schedulable}")
    for client, taskset in assignment.items():
        leaf, port = interconnect.topology.leaf_of_client(client)
        interface = composition.interfaces[leaf][port]
        partition = taskset[0].name and next(
            p.partition for p in ALL_AVIONICS if p.name == taskset[0].name
        )
        print(
            f"  client {client} [{partition:<14}] interface "
            f"(Pi={interface.period}, Theta={interface.budget})  "
            f"bandwidth {interface.bandwidth_float:.3f}"
        )

    bounds = holistic_response_bounds(assignment, composition)
    profile_of = {p.name: p for p in ALL_AVIONICS}
    print(f"\n{'function':<20} {'DAL':<4} {'deadline':>8} {'WCRT bound':>10}")
    for client, taskset in sorted(assignment.items()):
        for task in taskset:
            profile = profile_of[task.name]
            print(
                f"{task.name:<20} {profile.dal:<4} {task.deadline:>8} "
                f"{bounds[client].bound_for(task.name):>10}"
            )

    clients = [TrafficGenerator(c, ts) for c, ts in assignment.items()]
    result = SoCSimulation(clients, interconnect).run(HORIZON, drain=8_000)
    print(
        f"\nsimulated {result.requests_completed} transactions over "
        f"{HORIZON} slots: miss ratio {result.deadline_miss_ratio:.4%}"
    )
    dal_a = [p.name for p in ALL_AVIONICS if p.dal == "A"]
    worst_a = 0
    for client in clients:
        for job in client.jobs:
            if job.task_name in dal_a and job.finished:
                worst_a = max(worst_a, job.last_completion - job.release)
    print(f"worst observed DAL-A response: {worst_a} slots")


if __name__ == "__main__":
    main()
