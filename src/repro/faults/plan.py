"""Deterministic fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a frozen, picklable schedule of
:class:`FaultEvent`\\ s.  It is *data only* — nothing in this module
touches a simulation.  The :class:`~repro.faults.injectors.FaultOrchestrator`
interprets the plan against a running :class:`~repro.soc.SoCSimulation`,
and because the plan is a pure value derived (when generated) from an
explicit seed, a faulted trial is exactly as replayable as a fault-free
one: the same plan against the same spec produces bit-for-bit the same
trace on any executor backend.

Fault taxonomy (the misbehaviour modes the BlueScale isolation claim
must survive):

* ``ROGUE_BURST`` — a client bursts past its declared (Π, Θ) server
  contract: extra contract-violating transactions with tight deadlines
  are released straight into its pending queue, repeatedly over a
  window.  The aggressor model of the isolation experiment.
* ``PORT_DROP`` / ``PORT_DUPLICATE`` / ``PORT_DELAY`` — request-level
  faults at a client's SE ingress port: an offered transaction is
  silently discarded, accepted twice, or held back for a fixed number
  of cycles before entering the fabric.  Which requests are hit is a
  pure function of ``(event.seed, request.rid)``, so the same plan
  always perturbs the same request population.
* ``BUDGET_BIT_FLIP`` — a transient single-event upset in a local
  scheduler's P/B counter pair: one bit of the selected counter's
  value register is inverted at one cycle (BlueScale only; other
  interconnects have no local scheduler and ignore it).
* ``CONTROLLER_STALL`` — the shared memory controller freezes for a
  window (a refresh-storm / thermal-throttle model): in-flight service
  pauses and nothing new is picked up.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.runtime.seeding import seed_stream


class FaultKind(enum.Enum):
    """What kind of perturbation a :class:`FaultEvent` injects."""

    ROGUE_BURST = "rogue-burst"
    PORT_DROP = "port-drop"
    PORT_DUPLICATE = "port-duplicate"
    PORT_DELAY = "port-delay"
    BUDGET_BIT_FLIP = "budget-bit-flip"
    CONTROLLER_STALL = "controller-stall"


#: kinds that perturb the injection path of one client's ingress port
PORT_KINDS = frozenset(
    {FaultKind.PORT_DROP, FaultKind.PORT_DUPLICATE, FaultKind.PORT_DELAY}
)

#: the 2654435761 of Knuth's multiplicative hash — the per-request
#: fault-selection function below must be a cheap pure function so the
#: same requests are hit under any executor or engine path
_HASH_MULTIPLIER = 2654435761
_HASH_MOD = 1 << 32


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled perturbation.

    ``cycle`` is when the fault arms; ``duration`` is the window length
    (1 for instantaneous faults).  The remaining fields are interpreted
    per :class:`FaultKind`:

    * ``ROGUE_BURST`` — ``client_id`` is the aggressor; ``magnitude``
      transactions are injected at the window start and every
      ``period`` cycles after it (0 = once) while the window is open;
      each carries an absolute deadline ``deadline_slack`` cycles out.
    * ``PORT_*`` — ``client_id``'s injections during the window are
      perturbed; ``ratio`` is the fraction of requests selected (by the
      pure hash of ``(seed, rid)``); ``PORT_DELAY`` holds a selected
      request back ``magnitude`` cycles.
    * ``BUDGET_BIT_FLIP`` — flips bit ``bit`` of SE ``node``'s port
      ``port`` budget counter (``counter`` selects ``"budget"`` or
      ``"period"``) at ``cycle``.
    * ``CONTROLLER_STALL`` — stalls the memory controller ``magnitude``
      cycles starting at ``cycle``.
    """

    kind: FaultKind
    cycle: int
    duration: int = 1
    client_id: int | None = None
    node: tuple[int, int] | None = None
    port: int = 0
    bit: int = 0
    counter: str = "budget"
    magnitude: int = 1
    period: int = 0
    deadline_slack: int = 64
    ratio: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ConfigurationError(f"fault cycle must be >= 0, got {self.cycle}")
        if self.duration < 1:
            raise ConfigurationError(
                f"fault duration must be >= 1, got {self.duration}"
            )
        if self.magnitude < 1:
            raise ConfigurationError(
                f"fault magnitude must be >= 1, got {self.magnitude}"
            )
        if self.period < 0:
            raise ConfigurationError(f"fault period must be >= 0, got {self.period}")
        if not 0.0 < self.ratio <= 1.0:
            raise ConfigurationError(f"fault ratio {self.ratio} outside (0, 1]")
        if self.kind in PORT_KINDS or self.kind is FaultKind.ROGUE_BURST:
            if self.client_id is None or self.client_id < 0:
                raise ConfigurationError(
                    f"{self.kind.value} fault needs a target client id"
                )
        if self.kind is FaultKind.BUDGET_BIT_FLIP:
            if self.node is None:
                raise ConfigurationError("bit-flip fault needs a target SE node")
            if not 0 <= self.bit < 32:
                raise ConfigurationError(
                    f"bit index must be in [0, 32), got {self.bit}"
                )
            if self.counter not in ("budget", "period"):
                raise ConfigurationError(
                    f"counter must be 'budget' or 'period', got {self.counter!r}"
                )
        if self.kind is FaultKind.ROGUE_BURST and self.deadline_slack < 1:
            raise ConfigurationError(
                f"deadline slack must be >= 1, got {self.deadline_slack}"
            )

    @property
    def end(self) -> int:
        """First cycle after the fault window."""
        return self.cycle + self.duration

    def active_at(self, cycle: int) -> bool:
        return self.cycle <= cycle < self.end

    def selects(self, rid: int) -> bool:
        """Pure per-request selection for port faults.

        A multiplicative hash of ``(seed, rid)`` against ``ratio`` —
        no RNG state, so the same requests are selected regardless of
        attempt order, engine path, or executor backend.
        """
        if self.ratio >= 1.0:
            return True
        # Fold the seed in before the multiply so distinct seeds yield
        # decorrelated selections (an additive post-multiply term would
        # only nudge hashes near the threshold).
        h = ((rid + 1 + self.seed * 7919) * _HASH_MULTIPLIER) % _HASH_MOD
        return h / _HASH_MOD < self.ratio

    def action_cycles(self) -> list[int]:
        """Cycles at which the orchestrator must take a discrete action.

        Port-window faults need none (they act inside the injection
        wrapper); the other kinds act on explicit ticks, which the
        orchestrator declares as engine activity so the quiescence fast
        path can never leap over them.
        """
        if self.kind is FaultKind.ROGUE_BURST:
            if self.period == 0:
                return [self.cycle]
            return list(range(self.cycle, self.end, self.period))
        if self.kind in (FaultKind.BUDGET_BIT_FLIP, FaultKind.CONTROLLER_STALL):
            return [self.cycle]
        return []


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events (possibly empty).

    The empty plan is a valid, useful value: a fault-instrumented run
    under ``FaultPlan.none()`` is bit-for-bit identical to an
    uninstrumented run (the differential tests assert it), which pins
    the instrumentation itself as observation-free.
    """

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=lambda e: (e.cycle, e.kind.value))),
        )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (inject nothing, perturb nothing)."""
        return cls(())

    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: FaultKind) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind is kind)

    @property
    def port_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind in PORT_KINDS)

    # -- construction helpers ------------------------------------------------
    @classmethod
    def rogue_client(
        cls,
        client_id: int,
        start: int,
        end: int,
        burst_size: int = 16,
        burst_every: int = 50,
        deadline_slack: int = 16,
    ) -> "FaultPlan":
        """The isolation experiment's aggressor: periodic contract-
        violating bursts with tight deadlines over ``[start, end)``."""
        if end <= start:
            raise ConfigurationError(
                f"rogue window [{start}, {end}) is empty"
            )
        return cls(
            (
                FaultEvent(
                    kind=FaultKind.ROGUE_BURST,
                    cycle=start,
                    duration=end - start,
                    client_id=client_id,
                    magnitude=burst_size,
                    period=burst_every,
                    deadline_slack=deadline_slack,
                ),
            )
        )

    @classmethod
    def generate(
        cls,
        seed: int | str,
        horizon: int,
        n_clients: int,
        events_per_kind: int = 1,
        kinds: tuple[FaultKind, ...] = (
            FaultKind.ROGUE_BURST,
            FaultKind.PORT_DROP,
            FaultKind.PORT_DELAY,
            FaultKind.PORT_DUPLICATE,
            FaultKind.BUDGET_BIT_FLIP,
            FaultKind.CONTROLLER_STALL,
        ),
    ) -> "FaultPlan":
        """A deterministic mixed campaign drawn from a named seed stream.

        Equal ``(seed, horizon, n_clients)`` always yield the identical
        plan — campaigns are replayable by seed alone.
        """
        if horizon < 10:
            raise ConfigurationError(f"horizon {horizon} too short for a campaign")
        if n_clients < 1:
            raise ConfigurationError("need at least one client")
        rng = seed_stream(f"faults/{seed}/{horizon}/{n_clients}")
        events: list[FaultEvent] = []
        for kind in kinds:
            for _ in range(events_per_kind):
                start = rng.randrange(horizon // 10, max(horizon // 2, horizon // 10 + 1))
                client = rng.randrange(n_clients)
                if kind is FaultKind.ROGUE_BURST:
                    events.append(
                        FaultEvent(
                            kind=kind,
                            cycle=start,
                            duration=max(1, horizon // 3),
                            client_id=client,
                            magnitude=rng.randrange(4, 33),
                            period=rng.randrange(20, 200),
                            deadline_slack=rng.randrange(8, 65),
                        )
                    )
                elif kind in PORT_KINDS:
                    events.append(
                        FaultEvent(
                            kind=kind,
                            cycle=start,
                            duration=max(1, horizon // 4),
                            client_id=client,
                            magnitude=rng.randrange(1, 32)
                            if kind is FaultKind.PORT_DELAY
                            else 1,
                            ratio=rng.choice((0.25, 0.5, 1.0)),
                            seed=rng.randrange(1 << 16),
                        )
                    )
                elif kind is FaultKind.BUDGET_BIT_FLIP:
                    events.append(
                        FaultEvent(
                            kind=kind,
                            cycle=start,
                            node=(0, 0),
                            port=rng.randrange(4),
                            bit=rng.randrange(4),
                            counter=rng.choice(("budget", "period")),
                        )
                    )
                else:  # CONTROLLER_STALL
                    events.append(
                        FaultEvent(
                            kind=kind,
                            cycle=start,
                            magnitude=rng.randrange(2, 40),
                        )
                    )
        return cls(tuple(events))
