"""Deterministic fault injection and temporal-isolation verification.

The paper's central promise is that BlueScale keeps clients *temporally
isolated*: one client exceeding its (Π, Θ) contract cannot degrade the
guarantees of the others.  This package turns that promise into a
falsifiable experiment:

* :mod:`repro.faults.plan` — declarative, seed-driven fault plans
  (:class:`FaultPlan` / :class:`FaultEvent`): rogue client bursts,
  request drop/duplicate/delay at injection ports, budget-counter bit
  flips inside a Scale Element, and memory-controller stall windows;
* :mod:`repro.faults.injectors` — the :class:`FaultOrchestrator`, a
  simulation stage that applies a plan through narrow hooks on the
  clients, Scale Elements and controller, with full request-conservation
  accounting and bit-for-bit determinism on both engine paths;
* :mod:`repro.faults.verify` — checks victim clients' observed worst
  responses against the fault-oblivious analytical bounds of
  :mod:`repro.analysis.response_time`.

An empty plan is guaranteed inert: a fault-instrumented simulation with
``FaultPlan.none()`` produces the same trace digest as an
uninstrumented one.
"""

from repro.faults.injectors import FaultOrchestrator, make_orchestrator
from repro.faults.plan import PORT_KINDS, FaultEvent, FaultKind, FaultPlan
from repro.faults.verify import (
    BoundViolation,
    IsolationVerdict,
    verify_isolation,
    victim_miss_from_outcomes,
    victim_miss_ratio,
)

__all__ = [
    "PORT_KINDS",
    "BoundViolation",
    "FaultEvent",
    "FaultKind",
    "FaultOrchestrator",
    "FaultPlan",
    "IsolationVerdict",
    "make_orchestrator",
    "verify_isolation",
    "victim_miss_from_outcomes",
    "victim_miss_ratio",
]
