"""The fault orchestrator: interprets a plan against a running trial.

The :class:`FaultOrchestrator` is registered by
:class:`~repro.soc.SoCSimulation` as the *first* tick stage (name
``"faults"``), so a fault armed for cycle ``c`` perturbs that cycle's
client releases, arbitration and service — exactly as if the hardware
had misbehaved at the start of the cycle.

Injection goes through three narrow seams, none of which the fault-free
path ever notices:

* **discrete actions** (rogue bursts, budget bit-flips, controller
  stalls) fire from a min-heap inside :meth:`FaultOrchestrator.tick`,
  calling the components' dedicated fault hooks
  (:meth:`~repro.clients.traffic_generator.TrafficGenerator.inject_rogue_burst`,
  :meth:`~repro.core.scale_element.ScaleElement.flip_budget_bit`,
  :meth:`~repro.memory.controller.MemoryController.inject_stall`);
* **port faults** (drop/duplicate/delay) live in a wrapper around the
  ``try_inject`` callable the client stage uses — composed *outside*
  the tracer's wrapper, so duplicated/re-injected requests still enter
  traced;
* **held requests** (the delay fault) are re-injected from
  :meth:`tick` once their hold expires.

Fast-path correctness is the load-bearing property.  The orchestrator
is always "quiescent" (its state never changes outside its own tick)
but it *declares* activity so the engine can never leap over a cycle on
which a fault acts:

* every discrete action cycle is declared via the action heap;
* a held request declares its release-due cycle (and pins cycle-by-cycle
  execution while it retries against backpressure);
* while a port-fault window is open the orchestrator pins the current
  cycle, because the window changes the meaning of injection *attempts*
  — and the slow path attempts on every cycle, including ones the fast
  path would otherwise prove attempt-free (a refused attempt is only
  side-effect-free when nobody is dropping it on the floor).

Conservation: drops, duplicates and holds all perturb the SoC's
request-conservation ledger, so the orchestrator exposes its own
counters and :meth:`repro.soc.SoCSimulation._collect` folds them in
(drops → dropped, accepted duplicates → released, current holds →
in-flight).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import ConfigurationError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.memory.request import MemoryRequest

InjectFn = Callable[[MemoryRequest, int], bool]

#: sentinel wake value meaning "no declared activity"
_NEVER = 1 << 62


class FaultOrchestrator:
    """Executes one :class:`FaultPlan` against one simulation trial.

    Construct it per ``run()`` (it holds per-run mutable state) and pass
    it to ``SoCSimulation(faults=...)``.  With an empty plan every code
    path below degenerates to counter reads and ``None`` returns — the
    differential tests assert the instrumented run is bit-for-bit
    identical to an uninstrumented one on both engine paths.
    """

    def __init__(self, plan: FaultPlan, tracer=None) -> None:  # noqa: ANN001
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError(
                f"expected a FaultPlan, got {type(plan).__name__}"
            )
        self.plan = plan
        self._tracer = tracer
        # Wired by SoCSimulation.run() before the engine starts.
        self._clients_by_id: dict[int, object] = {}
        self._interconnect = None
        self._controller = None
        self._client_stage = None
        self._inner_inject: InjectFn | None = None
        # (cycle, event_index) min-heap of pending discrete actions.
        self._actions: list[tuple[int, int]] = []
        for index, event in enumerate(plan.events):
            for cycle in event.action_cycles():
                heapq.heappush(self._actions, (cycle, index))
        # Port-fault windows, grouped per targeted client (plan order
        # within a client decides which event claims a request first).
        self._port_events: dict[int, list[FaultEvent]] = {}
        for event in plan.port_events:
            assert event.client_id is not None
            self._port_events.setdefault(event.client_id, []).append(event)
        #: first/last cycle of any port window (leap pinning range)
        self._port_window_start = min(
            (e.cycle for e in plan.port_events), default=_NEVER
        )
        self._port_window_end = max(
            (e.end for e in plan.port_events), default=0
        )
        # Requests held back by the delay fault: (due, seq, request).
        self._held: list[tuple[int, int, MemoryRequest]] = []
        self._held_seq = 0
        # -- fault ledger (read by SoCSimulation._collect) ----------------
        self.requests_dropped = 0
        self.requests_duplicated = 0
        self.requests_delayed = 0
        self.rogue_requests = 0
        self.bit_flips = 0
        self.stall_cycles = 0
        self.events_applied = 0
        self.events_ignored = 0

    # -- wiring (SoCSimulation.run) -----------------------------------------
    def bind(
        self,
        clients,  # noqa: ANN001 - list[TrafficGenerator]
        interconnect,  # noqa: ANN001
        controller,  # noqa: ANN001
        client_stage=None,  # noqa: ANN001
    ) -> None:
        """Attach the trial's components (called once per run)."""
        self._clients_by_id = {c.client_id: c for c in clients}
        self._interconnect = interconnect
        self._controller = controller
        self._client_stage = client_stage

    def wrap_inject(self, inject: InjectFn) -> InjectFn:
        """Interpose the port faults on the client-stage inject seam.

        ``inject`` is the (possibly tracer-wrapped) fabric ingress; the
        wrapper keeps a handle on it so held and duplicated requests
        enter the fabric through the same traced path.  Without port
        events the original callable is returned untouched — zero
        overhead for plans that never perturb injection.
        """
        self._inner_inject = inject
        if not self._port_events:
            return inject

        def faulty_inject(request: MemoryRequest, cycle: int) -> bool:
            events = self._port_events.get(request.client_id)
            if events:
                for event in events:
                    if not event.active_at(cycle) or not event.selects(
                        request.rid
                    ):
                        continue
                    if event.kind is FaultKind.PORT_DROP:
                        return self._drop(event, request, cycle)
                    if event.kind is FaultKind.PORT_DELAY:
                        return self._hold(event, request, cycle)
                    return self._duplicate(event, request, cycle)
            return inject(request, cycle)

        return faulty_inject

    # -- port-fault actions ---------------------------------------------------
    def _emit(self, event: FaultEvent, cycle: int, rid: int, **attrs) -> None:
        """Fault span + counter through the observability layer (if on)."""
        tracer = self._tracer
        if tracer is None:
            return
        from repro.observability.spans import Span

        tracer.recorder.record(
            Span(
                rid=rid,
                client_id=event.client_id if event.client_id is not None else -1,
                site=f"fault:{event.kind.value}",
                kind="fault",
                cycle=cycle,
                attrs=attrs or None,
            )
        )
        tracer.registry.counter(f"faults/{event.kind.value}").increment()

    def _drop(self, event: FaultEvent, request: MemoryRequest, cycle: int) -> bool:
        # The request vanishes at the port: the client believes it was
        # accepted (True) and its job can never finish — a fault the
        # victim experiences as an unbounded response.
        self.requests_dropped += 1
        self.events_applied += 1
        self._emit(event, cycle, request.rid)
        return True

    def _hold(self, event: FaultEvent, request: MemoryRequest, cycle: int) -> bool:
        due = cycle + event.magnitude
        heapq.heappush(self._held, (due, self._held_seq, request))
        self._held_seq += 1
        self.requests_delayed += 1
        self.events_applied += 1
        self._emit(event, cycle, request.rid, due=due)
        return True

    def _duplicate(
        self, event: FaultEvent, request: MemoryRequest, cycle: int
    ) -> bool:
        assert self._inner_inject is not None
        accepted = self._inner_inject(request, cycle)
        if accepted:
            clone = MemoryRequest(
                client_id=request.client_id,
                release_cycle=request.release_cycle,
                absolute_deadline=request.absolute_deadline,
                kind=request.kind,
                address=request.address,
                size_bytes=request.size_bytes,
                task_name=request.task_name,
            )
            if self._inner_inject(clone, cycle):
                self.requests_duplicated += 1
                self.events_applied += 1
                self._emit(event, cycle, clone.rid, original=request.rid)
        return accepted

    # -- discrete actions -----------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Release due holds, then fire every action armed for ``cycle``."""
        held = self._held
        if held and held[0][0] <= cycle:
            assert self._inner_inject is not None
            # Re-inject in hold order; a refusal (backpressure) keeps
            # the request held and retries next cycle — the activity
            # declaration pins the engine until it lands.
            retry: list[tuple[int, int, MemoryRequest]] = []
            while held and held[0][0] <= cycle:
                entry = heapq.heappop(held)
                if not self._inner_inject(entry[2], cycle):
                    retry.append(entry)
            for entry in retry:
                heapq.heappush(held, entry)
        actions = self._actions
        while actions and actions[0][0] <= cycle:
            _, index = heapq.heappop(actions)
            self._apply(self.plan.events[index], cycle)

    def _apply(self, event: FaultEvent, cycle: int) -> None:
        if event.kind is FaultKind.ROGUE_BURST:
            client = self._clients_by_id.get(event.client_id)
            burst_hook = getattr(client, "inject_rogue_burst", None)
            if burst_hook is None:
                self.events_ignored += 1
                return
            injected = burst_hook(cycle, event.magnitude, event.deadline_slack)
            self.rogue_requests += injected
            self.events_applied += 1
            if self._client_stage is not None:
                # A sleeping client's cached wake predates the burst.
                self._client_stage.notify_external_activity(event.client_id)
            self._emit(event, cycle, -1, injected=injected)
        elif event.kind is FaultKind.BUDGET_BIT_FLIP:
            elements = getattr(self._interconnect, "elements", None)
            if elements is None or event.node not in elements:
                # Baselines have no local schedulers to upset.
                self.events_ignored += 1
                return
            elements[event.node].flip_budget_bit(
                cycle, event.port, event.bit, event.counter
            )
            self.bit_flips += 1
            self.events_applied += 1
            self._emit(
                event, cycle, -1,
                node=list(event.node), port=event.port, bit=event.bit,
            )
        elif event.kind is FaultKind.CONTROLLER_STALL:
            assert self._controller is not None
            self._controller.inject_stall(event.magnitude)
            self.stall_cycles += event.magnitude
            self.events_applied += 1
            self._emit(event, cycle, -1, cycles=event.magnitude)
        else:  # pragma: no cover - port kinds never reach the heap
            raise ConfigurationError(f"unexpected heap action {event.kind}")

    # -- quiescence contract --------------------------------------------------
    def is_quiescent(self) -> bool:
        """Always true: the orchestrator only acts inside its own tick,
        and every cycle it must act on is declared below."""
        return True

    def next_activity_cycle(self, cycle: int) -> int | None:
        """Earliest upcoming cycle the orchestrator must be ticked on.

        Port windows pin the *current* cycle for their entire span:
        while a window is open, every injection attempt matters, so no
        cycle may be leapt (returning ``cycle`` makes the engine's leap
        target ``<= now``, which aborts the leap).
        """
        earliest: int | None = None
        if self._port_window_start < self._port_window_end:
            if cycle >= self._port_window_end:
                pass  # all windows over
            elif cycle >= self._port_window_start:
                return cycle  # inside the pinned span
            else:
                earliest = self._port_window_start
        if self._held:
            due = self._held[0][0]
            if due <= cycle:
                return cycle  # retrying against backpressure
            if earliest is None or due < earliest:
                earliest = due
        if self._actions:
            head = self._actions[0][0]
            if earliest is None or head < earliest:
                earliest = head
        return earliest

    # -- ledger ---------------------------------------------------------------
    @property
    def requests_held(self) -> int:
        """Delayed requests currently parked in the orchestrator."""
        return len(self._held)

    def counters(self) -> dict[str, int]:
        """The fault ledger as plain ints (folded into TrialResult)."""
        return {
            "requests_dropped": self.requests_dropped,
            "requests_duplicated": self.requests_duplicated,
            "requests_delayed": self.requests_delayed,
            "requests_held": self.requests_held,
            "rogue_requests": self.rogue_requests,
            "bit_flips": self.bit_flips,
            "stall_cycles": self.stall_cycles,
            "events_applied": self.events_applied,
            "events_ignored": self.events_ignored,
        }


def make_orchestrator(
    faults: "FaultPlan | FaultOrchestrator | None", tracer=None  # noqa: ANN001
) -> FaultOrchestrator | None:
    """Normalise the ``SoCSimulation(faults=...)`` argument.

    ``None`` → fault injection off (no orchestrator, zero cost).  A
    plan → a fresh orchestrator for it (the common case).  An
    orchestrator → used as-is (lets callers keep the ledger handle).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return FaultOrchestrator(faults, tracer=tracer)
    if isinstance(faults, FaultOrchestrator):
        return faults
    raise ConfigurationError(
        f"faults must be a FaultPlan, FaultOrchestrator or None, got {faults!r}"
    )
