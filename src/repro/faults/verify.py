"""Temporal-isolation verification against analytical bounds.

BlueScale's predictability claim (paper Sec. 5) is *compositional*:
each client's (Π, Θ) server interface bounds its response time
regardless of what the other clients do.  The analytical side of that
claim lives in :func:`repro.analysis.response_time.holistic_response_bounds`,
computed from the clients' **declared** task sets — crucially, it knows
nothing about the fault plan.  This module checks a faulted simulation
against those fault-oblivious bounds: if isolation holds, an aggressor
bursting arbitrarily past its contract must not push any *victim* task
beyond its pre-computed bound.

Two kinds of evidence are collected per victim:

* **response-time containment** — the worst observed per-task response
  (tracked by :class:`~repro.clients.traffic_generator.TrafficGenerator`
  on every completion) must stay ``<= bound_for(task)``;
* **no vanished work** — a victim job that did not finish, although its
  release plus bound lies within the simulated window, is a violation
  with unbounded observed response (e.g. a dropped victim request).

Deadline-miss *ratios* are job-level and per-client (from the clients'
monitored-job ledgers), so the aggressor's own self-inflicted misses
never contaminate the victims' statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.response_time import holistic_response_bounds
from repro.errors import InfeasibleError


@dataclass(frozen=True)
class BoundViolation:
    """One victim task observed beyond its analytical response bound."""

    client_id: int
    task_name: str
    #: worst observed response (cycles); -1 = a job never finished
    observed: int
    bound: int

    def describe(self) -> str:
        observed = "unbounded (unfinished job)" if self.observed < 0 else str(
            self.observed
        )
        return (
            f"client {self.client_id} task {self.task_name!r}: "
            f"observed {observed} > bound {self.bound}"
        )


@dataclass(frozen=True)
class IsolationVerdict:
    """Outcome of checking victims against their analytical bounds."""

    #: False when the composition admitted no finite bounds (the check
    #: is then vacuous, not passed — reported separately)
    bounds_checked: bool
    violations: tuple[BoundViolation, ...] = ()
    #: worst observed victim response over all checked tasks
    worst_observed: int = 0
    #: tightest analytical bound among checked tasks (context for reports)
    tightest_bound: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def victim_miss_ratio(
    clients, horizon: int, victims: set[int]  # noqa: ANN001
) -> float:
    """Job-level deadline-miss ratio across the victim clients only."""
    judged = 0
    missed = 0
    for client in clients:
        if client.client_id not in victims:
            continue
        judged += client.monitored_jobs_judged(horizon)
        missed += client.monitored_job_misses(horizon)
    if judged == 0:
        return 0.0
    return missed / judged


def victim_miss_from_outcomes(
    job_outcomes: dict[int, tuple[int, int]], victims: set[int]
) -> float:
    """:func:`victim_miss_ratio` computed from a
    :class:`~repro.soc.TrialResult`'s ``job_outcomes`` fold.

    Identical by construction — ``job_outcomes`` is the per-client
    ``(judged, missed)`` pair at the trial's horizon — but it works on
    any backend's :class:`~repro.soc.TrialResult` without touching the
    client objects.
    """
    judged = 0
    missed = 0
    for client_id, (client_judged, client_missed) in job_outcomes.items():
        if client_id not in victims:
            continue
        judged += client_judged
        missed += client_missed
    if judged == 0:
        return 0.0
    return missed / judged


def verify_isolation(
    clients,  # noqa: ANN001 - list[TrafficGenerator]
    client_tasksets,  # noqa: ANN001 - dict[int, TaskSet]
    composition,  # noqa: ANN001 - CompositionResult
    end_cycle: int,
    victims: set[int],
) -> IsolationVerdict:
    """Check every victim task's observed behaviour against its bound.

    ``end_cycle`` must be the last cycle through which clients are
    *driven* (the horizon, not horizon + drain: clients stop issuing
    their pending queues at the horizon, so a later-released job may
    sit unfinished for reasons the analysis does not model).  A job is
    only accused of "never finishing" when the analysis says it had
    time to (``release + bound <= end_cycle``), so truncation at the
    end of a trial cannot fabricate violations.
    """
    try:
        bounds = holistic_response_bounds(client_tasksets, composition)
    except InfeasibleError:
        return IsolationVerdict(bounds_checked=False)
    violations: list[BoundViolation] = []
    worst_observed = 0
    tightest_bound = 0
    for client in clients:
        cid = client.client_id
        if cid not in victims or cid not in bounds:
            continue
        path_bound = bounds[cid]
        task_bounds = {
            task.name: path_bound.bound_for(task.name)
            for task in client_tasksets[cid]
        }
        for name, bound in task_bounds.items():
            if tightest_bound == 0 or bound < tightest_bound:
                tightest_bound = bound
            observed = client.max_response_by_task.get(name, 0)
            if observed > worst_observed:
                worst_observed = observed
            if observed > bound:
                violations.append(
                    BoundViolation(
                        client_id=cid,
                        task_name=name,
                        observed=observed,
                        bound=bound,
                    )
                )
        for job in client.jobs:
            bound = task_bounds.get(job.task_name)
            if bound is None or job.release + bound > end_cycle:
                continue
            if not job.finished or job.dropped:
                violations.append(
                    BoundViolation(
                        client_id=cid,
                        task_name=job.task_name,
                        observed=-1,
                        bound=bound,
                    )
                )
                break  # one unbounded witness per client is enough
    return IsolationVerdict(
        bounds_checked=True,
        violations=tuple(violations),
        worst_observed=worst_observed,
        tightest_bound=tightest_bound,
    )
