"""Periodic task model.

The paper schedules *memory-transaction tasks*: each task is specified
by a pair ``(T_i, C_i)`` where ``T_i`` is the period (equal to the
relative deadline — implicit deadlines) and ``C_i`` is the worst-case
execution (transaction) time.  Time is discrete: both parameters are
positive integers (Sec. 5 of the paper assumes integer parameters).

Server tasks used in the compositional scheduling are periodic tasks
too, with ``T = Π`` (replenishment period) and ``C = Θ`` (budget), so a
single class models both levels of the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PeriodicTask:
    """An implicit-deadline periodic task ``(T, C)``.

    Attributes
    ----------
    period:
        ``T_i`` — the minimum inter-arrival time and relative deadline.
    wcet:
        ``C_i`` — the worst-case execution time (for memory-transaction
        tasks, the number of interconnect time units one job needs).
    name:
        Optional label used in reports.
    client_id:
        Index of the client (processor / accelerator) the task runs on,
        or ``None`` when unassigned.
    """

    period: int
    wcet: int
    name: str = ""
    client_id: int | None = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if self.wcet <= 0:
            raise ConfigurationError(f"wcet must be positive, got {self.wcet}")
        if self.wcet > self.period:
            raise ConfigurationError(
                f"wcet {self.wcet} exceeds period {self.period}: task is "
                "infeasible on a unit-speed resource"
            )

    @property
    def deadline(self) -> int:
        """Relative deadline (implicit: equals the period)."""
        return self.period

    @property
    def utilization(self) -> Fraction:
        """Exact utilization ``C/T`` as a fraction (no float drift)."""
        return Fraction(self.wcet, self.period)

    def with_client(self, client_id: int) -> "PeriodicTask":
        """Return a copy of this task assigned to ``client_id``."""
        return PeriodicTask(
            period=self.period, wcet=self.wcet, name=self.name, client_id=client_id
        )

    def scaled(self, factor: float) -> "PeriodicTask":
        """Return a copy with the WCET scaled by ``factor`` (min 1)."""
        new_wcet = max(1, round(self.wcet * factor))
        new_wcet = min(new_wcet, self.period)
        return PeriodicTask(
            period=self.period, wcet=new_wcet, name=self.name, client_id=self.client_id
        )


@dataclass
class Job:
    """One release of a periodic task.

    Jobs are what the simulator actually schedules; analysis modules work
    on :class:`PeriodicTask` directly.
    """

    task: PeriodicTask
    release: int
    job_index: int
    remaining: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.remaining < 0:
            self.remaining = self.task.wcet

    @property
    def absolute_deadline(self) -> int:
        return self.release + self.task.deadline

    @property
    def finished(self) -> bool:
        return self.remaining == 0

    def execute(self, amount: int = 1) -> int:
        """Consume up to ``amount`` units of work; return units consumed."""
        consumed = min(amount, self.remaining)
        self.remaining -= consumed
        return consumed
