"""Periodic task model and synthetic workload generators."""

from repro.tasks.task import Job, PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.tasks.generators import (
    assign_round_robin,
    generate_client_tasksets,
    generate_taskset,
    generate_transaction_taskset,
    log_uniform_periods,
    uunifast,
    uunifast_discard,
)

__all__ = [
    "Job",
    "PeriodicTask",
    "TaskSet",
    "assign_round_robin",
    "generate_client_tasksets",
    "generate_taskset",
    "generate_transaction_taskset",
    "log_uniform_periods",
    "uunifast",
    "uunifast_discard",
]
