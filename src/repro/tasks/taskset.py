"""Task-set container with the aggregate quantities the analysis needs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask


@dataclass
class TaskSet:
    """An ordered collection of periodic tasks.

    Order is preserved (it determines tie-breaks in simulations) but has
    no analytical meaning under EDF.
    """

    tasks: list[PeriodicTask] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.tasks = list(self.tasks)

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[PeriodicTask]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> PeriodicTask:
        return self.tasks[index]

    def add(self, task: PeriodicTask) -> None:
        self.tasks.append(task)

    def extend(self, tasks: Iterable[PeriodicTask]) -> None:
        self.tasks.extend(tasks)

    # -- aggregates ----------------------------------------------------------
    @property
    def utilization(self) -> Fraction:
        """Exact total utilization ``sum C_i / T_i``."""
        total = Fraction(0)
        for task in self.tasks:
            total += task.utilization
        return total

    @property
    def utilization_float(self) -> float:
        return float(self.utilization)

    @property
    def min_period(self) -> int:
        """``min T_i`` — appears in the paper's Theorem 2 period bound."""
        if not self.tasks:
            raise ConfigurationError("min_period of an empty task set is undefined")
        return min(task.period for task in self.tasks)

    @property
    def max_period(self) -> int:
        if not self.tasks:
            raise ConfigurationError("max_period of an empty task set is undefined")
        return max(task.period for task in self.tasks)

    def hyperperiod(self) -> int:
        """Least common multiple of all periods (1 for an empty set)."""
        value = 1
        for task in self.tasks:
            value = math.lcm(value, task.period)
        return value

    # -- partitioning ----------------------------------------------------------
    def by_client(self) -> dict[int, "TaskSet"]:
        """Group tasks by ``client_id`` (tasks lacking one raise)."""
        groups: dict[int, TaskSet] = {}
        for task in self.tasks:
            if task.client_id is None:
                raise ConfigurationError(
                    f"task {task.name or task} has no client assignment"
                )
            groups.setdefault(task.client_id, TaskSet()).add(task)
        return groups

    def for_client(self, client_id: int) -> "TaskSet":
        """Tasks assigned to one client (possibly empty)."""
        return TaskSet([t for t in self.tasks if t.client_id == client_id])

    def merged_with(self, other: "TaskSet") -> "TaskSet":
        return TaskSet(self.tasks + other.tasks)

    def scaled(self, factor: float) -> "TaskSet":
        """Scale all WCETs by ``factor`` (used by utilization sweeps)."""
        return TaskSet([task.scaled(factor) for task in self.tasks])

    def sorted_by_period(self) -> "TaskSet":
        return TaskSet(sorted(self.tasks, key=lambda t: (t.period, t.wcet)))
