"""Synthetic task-set generation.

Sec. 6.3 of the paper generates random periodic workloads offline "with
specified periods and implicit deadlines, bounding the interconnect
utilization between 70% and 90%".  This module provides the standard
machinery used for such experiments:

* :func:`uunifast` / :func:`uunifast_discard` — the classic UUniFast
  utilization-splitting algorithm (Bini & Buttazzo), with the discard
  variant that guarantees every share stays below a cap.
* :func:`log_uniform_periods` — periods drawn log-uniformly from a
  range, the usual convention for real-time evaluation.
* :func:`generate_taskset` — combine the two into a concrete integer
  ``(T, C)`` task set with a target total utilization.
* :func:`generate_client_tasksets` — partition a system-wide workload
  over ``n`` clients, the configuration Figs. 6 and 7 sweep.

All generators take an explicit :class:`random.Random` so that every
experiment is reproducible from a seed.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def uunifast(rng: random.Random, n: int, total_utilization: float) -> list[float]:
    """Split ``total_utilization`` into ``n`` unbiased uniform shares."""
    if n <= 0:
        raise ConfigurationError(f"need at least one task, got n={n}")
    if total_utilization <= 0:
        raise ConfigurationError(
            f"total utilization must be positive, got {total_utilization}"
        )
    shares: list[float] = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        shares.append(remaining - next_remaining)
        remaining = next_remaining
    shares.append(remaining)
    return shares


def uunifast_discard(
    rng: random.Random,
    n: int,
    total_utilization: float,
    cap: float = 1.0,
    max_attempts: int = 1000,
) -> list[float]:
    """UUniFast, re-drawing until every share is at most ``cap``.

    Required when ``total_utilization > 1`` (multi-client workloads):
    plain UUniFast can emit an individual share above 1, which no single
    client can sustain.
    """
    if cap <= 0:
        raise ConfigurationError(f"cap must be positive, got {cap}")
    if total_utilization > n * cap:
        raise ConfigurationError(
            f"cannot split utilization {total_utilization} into {n} shares "
            f"of at most {cap}"
        )
    for _ in range(max_attempts):
        shares = uunifast(rng, n, total_utilization)
        if all(share <= cap for share in shares):
            return shares
    raise ConfigurationError(
        f"uunifast_discard failed after {max_attempts} attempts "
        f"(n={n}, U={total_utilization}, cap={cap})"
    )


def log_uniform_periods(
    rng: random.Random,
    n: int,
    period_min: int,
    period_max: int,
    granularity: int = 1,
) -> list[int]:
    """Draw ``n`` periods log-uniformly from [period_min, period_max].

    ``granularity`` rounds periods to a multiple (e.g. 10 cycles), which
    keeps hyperperiods manageable in simulation.
    """
    if period_min <= 0 or period_max < period_min:
        raise ConfigurationError(
            f"invalid period range [{period_min}, {period_max}]"
        )
    if granularity <= 0:
        raise ConfigurationError(f"granularity must be positive, got {granularity}")
    periods: list[int] = []
    log_lo = math.log(period_min)
    log_hi = math.log(period_max)
    for _ in range(n):
        raw = math.exp(rng.uniform(log_lo, log_hi))
        snapped = max(period_min, round(raw / granularity) * granularity)
        snapped = min(snapped, period_max)
        periods.append(int(snapped))
    return periods


def generate_taskset(
    rng: random.Random,
    n_tasks: int,
    total_utilization: float,
    period_min: int = 100,
    period_max: int = 10_000,
    granularity: int = 10,
    utilization_cap: float = 1.0,
) -> TaskSet:
    """Generate an integer-parameter task set with ~``total_utilization``.

    WCETs are rounded to the nearest integer (minimum 1), so the realized
    utilization differs slightly from the target; callers needing the
    exact value should read ``TaskSet.utilization`` afterwards.
    """
    shares = uunifast_discard(rng, n_tasks, total_utilization, cap=utilization_cap)
    periods = log_uniform_periods(rng, n_tasks, period_min, period_max, granularity)
    tasks = []
    for index, (share, period) in enumerate(zip(shares, periods)):
        wcet = max(1, round(share * period))
        wcet = min(wcet, period)
        tasks.append(PeriodicTask(period=period, wcet=wcet, name=f"syn{index}"))
    return TaskSet(tasks)


def generate_transaction_taskset(
    rng: random.Random,
    n_tasks: int,
    total_utilization: float,
    wcet_min: int = 1,
    wcet_max: int = 8,
    period_min: int = 50,
    period_max: int = 20_000,
) -> TaskSet:
    """Generate memory-transaction tasks with small per-job bursts.

    The paper's traffic generators issue individual memory requests, so
    a transaction task's WCET (requests per job) is small; the period is
    derived from the drawn utilization share (``T = C / u``), clamped to
    the period range.  This matches Sec. 6.3's workloads better than
    :func:`generate_taskset` (whose WCETs grow with the period).
    """
    if wcet_min < 1 or wcet_max < wcet_min:
        raise ConfigurationError(
            f"invalid wcet range [{wcet_min}, {wcet_max}]"
        )
    shares = uunifast_discard(rng, n_tasks, total_utilization, cap=1.0)
    tasks = []
    for index, share in enumerate(shares):
        wcet = rng.randint(wcet_min, wcet_max)
        share = max(share, wcet / period_max)  # keep the period in range
        period = max(period_min, min(period_max, round(wcet / share)))
        if period == period_min and wcet < share * period:
            # A heavy share clamped at the minimum period: grow the burst
            # instead so the task's utilization stays near its share
            # (such tasks exceed wcet_max; they carry the heavy load).
            wcet = max(wcet, round(share * period))
        wcet = min(wcet, period)
        period = max(period, wcet)
        tasks.append(PeriodicTask(period=period, wcet=wcet, name=f"txn{index}"))
    return TaskSet(tasks)


def generate_client_tasksets(
    rng: random.Random,
    n_clients: int,
    tasks_per_client: int,
    system_utilization: float,
    period_min: int = 100,
    period_max: int = 10_000,
    wcet_min: int = 1,
    wcet_max: int = 8,
) -> dict[int, TaskSet]:
    """Generate one task set per client summing to ``system_utilization``.

    The system-wide utilization is first split over clients with
    UUniFast-discard (each client capped at 1.0), then each client's
    share is split over its transaction tasks.  Returned tasks carry
    their ``client_id``.
    """
    if n_clients <= 0:
        raise ConfigurationError(f"need at least one client, got {n_clients}")
    client_shares = uunifast_discard(
        rng, n_clients, system_utilization, cap=1.0
    )
    result: dict[int, TaskSet] = {}
    for client_id, share in enumerate(client_shares):
        # Guard against degenerate near-zero shares: give the client one
        # tiny task rather than an empty set so every port sees traffic.
        share = max(share, 1e-3)
        taskset = generate_transaction_taskset(
            rng,
            tasks_per_client,
            share,
            wcet_min=wcet_min,
            wcet_max=wcet_max,
            period_min=period_min,
            period_max=period_max,
        )
        result[client_id] = TaskSet(
            [task.with_client(client_id) for task in taskset]
        )
    return result


def assign_round_robin(tasks: Sequence[PeriodicTask], n_clients: int) -> TaskSet:
    """Assign a flat task list to clients round-robin (case-study mapping)."""
    if n_clients <= 0:
        raise ConfigurationError(f"need at least one client, got {n_clients}")
    assigned = [
        task.with_client(index % n_clients) for index, task in enumerate(tasks)
    ]
    return TaskSet(assigned)
