"""Interface selection: the minimum-bandwidth ``(Π, Θ)`` per VE (Sec. 5).

The level-ℓ interface selection problem: given the tasks (or lower-level
server tasks) belonging to each VE at level ℓ+1, choose each VE's
interface ``(Π_X, Θ_X)`` minimizing the bandwidth ``Θ_X/Π_X`` subject to
EDF schedulability of the VE's task set on the resulting periodic
resource.

The search follows the paper exactly:

* Theorem 2 bounds the feasible periods:
  ``Π_X <= min_{τi∈T_X} T_i / (2·(U_{ℓ+2} − U_X))``
  where ``U_{ℓ+2}`` is the total utilization of all tasks competing at
  this SE (the VE's own tasks plus its siblings').  When the VE has no
  competing siblings the bound degenerates; we then cap enumeration at
  ``min T_i`` (a longer period can never reduce the minimum bandwidth,
  because sbf's blackout interval 2(Π−Θ) must stay under min T_i).
* For each candidate ``Π``, schedulability is monotone in ``Θ``, so a
  binary search finds the minimal schedulable budget.
* Among all candidates the pair with minimum bandwidth wins; ties break
  toward the larger period (fewer server replenishments per unit time,
  i.e. less scheduling activity in the SE hardware).

How to run the search — engine backend, memo cache, search config — is
bundled in one :class:`~repro.analysis.context.AnalysisContext`; the
public functions still accept ``backend=`` / ``cache=`` keywords and
fold them into a context at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.cache import AnalysisCache, taskset_key
from repro.analysis.context import (
    DEFAULT_CONFIG,
    AnalysisContext,
    SelectionConfig,
)
from repro.analysis.prm import ResourceInterface
from repro.analysis.schedulability import is_schedulable
from repro.errors import ConfigurationError, InfeasibleError
from repro.tasks.taskset import TaskSet

__all__ = [
    "DEFAULT_CONFIG",
    "SelectionConfig",
    "SelectionResult",
    "brute_force_minimum_bandwidth",
    "minimal_budget_for_period",
    "minimal_budgets_for_periods",
    "select_interface",
    "theorem2_period_bound",
]


def theorem2_period_bound(
    taskset: TaskSet, sibling_utilization: Fraction
) -> int:
    """Theorem 2's necessary upper bound on Π_X.

    ``sibling_utilization`` is ``U_{ℓ+2} − U_X``: the combined
    utilization of tasks belonging to the *other* VEs sharing this SE.
    Returns ``min T_i`` when the bound degenerates (no siblings).
    """
    if len(taskset) == 0:
        raise ConfigurationError("period bound of an empty task set is undefined")
    min_period = taskset.min_period
    if sibling_utilization <= 0:
        return min_period
    bound = Fraction(min_period) / (2 * sibling_utilization)
    return int(min(bound, Fraction(min_period)))


def minimal_budget_for_period(
    taskset: TaskSet,
    period: int,
    backend: str | None = None,
    cache: AnalysisCache | None = None,
    *,
    ctx: AnalysisContext | None = None,
) -> int | None:
    """Binary-search the minimal schedulable Θ for a fixed Π.

    Returns ``None`` when even Θ=Π is unschedulable.
    """
    if period <= 0:
        raise ConfigurationError(f"period must be positive, got {period}")
    if len(taskset) == 0:
        return 0
    if ctx is None:
        ctx = AnalysisContext.resolve(backend, cache)
    if ctx.backend == "vectorized":
        return minimal_budgets_for_periods(taskset, [period], ctx=ctx)[0]
    utilization = taskset.utilization
    # Θ/Π must strictly exceed U, so start above the utilization floor.
    low = int(utilization * period) + 1
    high = period
    if low > high:
        return None
    if not is_schedulable(
        taskset, ResourceInterface(period, high), backend="scalar"
    ).schedulable:
        return None
    while low < high:
        mid = (low + high) // 2
        if is_schedulable(
            taskset, ResourceInterface(period, mid), backend="scalar"
        ).schedulable:
            high = mid
        else:
            low = mid + 1
    return low


def minimal_budgets_for_periods(
    taskset: TaskSet,
    periods: list[int],
    cache: AnalysisCache | None = None,
    *,
    ctx: AnalysisContext | None = None,
) -> list[int | None]:
    """Minimal schedulable Θ for *every* candidate Π at once (vectorized).

    The per-period binary searches advance in lock-step: each round
    batches one probe per still-open period into a single
    :func:`~repro.analysis.vectorized.schedulable_many` call, so the
    task set's demand grid is evaluated once and shared by the whole
    candidate front.  Schedulability is monotone in Θ at fixed Π, so
    the converged budgets are exactly the scalar binary search's.
    """
    from repro.analysis.vectorized import schedulable_many

    if ctx is None:
        ctx = AnalysisContext.resolve("vectorized", cache)
    memo = ctx.cache
    if len(taskset) == 0:
        return [0 for _ in periods]
    utilization = taskset.utilization
    p, q = utilization.numerator, utilization.denominator
    budgets: list[int | None] = [None] * len(periods)
    # Θ/Π must strictly exceed U, so each search starts above the
    # utilization floor; every probed (Π, Θ) therefore satisfies the
    # Theorem-1 bandwidth precondition by construction.
    lows = {i: (p * period) // q + 1 for i, period in enumerate(periods)}
    open_indices = [i for i, period in enumerate(periods) if lows[i] <= period]
    feasible = schedulable_many(
        taskset,
        [(periods[i], periods[i]) for i in open_indices],
        memo,
        utilization=utilization,
    )
    highs = {i: periods[i] for i, ok in zip(open_indices, feasible) if ok}
    searching = [i for i in highs if lows[i] < highs[i]]
    while searching:
        probes = [(periods[i], (lows[i] + highs[i]) // 2) for i in searching]
        verdicts = schedulable_many(
            taskset, probes, memo, utilization=utilization
        )
        still_open: list[int] = []
        for i, (_, mid), ok in zip(searching, probes, verdicts):
            if ok:
                highs[i] = mid
            else:
                lows[i] = mid + 1
            if lows[i] < highs[i]:
                still_open.append(i)
        searching = still_open
    for i in highs:
        budgets[i] = lows[i]
    return budgets


def _candidate_periods(upper: int, config: SelectionConfig) -> list[int]:
    """Periods to examine: exhaustive when small, evenly sampled otherwise."""
    lower = config.min_period
    if upper < lower:
        return []
    count = upper - lower + 1
    if config.max_period_candidates == 0 or count <= config.max_period_candidates:
        return list(range(lower, upper + 1))
    # Evenly sample, always including both endpoints.
    step = (upper - lower) / (config.max_period_candidates - 1)
    sampled = {lower + round(i * step) for i in range(config.max_period_candidates)}
    sampled.add(upper)
    return sorted(sampled)


@dataclass(frozen=True)
class SelectionResult:
    """A chosen interface and the search telemetry that produced it."""

    interface: ResourceInterface
    periods_examined: int
    period_bound: int

    @property
    def bandwidth(self) -> Fraction:
        return self.interface.bandwidth


def select_interface(
    taskset: TaskSet,
    sibling_utilization: Fraction = Fraction(0),
    config: SelectionConfig = DEFAULT_CONFIG,
    backend: str | None = None,
    cache: AnalysisCache | None = None,
    *,
    ctx: AnalysisContext | None = None,
) -> SelectionResult:
    """Find the minimum-bandwidth schedulable interface for one VE.

    Raises :class:`InfeasibleError` when no ``(Π, Θ)`` within the
    Theorem-2 period range schedules the task set.
    An empty task set yields the idle interface ``(1, 0)``.

    The ``vectorized`` backend resolves every candidate period's
    minimal-budget search against one shared demand grid
    (:func:`minimal_budgets_for_periods`); the ``scalar`` backend keeps
    the original one-test-per-candidate oracle.  Results are memoized
    in the context's cache keyed by the task set's exact ``(T, C)``
    multiset, the sibling utilization and the search config, so
    level-by-level composition reuses unchanged subtree selections
    across sweep points.

    ``ctx`` supersedes the ``config``/``backend``/``cache`` keywords;
    callers that already hold an :class:`AnalysisContext` pass it alone.
    """
    if len(taskset) == 0:
        return SelectionResult(
            interface=ResourceInterface(1, 0), periods_examined=0, period_bound=0
        )
    if ctx is None:
        ctx = AnalysisContext.resolve(backend, cache, config)
    memo = ctx.cache
    memo_key = memo.selection_key(
        taskset_key(taskset),
        sibling_utilization,
        ctx.config.memo_key(),
        ctx.backend,
    )
    cached = memo.get_selection(memo_key)
    if cached is not None:
        return cached
    period_bound = theorem2_period_bound(taskset, sibling_utilization)
    candidates = _candidate_periods(period_bound, ctx.config)
    if ctx.backend == "vectorized":
        budgets = minimal_budgets_for_periods(taskset, candidates, ctx=ctx)
    else:
        budgets = [
            minimal_budget_for_period(taskset, period, backend="scalar")
            for period in candidates
        ]
    best: ResourceInterface | None = None
    best_bw: Fraction | None = None
    for period, budget in zip(candidates, budgets):
        if budget is None:
            continue
        interface = ResourceInterface(period, budget)
        bandwidth = interface.bandwidth
        if (
            best_bw is None
            or bandwidth < best_bw
            or (bandwidth == best_bw and period > best.period)  # type: ignore[union-attr]
        ):
            best, best_bw = interface, bandwidth
    if best is None:
        raise InfeasibleError(
            f"no schedulable interface for task set with U="
            f"{taskset.utilization_float:.3f} within period bound {period_bound}"
        )
    result = SelectionResult(
        interface=best,
        periods_examined=len(candidates),
        period_bound=period_bound,
    )
    memo.put_selection(memo_key, result)
    return result


def brute_force_minimum_bandwidth(
    taskset: TaskSet, max_period: int
) -> ResourceInterface | None:
    """Exhaustive (Π, Θ) scan for the minimum-bandwidth interface.

    O(max_period²) schedulability tests — only for validating
    :func:`select_interface` on tiny task sets in the test suite.
    """
    best: ResourceInterface | None = None
    for period in range(1, max_period + 1):
        for budget in range(1, period + 1):
            interface = ResourceInterface(period, budget)
            if is_schedulable(taskset, interface).schedulable:
                if best is None or interface.bandwidth < best.bandwidth:
                    best = interface
                break  # larger budgets at this period only raise bandwidth
    return best
