"""The immutable system model: everything admission control reads.

A :class:`SystemModel` is the *pure analysis state* of one deployed
system: the tree topology, the baseline client task sets, the composed
hierarchy with every selected per-subtree ``(Π, Θ)`` interface, and the
:class:`~repro.analysis.context.AnalysisContext` (backend + thread-safe
memo cache + search config) all of that was derived with.  It is built
**once** — composing the whole hierarchy and warming the cache's
selection/grid tables as a side effect — then shared, read-only, by any
number of concurrent :class:`~repro.analysis.session.AdmissionSession`
per-request objects.

Frozen and picklable by design: a model can be shipped to executor
workers or a sharded service tier verbatim (the cache pickles a
consistent snapshot of its memo tables and re-creates its lock on the
other side), and two sessions over equal models answer admission
queries bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping

from repro.analysis.cache import AnalysisCache
from repro.analysis.context import AnalysisContext, SelectionConfig
from repro.analysis.composition import (
    CompositionResult,
    compose,
    default_deadline_margin,
)
from repro.errors import ConfigurationError
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.taskset import TaskSet
from repro.topology import TreeTopology, quadtree

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.analysis.session import AdmissionSession


@dataclass(frozen=True, eq=False)
class SystemModel:
    """Frozen bundle of topology, baseline workload and composed hierarchy.

    Build one with :meth:`build` (explicit workload) or
    :meth:`from_seed` (deterministic drawn workload, used by the
    service CLI and the benchmarks).  All fields are read-only; the
    per-request mutable state lives in
    :class:`~repro.analysis.session.AdmissionSession`.
    """

    topology: TreeTopology
    #: baseline per-client task sets (treat as immutable)
    client_tasksets: Mapping[int, TaskSet]
    #: backend + shared thread-safe cache + selection config
    context: AnalysisContext
    #: analysis deadline margin the baseline was composed with
    deadline_margin: int
    #: the composed hierarchy: every selected per-subtree interface
    baseline: CompositionResult
    #: optional human-readable label (reports, /model endpoint)
    label: str = field(default="")

    # -- construction --------------------------------------------------------
    @classmethod
    def build(
        cls,
        topology: TreeTopology,
        client_tasksets: Mapping[int, TaskSet],
        *,
        config: SelectionConfig | None = None,
        deadline_margin: int | None = None,
        backend: str | None = None,
        cache: AnalysisCache | None = None,
        label: str = "",
    ) -> "SystemModel":
        """Compose the hierarchy once and freeze the result.

        ``backend``/``cache``/``config`` default exactly like the rest
        of the analysis API (process-wide backend and cache,
        :data:`~repro.analysis.context.DEFAULT_CONFIG`); a long-running
        service passes a dedicated ``AnalysisCache()`` so its memo
        tables are isolated from the process default.  The composition
        itself warms the cache, so the first admission probes already
        reuse every baseline subtree selection.
        """
        ctx = AnalysisContext.resolve(backend, cache, config)
        margin = (
            default_deadline_margin(topology)
            if deadline_margin is None
            else deadline_margin
        )
        frozen_sets = {
            client: TaskSet(list(taskset))
            for client, taskset in sorted(client_tasksets.items())
        }
        baseline = compose(
            topology, frozen_sets, deadline_margin=margin, ctx=ctx
        )
        return cls(
            topology=topology,
            client_tasksets=MappingProxyType(frozen_sets),
            context=ctx,
            deadline_margin=margin,
            baseline=baseline,
            label=label,
        )

    @classmethod
    def from_seed(
        cls,
        n_clients: int,
        *,
        utilization: float = 0.3,
        tasks_per_client: int = 2,
        seed: int | str = 1,
        fanout: int = 4,
        config: SelectionConfig | None = None,
        backend: str | None = None,
        cache: AnalysisCache | None = None,
    ) -> "SystemModel":
        """A model over a deterministic drawn workload.

        Same generator the experiments use
        (:func:`~repro.tasks.generators.generate_client_tasksets`), so
        ``from_seed(16, utilization=0.3, seed=7)`` names one exact
        system forever — the service CLI, the load benchmark and the
        tests all reference models this way.
        """
        if n_clients < 1:
            raise ConfigurationError(
                f"need at least one client, got {n_clients}"
            )
        rng = random.Random(f"system-model/{seed}/{n_clients}/{utilization}")
        tasksets = generate_client_tasksets(
            rng, n_clients, tasks_per_client, utilization
        )
        topology = (
            quadtree(n_clients)
            if fanout == 4
            else TreeTopology(n_clients=n_clients, fanout=fanout)
        )
        return cls.build(
            topology,
            tasksets,
            config=config,
            backend=backend,
            cache=cache if cache is not None else AnalysisCache(),
            label=f"seed={seed} n={n_clients} u={utilization:g}",
        )

    # -- derived views -------------------------------------------------------
    @property
    def cache(self) -> AnalysisCache:
        """The shared, thread-safe memo cache sessions borrow."""
        return self.context.cache

    @property
    def backend(self) -> str:
        return self.context.backend

    @property
    def n_clients(self) -> int:
        return self.topology.n_clients

    @property
    def schedulable(self) -> bool:
        """Whether the baseline workload itself composed schedulably."""
        return self.baseline.schedulable

    @property
    def total_utilization(self) -> Fraction:
        """Exact combined utilization of the baseline task sets."""
        return sum(
            (ts.utilization for ts in self.client_tasksets.values()),
            Fraction(0),
        )

    def session(self, **kwargs) -> "AdmissionSession":
        """A fresh per-request :class:`AdmissionSession` over this model."""
        from repro.analysis.session import AdmissionSession

        return AdmissionSession(self, **kwargs)

    def describe(self) -> dict:
        """JSON-able summary (the service's ``GET /model`` payload)."""
        return {
            "label": self.label,
            "n_clients": self.n_clients,
            "fanout": self.topology.fanout,
            "depth": self.topology.depth,
            "nodes": self.topology.n_nodes(),
            "backend": self.backend,
            "deadline_margin": self.deadline_margin,
            "baseline_tasks": sum(
                len(ts) for ts in self.client_tasksets.values()
            ),
            "baseline_utilization": float(self.total_utilization),
            "baseline_schedulable": self.schedulable,
            "baseline_root_bandwidth": float(self.baseline.root_bandwidth),
        }

    # -- pickling ------------------------------------------------------------
    def __getstate__(self) -> dict:
        # MappingProxyType cannot pickle; ship the plain dict and
        # re-wrap on the other side.
        state = dict(self.__dict__)
        state["client_tasksets"] = dict(self.client_tasksets)
        return state

    def __setstate__(self, state: dict) -> None:
        state["client_tasksets"] = MappingProxyType(
            dict(state["client_tasksets"])
        )
        self.__dict__.update(state)
