"""Numpy-backed batch evaluation of dbf/sbf over step-point grids.

The scalar schedulability test re-scans every demand step point per
candidate ``(Π, Θ)``, recomputing ``dbf`` from scratch each time —
O(candidates × points × tasks) Python bytecode.  This module turns the
two hot loops into array programs:

* a :class:`StepGrid` materializes the *deduplicated* demand step
  points of a task set once (they only depend on the task set, not the
  candidate interface) together with the dbf value at each point, so
  every candidate of a search shares one demand evaluation;
* :func:`sbf_values` evaluates the supply bound function of one
  candidate over the whole grid in a handful of vector ops, and
  :func:`schedulable_many` folds that into per-candidate verdicts for a
  whole batch of interfaces at once.

Everything stays in int64 — the formulas are integer-exact, so the
vectorized verdicts are *identical* to the scalar oracle's (asserted by
the property suite and the analysis benchmark).  Grids whose Theorem-1
horizon would not fit the configured point budget fall back to a lazy
heap-merged scan with the same semantics and bounded memory.
"""

from __future__ import annotations

import heapq
from fractions import Fraction

import numpy as np

from repro.analysis.cache import AnalysisCache, TaskSetKey, taskset_key
from repro.analysis.prm import ResourceInterface
from repro.errors import ConfigurationError
from repro.tasks.taskset import TaskSet

#: largest step-point grid the vectorized path will materialize; beyond
#: this the (equally exact) lazy scan takes over
MAX_GRID_POINTS = 2_000_000

#: cells-per-chunk budget of the batched (candidates × points) supply
#: evaluation — bounds transient memory at ~8 int64 arrays of this size
MAX_BATCH_CELLS = 2_000_000


def sbf_values(ts: np.ndarray, period: int, budget: int) -> np.ndarray:
    """``sbf(t, (Π, Θ))`` for every t in ``ts`` (int64 array in/out).

    Same formula as :func:`repro.analysis.prm.sbf`, vectorized.
    """
    t_prime = ts - (period - budget)
    full_periods = t_prime // period
    epsilon = t_prime - period * full_periods - (period - budget)
    values = full_periods * budget + np.maximum(epsilon, 0)
    return np.where(t_prime < 0, 0, values)


def dbf_values(ts: np.ndarray, taskset: TaskSet) -> np.ndarray:
    """``dbf(t, taskset)`` for every t in ``ts`` (int64 array in/out)."""
    demands = np.zeros_like(ts)
    for task in taskset:
        demands += (ts // task.period) * task.wcet
    return demands


class StepGrid:
    """Deduplicated demand step points of one task set, with dbf values.

    Grown on demand to whatever horizon a Theorem-1 bound requires and
    shared — via :class:`~repro.analysis.cache.AnalysisCache` — by every
    candidate interface ever tested against this task set.
    """

    def __init__(self, taskset: TaskSet) -> None:
        by_period: dict[int, int] = {}
        for task in taskset:
            by_period[task.period] = by_period.get(task.period, 0) + task.wcet
        self.periods = np.array(sorted(by_period), dtype=np.int64)
        self.wcets = np.array(
            [by_period[p] for p in sorted(by_period)], dtype=np.int64
        )
        self.horizon = 0
        self.ts = np.empty(0, dtype=np.int64)
        self.demands = np.empty(0, dtype=np.int64)
        # Conservative materialization ceiling: points_within(H) <=
        # H·Σ 1/Pᵢ, so horizons up to `cap` always fit the point budget.
        inverse_sum = float(np.sum(1.0 / self.periods)) if len(self.periods) else 0.0
        self.cap = (
            int(MAX_GRID_POINTS / inverse_sum) if inverse_sum else MAX_GRID_POINTS
        )

    def points_within(self, horizon: int) -> int:
        """Upper bound on the number of step points in (0, horizon]."""
        return int(sum(horizon // int(p) for p in self.periods))

    def ensure(self, horizon: int) -> None:
        """Materialize step points and demands up to ``horizon``."""
        if horizon <= self.horizon:
            return
        ts = np.unique(
            np.concatenate(
                [
                    np.arange(p, horizon + 1, p, dtype=np.int64)
                    for p in self.periods
                ]
            )
        )
        demands = np.zeros_like(ts)
        for p, c in zip(self.periods, self.wcets):
            demands += (ts // p) * c
        # Publication order matters for concurrent readers (the shared
        # AnalysisCache hands one grid to many admission threads): the
        # arrays must be in place before the horizon that advertises
        # them.  Growth only ever *extends* the sorted point array, so
        # a reader pairing a newer array with an older horizon still
        # slices a correct prefix.
        self.ts = ts
        self.demands = demands
        self.horizon = horizon

    def upto(self, horizon: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of (step points, demands) within (0, horizon]."""
        self.ensure(horizon)
        # Snapshot both refs once so a concurrent ensure() cannot pair
        # points from one materialization with demands from another.
        ts, demands = self.ts, self.demands
        end = int(np.searchsorted(ts, horizon, side="right"))
        return ts[:end], demands[:end]


def grid_for(taskset: TaskSet, cache: AnalysisCache) -> StepGrid:
    """The (possibly cached) step grid of a task set."""
    key: TaskSetKey = taskset_key(taskset)
    grid = cache.get_grid(key)
    if grid is None:
        grid = StepGrid(taskset)
        cache.put_grid(key, grid)
    return grid


def theorem1_betas(
    utilization: Fraction, interfaces: list[tuple[int, int]]
) -> list[int]:
    """Exact ``ceil(β)`` per candidate, in integer arithmetic.

    Same quantity as :func:`repro.analysis.schedulability.theorem1_bound`
    — ``β = 2Θ(Π−Θ) / (Θ − UΠ)`` — computed with Python ints so huge
    utilization denominators cannot overflow.  Every candidate must
    satisfy ``Θ/Π > U`` strictly.
    """
    p, q = utilization.numerator, utilization.denominator
    betas: list[int] = []
    for period, budget in interfaces:
        denominator = budget * q - p * period
        if denominator <= 0:
            raise ConfigurationError(
                f"Theorem 1 needs bandwidth {budget}/{period} > U={utilization}"
            )
        numerator = 2 * budget * (period - budget) * q
        betas.append(-(-numerator // denominator))
    return betas


def _lazy_violation(
    grid: StepGrid, period: int, budget: int, beta: int
) -> tuple[int, int, int] | None:
    """Ascending heap-merged scan for grids too large to materialize.

    Exactly the scalar semantics — first step point in (0, β] with
    ``dbf > sbf`` — in O(points log periods) time and O(periods) memory.
    """
    heap: list[tuple[int, int]] = [
        (int(p), int(p)) for p in grid.periods if p <= beta
    ]
    heapq.heapify(heap)
    previous = 0
    slack = period - budget
    while heap:
        t, task_period = heapq.heappop(heap)
        if t + task_period <= beta:
            heapq.heappush(heap, (t + task_period, task_period))
        if t == previous:
            continue
        previous = t
        demand = int(sum((t // p) * c for p, c in zip(grid.periods, grid.wcets)))
        t_prime = t - slack
        if t_prime < 0:
            supply = 0
        else:
            full = t_prime // period
            supply = full * budget + max(t_prime - period * full - slack, 0)
        if demand > supply:
            return t, demand, supply
    return None


def first_violation(
    taskset: TaskSet,
    interface: ResourceInterface,
    beta: int,
    cache: AnalysisCache,
) -> tuple[int, int, int] | None:
    """First ``(t, demand, supply)`` with dbf > sbf in (0, β], or None.

    The vectorized replacement for the scalar Theorem-1 scan: demands
    come from the shared :class:`StepGrid`, supplies from one
    :func:`sbf_values` pass.
    """
    grid = grid_for(taskset, cache)
    if grid.points_within(beta) > MAX_GRID_POINTS:
        return _lazy_violation(grid, interface.period, interface.budget, beta)
    ts, demands = grid.upto(beta)
    if len(ts) == 0:
        return None
    supplies = sbf_values(ts, interface.period, interface.budget)
    violations = demands > supplies
    index = int(np.argmax(violations))
    if not violations[index]:
        return None
    return int(ts[index]), int(demands[index]), int(supplies[index])


def schedulable_many(
    taskset: TaskSet,
    interfaces: list[tuple[int, int]],
    cache: AnalysisCache,
    utilization: Fraction | None = None,
) -> list[bool]:
    """Theorem-1 verdicts for a whole batch of candidate ``(Π, Θ)``.

    All candidates must have bandwidth strictly above the task-set
    utilization (the binary-search ranges used by interface selection
    guarantee it); degenerate cases stay with the scalar entry point.
    Callers that already hold ``taskset.utilization`` can pass it via
    ``utilization`` to skip re-deriving the Fraction sum per call.

    One shared demand grid serves the entire batch, and supplies are
    evaluated as a single (candidates × points) array program — chunked
    to :data:`MAX_BATCH_CELLS` — instead of one scan per candidate.
    Points beyond a candidate's own Theorem-1 bound β are masked out,
    which keeps the verdict bit-identical to the scalar per-candidate
    scan (a schedulable pair satisfies dbf<=sbf *everywhere*, so the
    masking only matters for unschedulable ones, whose witness sits
    inside (0, β] by Theorem 1).
    """
    if not interfaces:
        return []
    if utilization is None:
        utilization = taskset.utilization
    betas = theorem1_betas(utilization, interfaces)
    grid = grid_for(taskset, cache)
    cap = grid.cap
    verdicts: list[bool | None] = [None] * len(interfaces)
    batched: list[int] = []
    for i, beta in enumerate(betas):
        if beta > cap and grid.points_within(beta) > MAX_GRID_POINTS:
            period, budget = interfaces[i]
            verdicts[i] = _lazy_violation(grid, period, budget, beta) is None
        else:
            batched.append(i)
    if not batched:
        return verdicts  # type: ignore[return-value]
    # Ascending-β order lets each chunk slice the grid at its *own*
    # largest horizon — one huge-β probe no longer inflates the work of
    # every small-β candidate sharing its batch.
    batched.sort(key=lambda i: betas[i])
    ts, demands = grid.upto(betas[batched[-1]])
    if len(ts) == 0:
        for i in batched:
            verdicts[i] = True
        return verdicts  # type: ignore[return-value]
    periods = np.array([interfaces[i][0] for i in batched], dtype=np.int64)
    budgets = np.array([interfaces[i][1] for i in batched], dtype=np.int64)
    beta_arr = np.array([betas[i] for i in batched], dtype=np.int64)
    ends = np.searchsorted(ts, beta_arr, side="right")
    start = 0
    while start < len(batched):
        stop = start + 1
        while (
            stop < len(batched)
            and int(ends[stop]) * (stop + 1 - start) <= MAX_BATCH_CELLS
        ):
            stop += 1
        end = int(ends[stop - 1])
        if end == 0:
            for i in batched[start:stop]:
                verdicts[i] = True
            start = stop
            continue
        p = periods[start:stop, None]
        b = budgets[start:stop, None]
        slack = p - b
        t_prime = ts[None, :end] - slack
        full = t_prime // p
        epsilon = t_prime - p * full - slack
        supplies = np.where(
            t_prime < 0, 0, full * b + np.maximum(epsilon, 0)
        )
        ok = (demands[None, :end] <= supplies) | (
            ts[None, :end] > beta_arr[start:stop, None]
        )
        for offset, verdict in enumerate(ok.all(axis=1)):
            verdicts[batched[start + offset]] = bool(verdict)
        start = stop
    return verdicts  # type: ignore[return-value]
