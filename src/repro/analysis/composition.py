"""Hierarchical (iterative) composition over the BlueScale quadtree.

Sec. 5: interface selection problems are resolved level by level, from
the leaf SEs (level L) up to the root (level 0).  At level ℓ, each SE
selects one interface per local client:

* for leaf SEs the local clients are system clients and the task sets
  are the application task sets;
* for internal SEs the local clients are child SEs, and each child
  contributes its (up to four) server tasks as the VE's task set.

After level 0 is resolved, the memory controller must not be
over-utilized by the root's server tasks: ``Σ Θ_X/Π_X <= 1``.

Both :func:`compose` (whole tree) and :func:`update_client` (one
client's root path) resolve each SE through the same
:func:`_resolve_node` step, driven by a single
:class:`~repro.analysis.context.AnalysisContext` built once at the
entry point — no per-call backend/cache threading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.analysis.cache import AnalysisCache
from repro.analysis.context import (
    DEFAULT_CONFIG,
    AnalysisContext,
    SelectionConfig,
)
from repro.analysis.interface_selection import select_interface
from repro.analysis.prm import ResourceInterface
from repro.errors import ConfigurationError, InfeasibleError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.topology import NodeId, TreeTopology


@dataclass
class CompositionResult:
    """All interfaces selected across the tree, plus the root check.

    ``interfaces[node][port]`` is the interface of the VE serving local
    client ``port`` of SE ``node`` (idle ports get the zero interface).
    """

    topology: TreeTopology
    interfaces: dict[NodeId, list[ResourceInterface]] = field(default_factory=dict)
    schedulable: bool = True
    #: total bandwidth the root's server tasks demand of the memory controller
    root_bandwidth: Fraction = Fraction(0)
    #: human-readable reason when not schedulable
    failure: str = ""

    def interface_for(self, node: NodeId, port: int) -> ResourceInterface:
        return self.interfaces[node][port]

    def node_bandwidth(self, node: NodeId) -> Fraction:
        """Combined bandwidth of one SE's server tasks."""
        return sum(
            (iface.bandwidth for iface in self.interfaces[node]), Fraction(0)
        )

    def server_taskset(self, node: NodeId) -> TaskSet:
        """The SE's non-idle server tasks, as periodic tasks (T=Π, C=Θ)."""
        tasks = TaskSet()
        for port, iface in enumerate(self.interfaces[node]):
            if iface.budget > 0:
                tasks.add(iface.as_server_task(name=f"srv{node}:{port}", client_id=port))
        return tasks


#: fraction of each deadline reserved for cross-level pipeline jitter
RELATIVE_MARGIN = 0.10


def tighten_deadlines(
    taskset: TaskSet, margin: int, relative_margin: float = RELATIVE_MARGIN
) -> TaskSet:
    """Shrink task periods/deadlines for analysis purposes.

    The compositional model guarantees that a job's transactions are
    *forwarded through each SE* by its deadline; two effects sit outside
    the per-SE model and are absorbed by margins here:

    * the constant pipeline latency (one cycle per SE on the request
      path, the controller, the response demux chain) — the absolute
      ``margin``;
    * supply blackouts of the *interior* levels' server tasks, which a
      request crosses after leaving its leaf SE — the ``relative_margin``
      fraction of each deadline.

    Shrinking the period (the analysis uses it as both rate and
    deadline) slightly over-states long-run demand, which is
    conservative: compositions tighten, never loosen.
    """
    if margin <= 0 and relative_margin <= 0:
        return taskset
    return TaskSet(
        [
            PeriodicTask(
                period=max(
                    task.wcet,
                    task.period - margin - round(relative_margin * task.period),
                ),
                wcet=task.wcet,
                name=task.name,
                client_id=task.client_id,
            )
            for task in taskset
        ]
    )


def _port_tasksets(
    topology: TreeTopology,
    node: NodeId,
    client_tasksets: dict[int, TaskSet],
    result: CompositionResult,
    deadline_margin: int = 0,
) -> list[TaskSet]:
    """The task set presented at each local-client port of ``node``."""
    fanout = topology.fanout
    level, order = node
    port_sets: list[TaskSet] = []
    if level == topology.depth:
        first = order * fanout
        for port in range(fanout):
            client_id = first + port
            if client_id < topology.n_clients:
                port_sets.append(
                    tighten_deadlines(
                        client_tasksets.get(client_id, TaskSet()),
                        deadline_margin,
                    )
                )
            else:
                port_sets.append(TaskSet())
    else:
        for child in topology.children(node):
            if child in result.interfaces:
                port_sets.append(result.server_taskset(child))
            else:
                port_sets.append(TaskSet())
    return port_sets


def default_deadline_margin(topology: TreeTopology) -> int:
    """Constant end-to-end path latency of the deepest client.

    One cycle per SE on the request path, one for the controller, and
    one per demux level plus one on the response path.
    """
    request_hops = topology.depth + 1
    response_hops = topology.depth + 2
    return request_hops + 1 + response_hops


def _resolve_node(
    node: NodeId,
    port_sets: list[TaskSet],
    result: CompositionResult,
    ctx: AnalysisContext,
) -> None:
    """Select every port interface of one SE and record the outcome.

    Shared by :func:`compose` and :func:`update_client` so the two can
    never disagree on what resolving an SE means: over-utilization
    checks, per-port selection, the full-bandwidth fallback that keeps
    an infeasible composition observable, and the SE-local bandwidth
    cap are all applied here, mutating ``result`` in place.
    """
    total_util = sum((ts.utilization for ts in port_sets), Fraction(0))
    if total_util > 1:
        result.schedulable = False
        result.failure = (
            f"SE{node} is over-utilized: local demand "
            f"{float(total_util):.3f} > 1"
        )
    interfaces: list[ResourceInterface] = []
    for port, taskset in enumerate(port_sets):
        if len(taskset) == 0:
            interfaces.append(ResourceInterface(1, 0))
            continue
        sibling_util = total_util - taskset.utilization
        try:
            selection = select_interface(taskset, sibling_util, ctx=ctx)
            interfaces.append(selection.interface)
        except InfeasibleError as exc:
            result.schedulable = False
            if not result.failure:
                result.failure = f"SE{node} port {port}: {exc}"
            # Fall back to a full-bandwidth interface so the
            # composition can continue and report root pressure.
            fallback_period = max(taskset.min_period // 2, 1)
            interfaces.append(
                ResourceInterface(fallback_period, fallback_period)
            )
    result.interfaces[node] = interfaces
    selected_bw = result.node_bandwidth(node)
    if selected_bw > 1 and result.schedulable:
        # The SE forwards at most one transaction per slot; four
        # servers jointly demanding more cannot all be honored.
        result.schedulable = False
        result.failure = (
            f"SE{node}: selected server bandwidths sum to "
            f"{float(selected_bw):.3f} > 1"
        )


def _check_root(result: CompositionResult) -> None:
    """Apply the memory-controller utilization check to the root."""
    result.root_bandwidth = result.node_bandwidth((0, 0))
    if result.root_bandwidth > 1:
        result.schedulable = False
        if not result.failure:
            result.failure = (
                f"memory controller over-utilized: root bandwidth "
                f"{float(result.root_bandwidth):.3f} > 1"
            )


def compose(
    topology: TreeTopology,
    client_tasksets: dict[int, TaskSet],
    config: SelectionConfig = DEFAULT_CONFIG,
    deadline_margin: int | None = None,
    backend: str | None = None,
    cache: AnalysisCache | None = None,
    *,
    ctx: AnalysisContext | None = None,
) -> CompositionResult:
    """Resolve all interface-selection problems from level L down to 0.

    Never raises on infeasibility: the returned result carries
    ``schedulable=False`` and a ``failure`` message, because experiments
    (Fig. 7's utilization sweep) need to observe infeasible points, not
    crash on them.

    ``ctx`` (or the ``config``/``backend``/``cache`` compatibility
    keywords it is built from) selects and memoizes the per-VE searches
    (see :func:`~repro.analysis.interface_selection.select_interface`):
    sweeps that re-compose mostly-unchanged trees reuse every unchanged
    subtree's selection from the context's cache.
    """
    for client_id in client_tasksets:
        if not 0 <= client_id < topology.n_clients:
            raise ConfigurationError(
                f"task set given for client {client_id}, but topology has "
                f"{topology.n_clients} clients"
            )
    if ctx is None:
        ctx = AnalysisContext.resolve(backend, cache, config)
    if deadline_margin is None:
        deadline_margin = default_deadline_margin(topology)
    result = CompositionResult(topology=topology)
    for level in range(topology.depth, -1, -1):
        for order in range(topology.nodes_at_level(level)):
            node = (level, order)
            if topology.subtree_client_range(level, order)[0] >= topology.n_clients:
                continue  # pruned empty subtree
            port_sets = _port_tasksets(
                topology, node, client_tasksets, result, deadline_margin
            )
            _resolve_node(node, port_sets, result, ctx)
    _check_root(result)
    return result


def update_client(
    result: CompositionResult,
    client_tasksets: dict[int, TaskSet],
    client_id: int,
    config: SelectionConfig = DEFAULT_CONFIG,
    deadline_margin: int | None = None,
    backend: str | None = None,
    cache: AnalysisCache | None = None,
    *,
    ctx: AnalysisContext | None = None,
) -> CompositionResult:
    """Re-resolve only the SEs on one client's memory-request path.

    This mirrors the paper's scheduling-scalability property: when a
    task joins or leaves a client, only the server tasks along that
    client's path to the root are refreshed; all other interfaces are
    reused verbatim.
    """
    topology = result.topology
    if ctx is None:
        ctx = AnalysisContext.resolve(backend, cache, config)
    if deadline_margin is None:
        deadline_margin = default_deadline_margin(topology)
    fresh = CompositionResult(topology=topology)
    fresh.interfaces = dict(result.interfaces)
    fresh.schedulable = True
    for node in topology.path_to_root(client_id):
        # leaf first, root last — same order as compose()
        port_sets = _port_tasksets(
            topology, node, client_tasksets, fresh, deadline_margin
        )
        _resolve_node(node, port_sets, fresh, ctx)
    _check_root(fresh)
    return fresh
