"""Sensitivity analysis: how much load a configuration can take.

Classic real-time design-space questions the composition can answer
directly, without simulation:

* **breakdown utilization** — scale a workload's execution times up
  until the composition stops being schedulable; the largest surviving
  scale factor measures the configuration's head-room
  (:func:`breakdown_scale`, :func:`breakdown_utilization`).
* **admission test** — would adding one task to one client keep the
  system schedulable? (:func:`can_admit`) — the online question an
  integrator asks before loading new software.  The long-running form
  of this question lives in
  :class:`~repro.analysis.session.AdmissionSession`, which wraps the
  same machinery around a prebuilt
  :class:`~repro.analysis.model.SystemModel`.
* **critical clients** — which client's demand is closest to its
  interface's capacity (:func:`slack_per_client`), i.e. where the next
  task should *not* go.

Every probe of a search shares one
:class:`~repro.analysis.context.AnalysisContext` (resolved once at the
entry point), so all compositions of a breakdown search hit the same
memo cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.cache import AnalysisCache
from repro.analysis.context import (
    DEFAULT_CONFIG,
    AnalysisContext,
    SelectionConfig,
)
from repro.analysis.composition import (
    CompositionResult,
    compose,
    default_deadline_margin,
    tighten_deadlines,
    update_client,
)
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.topology import TreeTopology


def _scaled_tasksets(
    client_tasksets: dict[int, TaskSet], factor: float
) -> dict[int, TaskSet]:
    return {
        client: taskset.scaled(factor)
        for client, taskset in client_tasksets.items()
    }


@dataclass(frozen=True)
class BreakdownResult:
    """Outcome of the breakdown search."""

    scale: float
    utilization: float
    #: composition at the breakdown scale (the last schedulable one)
    composition: CompositionResult


def breakdown_scale(
    topology: TreeTopology,
    client_tasksets: dict[int, TaskSet],
    config: SelectionConfig = DEFAULT_CONFIG,
    precision: float = 0.01,
    max_scale: float = 16.0,
    backend: str | None = None,
    cache: AnalysisCache | None = None,
    *,
    ctx: AnalysisContext | None = None,
) -> BreakdownResult:
    """Largest WCET scale factor that stays schedulable.

    Binary search over the scale (schedulability is effectively
    monotone in demand); ``precision`` bounds the returned factor's
    absolute error.  Raises when even the unscaled workload fails.

    Every probe composes the whole tree, but all probes share the
    context's :class:`~repro.analysis.cache.AnalysisCache`: a subtree
    whose scaled task sets round to parameters already composed at an
    earlier probe reuses those selections instead of re-deriving them
    (and the bracketing re-compose of an already-probed scale is free).
    """
    if precision <= 0:
        raise ConfigurationError(f"precision must be positive, got {precision}")
    if ctx is None:
        ctx = AnalysisContext.resolve(backend, cache, config)
    base = compose(topology, client_tasksets, ctx=ctx)
    if not base.schedulable:
        raise ConfigurationError(
            f"workload is unschedulable before scaling: {base.failure}"
        )
    low, low_result = 1.0, base
    high = max_scale
    # find an unschedulable upper bracket
    while high <= max_scale and compose(
        topology, _scaled_tasksets(client_tasksets, high), ctx=ctx
    ).schedulable:
        low = high
        high *= 2
        if high > max_scale:
            # already schedulable at the cap: report the cap
            scaled = _scaled_tasksets(client_tasksets, low)
            result = compose(topology, scaled, ctx=ctx)
            utilization = sum(
                (ts.utilization for ts in scaled.values()), Fraction(0)
            )
            return BreakdownResult(low, float(utilization), result)
    while high - low > precision:
        mid = (low + high) / 2
        result = compose(
            topology, _scaled_tasksets(client_tasksets, mid), ctx=ctx
        )
        if result.schedulable:
            low, low_result = mid, result
        else:
            high = mid
    scaled = _scaled_tasksets(client_tasksets, low)
    utilization = sum((ts.utilization for ts in scaled.values()), Fraction(0))
    return BreakdownResult(low, float(utilization), low_result)


def breakdown_utilization(
    topology: TreeTopology,
    client_tasksets: dict[int, TaskSet],
    config: SelectionConfig = DEFAULT_CONFIG,
    precision: float = 0.01,
    backend: str | None = None,
    cache: AnalysisCache | None = None,
    *,
    ctx: AnalysisContext | None = None,
) -> float:
    """Total utilization at the breakdown point (the admission ceiling)."""
    if ctx is None:
        ctx = AnalysisContext.resolve(backend, cache, config)
    return breakdown_scale(
        topology, client_tasksets, precision=precision, ctx=ctx
    ).utilization


def can_admit(
    baseline: CompositionResult,
    client_tasksets: dict[int, TaskSet],
    client_id: int,
    task: PeriodicTask,
    config: SelectionConfig = DEFAULT_CONFIG,
    backend: str | None = None,
    cache: AnalysisCache | None = None,
    *,
    ctx: AnalysisContext | None = None,
) -> tuple[bool, CompositionResult]:
    """Online admission: would adding ``task`` to ``client_id`` keep the
    system schedulable?  Uses the path-local update, so the test costs
    O(log n) interface-selection problems.  Returns the verdict and the
    updated composition (apply it only on admit)."""
    if ctx is None:
        ctx = AnalysisContext.resolve(backend, cache, config)
    trial = dict(client_tasksets)
    trial[client_id] = trial.get(client_id, TaskSet()).merged_with(
        TaskSet([task.with_client(client_id)])
    )
    updated = update_client(baseline, trial, client_id, ctx=ctx)
    return updated.schedulable, updated


def slack_per_client(
    composition: CompositionResult,
    client_tasksets: dict[int, TaskSet],
) -> dict[int, float]:
    """Bandwidth slack of each client's leaf interface.

    ``slack = Θ/Π − U_tightened``: how much more (tightened) demand the
    client's selected interface could absorb before its own rate limit.
    Small slack marks the clients to avoid when placing new tasks.
    """
    topology = composition.topology
    margin = default_deadline_margin(topology)
    slack: dict[int, float] = {}
    for client, taskset in client_tasksets.items():
        if len(taskset) == 0:
            continue
        leaf, port = topology.leaf_of_client(client)
        interface = composition.interface_for(leaf, port)
        tightened = tighten_deadlines(taskset, margin)
        slack[client] = float(interface.bandwidth - tightened.utilization)
    return slack
