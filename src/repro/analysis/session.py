"""Per-request admission state over a shared, frozen system model.

An :class:`AdmissionSession` is the cheap, mutable counterpart of
:class:`~repro.analysis.model.SystemModel`: it borrows the model (and
the model's thread-safe :class:`~repro.analysis.cache.AnalysisCache`)
and layers the *per-request* state on top — the currently-admitted task
sets, the current composition, and whatever a probe needs to scratch
on.  Creating one costs two dict copies; the heavy state (composed
hierarchy, memoized step grids, subtree selections) stays in the model
and cache.

The admission primitives mirror the paper's scheduling-scalability
property: :meth:`probe`, :meth:`admit` and :meth:`evict` re-resolve
only the SEs on the touched client's path to the root
(:func:`~repro.analysis.composition.update_client`), so one admission
decision costs O(log n) interface-selection problems — and warm-cache
decisions are sub-millisecond, which is what makes the
:mod:`repro.service` daemon viable.

Sessions are internally locked: many threads may share one session (the
daemon shares its committed session across its worker pool), with
probes reading a consistent snapshot and commits serialized.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.cache import (
    AnalysisCache,
    CacheStats,
    taskset_digest,
)
from repro.analysis.context import AnalysisContext, SelectionConfig
from repro.analysis.composition import CompositionResult, update_client
from repro.analysis.model import SystemModel
from repro.analysis.sensitivity import (
    BreakdownResult,
    breakdown_scale,
    slack_per_client,
)
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class RejectionWitness:
    """Why an admission request was refused, with the numbers behind it.

    ``reason`` is the composition's failure message (over-utilized SE,
    infeasible selection, or root over-subscription); the rest situates
    it: which client asked, what the submission's exact analysis
    identity was, and how much bandwidth the failed composition's root
    would have demanded.
    """

    reason: str
    client_id: int
    taskset_digest: str
    submitted_utilization: Fraction
    root_bandwidth: Fraction

    def as_dict(self) -> dict:
        """JSON-able view (the service's rejection payload)."""
        return {
            "reason": self.reason,
            "client_id": self.client_id,
            "taskset_digest": self.taskset_digest,
            "submitted_utilization": float(self.submitted_utilization),
            "root_bandwidth": float(self.root_bandwidth),
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission probe or commit.

    Carries the updated composition either way: on admit it holds the
    interfaces the system would (or did) switch to; on reject it is the
    failed composition the :attr:`witness` summarizes.
    """

    admitted: bool
    client_id: int
    #: the submission's exact (T, C)-multiset digest
    taskset_digest: str
    #: composition after the path-local update (applied only on admit)
    composition: CompositionResult
    #: present exactly when ``admitted`` is False
    witness: RejectionWitness | None = None
    #: whether the decision was committed into the session's state
    committed: bool = False

    @property
    def interface(self):
        """The submitting client's selected leaf ``(Π, Θ)`` interface."""
        topology = self.composition.topology
        leaf, port = topology.leaf_of_client(self.client_id)
        return self.composition.interface_for(leaf, port)

    def path_interfaces(self) -> list[tuple[tuple[int, int], int, object]]:
        """``(node, port, interface)`` along the client's path to the root.

        The port at each hop is the child's (or client's) local port
        index — exactly the SEs a commit would reprogram.
        """
        topology = self.composition.topology
        hops: list[tuple[tuple[int, int], int, object]] = []
        port = topology.leaf_of_client(self.client_id)[1]
        for node in topology.path_to_root(self.client_id):
            hops.append(
                (node, port, self.composition.interface_for(node, port))
            )
            port = node[1] % topology.fanout
        return hops


class AdmissionSession:
    """Cheap per-request admission state borrowing one frozen model.

    ``backend``/``cache``/``config`` default to the model's own
    context; overriding them (e.g. ``backend="scalar"`` for a
    differential check) still reuses the model's baseline composition,
    which is backend-independent by construction.
    """

    def __init__(
        self,
        model: SystemModel,
        *,
        backend: str | None = None,
        cache: AnalysisCache | None = None,
        config: SelectionConfig | None = None,
    ) -> None:
        self.model = model
        base = model.context
        if backend is None and cache is None and config is None:
            self._ctx = base
        else:
            self._ctx = AnalysisContext(
                backend=base.backend if backend is None else backend,
                cache=base.cache if cache is None else cache,
                config=base.config if config is None else config,
            )
        # Committed state: replaced wholesale (copy-on-write), never
        # mutated in place, so concurrent probes always read a
        # consistent (tasksets, composition) pair.
        self._tasksets: dict[int, TaskSet] = dict(model.client_tasksets)
        self._composition: CompositionResult = model.baseline
        self._lock = threading.Lock()
        self._decisions = 0

    # -- read-only views -----------------------------------------------------
    @property
    def context(self) -> AnalysisContext:
        return self._ctx

    @property
    def composition(self) -> CompositionResult:
        """The currently-committed composition."""
        return self._composition

    @property
    def tasksets(self) -> dict[int, TaskSet]:
        """Copy of the currently-committed per-client task sets."""
        return dict(self._tasksets)

    @property
    def decisions(self) -> int:
        """How many probe/admit/evict decisions this session has made."""
        return self._decisions

    @property
    def cache_stats(self) -> CacheStats:
        """Point-in-time snapshot of the borrowed cache's counters."""
        return self._ctx.cache.stats_snapshot()

    # -- admission primitives ------------------------------------------------
    def _normalize(
        self, client_id: int, tasks: "TaskSet | PeriodicTask"
    ) -> TaskSet:
        if not 0 <= client_id < self.model.n_clients:
            raise ConfigurationError(
                f"client {client_id} out of range "
                f"[0, {self.model.n_clients})"
            )
        if isinstance(tasks, PeriodicTask):
            tasks = TaskSet([tasks])
        if len(tasks) == 0:
            raise ConfigurationError("an admission request needs >= 1 task")
        return TaskSet([task.with_client(client_id) for task in tasks])

    def _decide(
        self,
        client_id: int,
        submission: TaskSet,
        updated: CompositionResult,
    ) -> AdmissionDecision:
        digest = taskset_digest(submission)
        if updated.schedulable:
            return AdmissionDecision(
                admitted=True,
                client_id=client_id,
                taskset_digest=digest,
                composition=updated,
            )
        witness = RejectionWitness(
            reason=updated.failure,
            client_id=client_id,
            taskset_digest=digest,
            submitted_utilization=submission.utilization,
            root_bandwidth=updated.root_bandwidth,
        )
        return AdmissionDecision(
            admitted=False,
            client_id=client_id,
            taskset_digest=digest,
            composition=updated,
            witness=witness,
        )

    def _probe_submission(
        self, client_id: int, submission: TaskSet
    ) -> tuple[dict[int, TaskSet], AdmissionDecision]:
        # Snapshot once: commits replace these refs atomically.
        tasksets, composition = self._tasksets, self._composition
        trial = dict(tasksets)
        trial[client_id] = trial.get(client_id, TaskSet()).merged_with(
            submission
        )
        updated = update_client(
            composition,
            trial,
            client_id,
            deadline_margin=self.model.deadline_margin,
            ctx=self._ctx,
        )
        self._decisions += 1
        return trial, self._decide(client_id, submission, updated)

    def probe(
        self, client_id: int, tasks: "TaskSet | PeriodicTask"
    ) -> AdmissionDecision:
        """Would admitting ``tasks`` on ``client_id`` keep the system
        schedulable?  Read-only: the session's committed state is
        untouched either way."""
        submission = self._normalize(client_id, tasks)
        return self._probe_submission(client_id, submission)[1]

    def admit(
        self, client_id: int, tasks: "TaskSet | PeriodicTask"
    ) -> AdmissionDecision:
        """Probe, and commit the updated state when schedulable.

        Commits are serialized by the session lock; the probe runs
        inside it so two racing admissions cannot both commit against
        the same predecessor state.
        """
        submission = self._normalize(client_id, tasks)
        with self._lock:
            trial, decision = self._probe_submission(client_id, submission)
            if not decision.admitted:
                return decision
            self._tasksets = trial
            self._composition = decision.composition
            return AdmissionDecision(
                admitted=True,
                client_id=client_id,
                taskset_digest=decision.taskset_digest,
                composition=decision.composition,
                witness=None,
                committed=True,
            )

    def retask(
        self, client_id: int, tasks: "TaskSet | PeriodicTask"
    ) -> AdmissionDecision:
        """Atomically *replace* one client's task set (a mode switch).

        Unlike :meth:`admit` (which merges the submission into whatever
        the client already runs), ``retask`` swaps the declared set
        wholesale and re-resolves the client's path against the new
        demand — the analysis half of a ``RATE_CHANGE`` /
        ``MODE_SWITCH`` scenario event.  Commits only when the switched
        system stays schedulable; on rejection the old mode's state is
        kept untouched.
        """
        submission = self._normalize(client_id, tasks)
        with self._lock:
            tasksets = dict(self._tasksets)
            tasksets[client_id] = submission
            updated = update_client(
                self._composition,
                tasksets,
                client_id,
                deadline_margin=self.model.deadline_margin,
                ctx=self._ctx,
            )
            self._decisions += 1
            decision = self._decide(client_id, submission, updated)
            if not decision.admitted:
                return decision
            self._tasksets = tasksets
            self._composition = updated
            return AdmissionDecision(
                admitted=True,
                client_id=client_id,
                taskset_digest=decision.taskset_digest,
                composition=updated,
                committed=True,
            )

    def evict(self, client_id: int) -> AdmissionDecision:
        """Drop every task of one client and re-resolve its path.

        Removing demand can only loosen the hierarchy, so an evict
        always commits; the returned decision carries the relaxed
        composition.
        """
        with self._lock:
            tasksets = dict(self._tasksets)
            removed = tasksets.pop(client_id, TaskSet())
            updated = update_client(
                self._composition,
                tasksets,
                client_id,
                deadline_margin=self.model.deadline_margin,
                ctx=self._ctx,
            )
            self._tasksets = tasksets
            self._composition = updated
            self._decisions += 1
            return AdmissionDecision(
                admitted=True,
                client_id=client_id,
                taskset_digest=taskset_digest(removed),
                composition=updated,
                committed=True,
            )

    def reset(self) -> None:
        """Back to the model's baseline workload and composition."""
        with self._lock:
            self._tasksets = dict(self.model.client_tasksets)
            self._composition = self.model.baseline

    # -- design-space views --------------------------------------------------
    def breakdown(
        self, precision: float = 0.01, max_scale: float = 16.0
    ) -> BreakdownResult:
        """Breakdown search over the session's committed workload."""
        return breakdown_scale(
            self.model.topology,
            self.tasksets,
            precision=precision,
            max_scale=max_scale,
            ctx=self._ctx,
        )

    def slack(self) -> dict[int, float]:
        """Per-client leaf-interface bandwidth slack (committed state)."""
        return slack_per_client(self._composition, self._tasksets)

    @property
    def total_utilization(self) -> Fraction:
        """Exact combined utilization of the committed task sets."""
        return sum(
            (ts.utilization for ts in self._tasksets.values()), Fraction(0)
        )
