"""Memoization layer for the analysis engine.

Interface selection over a BlueScale tree repeats itself constantly:

* the level-ℓ problems of a quadtree present the *same* (task set,
  sibling-utilization) pair whenever a subtree is unchanged between two
  sweep points (utilization sweeps, breakdown searches, admission
  probes re-derive most of the tree verbatim);
* every schedulability probe of a candidate ``(Π, Θ)`` re-evaluates the
  demand bound function of the same task set over the same step points.

:class:`AnalysisCache` memoizes both: selection results keyed by task
set digests, and the vectorized engine's step-point grids (deduplicated
step points plus dbf values, shared across all candidate interfaces of
that task set).  Keys are exact — a task set is keyed by the sorted
multiset of its ``(T, C)`` pairs, which is precisely the information
dbf/sbf analysis depends on — so a cache hit is bit-identical to the
cold path by construction (and asserted by the property suite).

The cache is **thread-safe**: every table access and every stats
update happens under one internal lock, so a single shared cache can
serve concurrent admission requests (:mod:`repro.service`) without
corrupting the FIFO eviction order or the hit/miss counters.  The lock
is dropped on pickling and re-created on unpickling, which keeps
cache-carrying objects (e.g. :class:`repro.analysis.model.SystemModel`)
picklable across executor workers.

The default process-wide cache (:func:`get_default_cache`) is what
``cache=None`` resolves to; pass :data:`DISABLED` (or
``AnalysisCache(enabled=False)``) to force cold-path evaluation, e.g.
when benchmarking the scalar oracle.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Any

from repro.tasks.taskset import TaskSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.analysis.interface_selection import SelectionResult

#: exact cache key of a task set: the sorted multiset of (T, C) pairs
TaskSetKey = tuple[tuple[int, int], ...]


def taskset_key(taskset: TaskSet) -> TaskSetKey:
    """The exact analysis identity of a task set.

    dbf, sbf and every quantity derived from them depend only on the
    multiset of ``(period, wcet)`` pairs — names and client assignments
    are reporting metadata — so sorting makes the key canonical.
    """
    return tuple(sorted((task.period, task.wcet) for task in taskset))


def taskset_digest(taskset: TaskSet) -> str:
    """Short hex digest of :func:`taskset_key` for reports and logs."""
    raw = repr(taskset_key(taskset)).encode()
    return hashlib.sha256(raw).hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss counters, split per table.

    Counters are **cumulative over the cache's lifetime**: clearing the
    tables (:meth:`AnalysisCache.clear`) does not zero them, so a
    long-running service's hit-rate metrics survive an operator-issued
    cache flush.  :meth:`AnalysisCache.reset_stats` zeroes them
    explicitly.
    """

    selection_hits: int = 0
    selection_misses: int = 0
    grid_hits: int = 0
    grid_misses: int = 0

    @property
    def hits(self) -> int:
        return self.selection_hits + self.grid_hits

    @property
    def misses(self) -> int:
        return self.selection_misses + self.grid_misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the tables (0.0 when idle)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "selection_hits": self.selection_hits,
            "selection_misses": self.selection_misses,
            "grid_hits": self.grid_hits,
            "grid_misses": self.grid_misses,
        }


class AnalysisCache:
    """Bounded, thread-safe memo tables for selections and grids.

    ``max_selections`` / ``max_grids`` bound memory; eviction is FIFO
    (oldest insertion first), which is plenty for sweep workloads whose
    reuse is temporally clustered.  A disabled cache stores nothing and
    returns nothing, making the cold path trivially reachable.

    All lookups, inserts, evictions and stats updates are serialized by
    one internal lock, so any number of threads may share one cache —
    the admission-control daemon does exactly that.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_selections: int = 65_536,
        max_grids: int = 1_024,
    ) -> None:
        self.enabled = enabled
        self.max_selections = max_selections
        self.max_grids = max_grids
        self.stats = CacheStats()
        self._selections: dict[tuple, "SelectionResult"] = {}
        self._grids: dict[TaskSetKey, Any] = {}
        self._lock = threading.Lock()

    # -- selection results ---------------------------------------------------
    @staticmethod
    def selection_key(
        key: TaskSetKey,
        sibling_utilization: Fraction,
        config_key: tuple,
        backend: str,
    ) -> tuple:
        return (
            key,
            sibling_utilization.numerator,
            sibling_utilization.denominator,
            config_key,
            backend,
        )

    def get_selection(self, key: tuple) -> "SelectionResult | None":
        if not self.enabled:
            return None
        with self._lock:
            found = self._selections.get(key)
            if found is None:
                self.stats.selection_misses += 1
            else:
                self.stats.selection_hits += 1
            return found

    def put_selection(self, key: tuple, result: "SelectionResult") -> None:
        if not self.enabled:
            return
        with self._lock:
            if key not in self._selections and (
                len(self._selections) >= self.max_selections
            ):
                self._selections.pop(next(iter(self._selections)))
            self._selections[key] = result

    # -- step-point grids (vectorized backend) ------------------------------
    def get_grid(self, key: TaskSetKey) -> Any | None:
        if not self.enabled:
            return None
        with self._lock:
            found = self._grids.get(key)
            if found is None:
                self.stats.grid_misses += 1
            else:
                self.stats.grid_hits += 1
            return found

    def put_grid(self, key: TaskSetKey, grid: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            if key not in self._grids and len(self._grids) >= self.max_grids:
                self._grids.pop(next(iter(self._grids)))
            self._grids[key] = grid

    # -- bookkeeping ---------------------------------------------------------
    def clear(self) -> None:
        """Drop every memoized entry; the stats counters keep counting."""
        with self._lock:
            self._selections.clear()
            self._grids.clear()

    def reset_stats(self) -> CacheStats:
        """Zero the hit/miss counters; returns the retired ones."""
        with self._lock:
            retired = self.stats
            self.stats = CacheStats()
            return retired

    def stats_snapshot(self) -> CacheStats:
        """A consistent point-in-time copy of the counters."""
        with self._lock:
            return CacheStats(**self.stats.as_dict())

    def __len__(self) -> int:
        with self._lock:
            return len(self._selections) + len(self._grids)

    # -- pickling ------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Snapshot under the lock so a concurrently-used cache pickles
        # a consistent view; the lock itself cannot cross processes.
        with self._lock:
            state = dict(self.__dict__)
            state["_selections"] = dict(self._selections)
            state["_grids"] = dict(self._grids)
            state["stats"] = CacheStats(**self.stats.as_dict())
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


#: the always-cold cache: every lookup misses, nothing is stored
DISABLED = AnalysisCache(enabled=False)

_default_cache = AnalysisCache()


def get_default_cache() -> AnalysisCache:
    """The process-wide cache used when ``cache=None``."""
    return _default_cache


def set_default_cache(cache: AnalysisCache) -> AnalysisCache:
    """Swap the process-wide cache; returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def resolve_cache(cache: AnalysisCache | None) -> AnalysisCache:
    """Return ``cache`` itself, or the process-wide default for ``None``."""
    return _default_cache if cache is None else cache
