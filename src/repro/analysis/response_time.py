"""Worst-case response-time (WCRT) estimation on periodic resources.

The dbf<=sbf test answers *whether* deadlines are met; systems work
also needs *how early* — e.g. to size end-to-end latency budgets.  This
module derives demand-based WCRT bounds for EDF on a periodic resource
and composes them along a BlueScale path.

``wcrt_on_interface`` adapts Spuri's EDF response-time analysis to
supply bound functions, with optional release jitter per task.
``holistic_response_bounds`` composes it along BlueScale paths: each
task's accumulated upstream response becomes its jitter at the next
tree level (Tindell-style holistic analysis), and the per-level WCRTs
plus the constant pipeline latency bound the end-to-end response.  The
bounds are validated against simulated maxima in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.composition import CompositionResult
from repro.analysis.prm import ResourceInterface, dbf, sbf
from repro.analysis.schedulability import is_schedulable
from repro.errors import ConfigurationError, InfeasibleError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def supply_inverse(demand: int, interface: ResourceInterface) -> int:
    """Smallest t with ``sbf(t) >= demand`` (the supply delay bound).

    Closed form from the sbf structure: ``demand`` splits into full
    budgets plus a remainder delivered inside one period.
    """
    if demand < 0:
        raise ConfigurationError(f"demand must be non-negative, got {demand}")
    if demand == 0:
        return 0
    if interface.budget == 0:
        raise InfeasibleError("zero-budget interface never supplies demand")
    period, budget = interface.period, interface.budget
    full_periods, remainder = divmod(demand, budget)
    if remainder == 0:
        full_periods -= 1
        remainder = budget
    # t' must reach full_periods*period + (period - budget) + remainder
    t_prime = full_periods * period + (period - budget) + remainder
    t = t_prime + (period - budget)
    assert sbf(t, interface) >= demand
    assert t == 0 or sbf(t - 1, interface) < demand
    return t


_BUSY_PERIOD_CAP = 10_000_000


def busy_period_length(
    taskset: TaskSet,
    interface: ResourceInterface,
    jitters: dict[str, int] | None = None,
) -> int:
    """Length of the longest supply-busy period.

    Smallest ``t > 0`` with ``sbf(t) >= sum_i ceil((t + J_i)/T_i)*C_i``
    — the window in which any job's interference must fall.  ``J_i``
    is task i's release jitter (upstream delay), 0 by default.
    """
    if len(taskset) == 0:
        return 0
    jitters = jitters or {}
    t = supply_inverse(sum(task.wcet for task in taskset), interface)
    while True:
        released = sum(
            -(-(t + jitters.get(task.name, 0)) // task.period) * task.wcet
            for task in taskset
        )
        t_next = supply_inverse(released, interface)
        if t_next <= t:
            return t
        if t_next > _BUSY_PERIOD_CAP:
            raise InfeasibleError(
                f"busy period exceeds {_BUSY_PERIOD_CAP}: bandwidth too "
                "close to the task-set utilization"
            )
        t = t_next


def wcrt_on_interface(
    task: PeriodicTask,
    taskset: TaskSet,
    interface: ResourceInterface,
    jitters: dict[str, int] | None = None,
    require_schedulable: bool = True,
) -> int:
    """WCRT bound of ``task`` within ``taskset`` on a periodic resource.

    Spuri's EDF response-time analysis adapted to supply bound
    functions: for each release offset ``a`` of the task inside the
    synchronous busy period, the job with absolute deadline ``a + D_k``
    completes by the fixpoint of

        t = supply_inverse( (a//T_k + 1)*C_k  +  interference(t, a+D_k) )

    where task i contributes ``min(ceil(t/T_i), floor((d-D_i)/T_i)+1)``
    jobs (released before ``t`` *and* due no later than ``d``).  The
    WCRT is the maximum of ``t - a`` over all offsets.

    ``jitters`` maps task names to release-jitter bounds (upstream
    delays in a multi-level path, Tindell-style): a task with jitter
    ``J_i`` can present ``ceil((t + J_i)/T_i)`` arrivals in ``[0, t)``.

    Requires the pair to pass the dbf<=sbf test; raises otherwise.
    ``task`` itself need not be a member of ``taskset`` — if absent it
    is analyzed against the set plus itself.
    """
    if all(member is not task for member in taskset):
        taskset = taskset.merged_with(TaskSet([task]))
    if require_schedulable and not is_schedulable(taskset, interface).schedulable:
        raise InfeasibleError(
            "WCRT bound requires a schedulable (task set, interface) pair"
        )
    jitters = jitters or {}
    others = [m for m in taskset if m is not task]
    horizon = busy_period_length(taskset, interface, jitters)
    # Candidate release offsets of the analyzed job: its own periodic
    # releases, plus every offset aligning its absolute deadline with
    # another task's deadline (Spuri: the local maxima of the response
    # function sit at deadline coincidences, so checking only the
    # synchronous offsets under-estimates).
    offsets = {0}
    a = task.period
    while a < horizon:
        offsets.add(a)
        a += task.period
    for other in others:
        jitter = jitters.get(other.name, 0)
        base = other.deadline - jitter - task.deadline
        m = 0
        while True:
            candidate = base + m * other.period
            if candidate >= horizon:
                break
            if candidate > 0:
                offsets.add(candidate)
            m += 1
    wcrt = 0
    for offset in sorted(offsets):
        deadline = offset + task.deadline
        own_demand = (offset // task.period + 1) * task.wcet
        t = supply_inverse(own_demand, interface)
        while True:
            interference = 0
            for other in others:
                jitter = jitters.get(other.name, 0)
                by_release = -(-(t + jitter) // other.period)
                by_deadline = max(
                    0,
                    (deadline - other.deadline + jitter) // other.period + 1,
                )
                interference += min(by_release, by_deadline) * other.wcet
            t_next = supply_inverse(own_demand + interference, interface)
            if t_next == t:
                break
            if t_next > _BUSY_PERIOD_CAP:
                raise InfeasibleError(
                    "WCRT fixpoint diverged: demand outpaces the supply"
                )
            t = t_next
        wcrt = max(wcrt, t - offset)
    return wcrt


@dataclass(frozen=True)
class PathResponseBound:
    """End-to-end response bound of one client's tasks, per component.

    ``level_wcrt[i][name]`` is the task's WCRT at the i-th tree level on
    its path (leaf first): at each level the request re-queues against
    the whole subtree sharing that level's interface, so the end-to-end
    bound is the sum of per-level WCRTs plus the constant path latency.
    This holistic composition is pessimistic (each level assumes a fresh
    worst case) but holds against simulated maxima across the
    integration suite.
    """

    client_id: int
    #: per-level WCRT, leaf level first
    level_wcrt: list[dict[str, int]]
    #: constant pipeline + response-path latency
    path_latency: int

    def bound_for(self, task_name: str) -> int:
        return (
            sum(level[task_name] for level in self.level_wcrt)
            + self.path_latency
        )


def _qualified(client_id: int, task: PeriodicTask) -> PeriodicTask:
    """Copy of ``task`` with a tree-unique name (clients may reuse names)."""
    return PeriodicTask(
        period=task.period,
        wcet=task.wcet,
        name=f"c{client_id}:{task.name}",
        client_id=client_id,
    )


def holistic_response_bounds(
    client_tasksets: dict[int, TaskSet],
    composition: CompositionResult,
) -> dict[int, PathResponseBound]:
    """Jitter-aware end-to-end bounds for every client's tasks.

    Level by level from the leaves to the root: each task's accumulated
    upstream response becomes its release *jitter* at the next level
    (Tindell-style holistic analysis), so bursty arrivals caused by
    upstream shaping are accounted for.  At the leaf a task competes
    with its client's other tasks; at each interior port it competes
    with the whole subtree funnelling through that port.
    """
    topology = composition.topology
    qualified: dict[int, list[PeriodicTask]] = {
        client: [_qualified(client, task) for task in taskset]
        for client, taskset in client_tasksets.items()
        if len(taskset) > 0
    }
    accumulated: dict[str, int] = {}
    levels: dict[int, list[dict[str, int]]] = {c: [] for c in qualified}
    # Leaf level: per-client analysis on the client's own interface.
    for client, tasks in qualified.items():
        leaf, port = topology.leaf_of_client(client)
        interface = composition.interface_for(leaf, port)
        taskset = TaskSet(tasks)
        record: dict[str, int] = {}
        for original, task in zip(client_tasksets[client], tasks):
            wcrt = wcrt_on_interface(task, taskset, interface)
            accumulated[task.name] = wcrt
            record[original.name] = wcrt
        levels[client].append(record)
    # Interior levels, deepest first: ports serve whole subtrees.
    for level in range(topology.depth - 1, -1, -1):
        round_results: dict[str, int] = {}
        for order in range(topology.nodes_at_level(level)):
            node = (level, order)
            if node not in composition.interfaces:
                continue
            for port, child in enumerate(topology.children(node)):
                lo, hi = topology.subtree_client_range(child[0], child[1])
                subtree_clients = [
                    c for c in range(lo, min(hi, topology.n_clients))
                    if c in qualified
                ]
                if not subtree_clients:
                    continue
                interface = composition.interface_for(node, port)
                subtree_tasks = [
                    t for c in subtree_clients for t in qualified[c]
                ]
                taskset = TaskSet(subtree_tasks)
                jitters = {
                    t.name: accumulated[t.name] for t in subtree_tasks
                }
                for client in subtree_clients:
                    record: dict[str, int] = {}
                    for original, task in zip(
                        client_tasksets[client], qualified[client]
                    ):
                        # The interface was selected for the child's
                        # *server tasks*; the raw subtree union may not
                        # pass the plain dbf test, so run unchecked
                        # (the busy-period cap guards divergence).
                        wcrt = wcrt_on_interface(
                            task,
                            taskset,
                            interface,
                            jitters,
                            require_schedulable=False,
                        )
                        round_results[task.name] = accumulated[task.name] + wcrt
                        record[original.name] = wcrt
                    levels[client].append(record)
        accumulated.update(round_results)
    request_hops = topology.depth + 1
    response_hops = topology.depth + 2
    path_latency = request_hops + 1 + response_hops
    return {
        client: PathResponseBound(
            client_id=client,
            level_wcrt=levels[client],
            path_latency=path_latency,
        )
        for client in qualified
    }


def end_to_end_bound(
    client_id: int,
    client_tasksets: dict[int, TaskSet],
    composition: CompositionResult,
) -> PathResponseBound:
    """End-to-end bound for one client (see
    :func:`holistic_response_bounds`; computing a single client still
    requires the whole-tree pass, since interior levels need every
    subtree task's upstream jitter)."""
    own_taskset = client_tasksets.get(client_id)
    if own_taskset is None or len(own_taskset) == 0:
        raise ConfigurationError(f"client {client_id} has no tasks to bound")
    return holistic_response_bounds(client_tasksets, composition)[client_id]
