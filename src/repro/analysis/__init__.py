"""Schedulability analysis: periodic resource model, Theorems 1 & 2,
interface selection and hierarchical composition (paper Sec. 5)."""

from repro.analysis.prm import (
    ResourceInterface,
    dbf,
    dbf_step_points,
    dbf_task,
    sbf,
    sbf_linear_lower_bound,
)
from repro.analysis.schedulability import (
    SchedulabilityResult,
    is_schedulable,
    is_schedulable_exhaustive,
    theorem1_bound,
)
from repro.analysis.interface_selection import (
    SelectionConfig,
    SelectionResult,
    brute_force_minimum_bandwidth,
    minimal_budget_for_period,
    select_interface,
    theorem2_period_bound,
)
from repro.analysis.composition import (
    CompositionResult,
    compose,
    default_deadline_margin,
    tighten_deadlines,
    update_client,
)
from repro.analysis.sensitivity import (
    BreakdownResult,
    breakdown_scale,
    breakdown_utilization,
    can_admit,
    slack_per_client,
)
from repro.analysis.response_time import (
    PathResponseBound,
    busy_period_length,
    end_to_end_bound,
    holistic_response_bounds,
    supply_inverse,
    wcrt_on_interface,
)

__all__ = [
    "ResourceInterface",
    "dbf",
    "dbf_step_points",
    "dbf_task",
    "sbf",
    "sbf_linear_lower_bound",
    "SchedulabilityResult",
    "is_schedulable",
    "is_schedulable_exhaustive",
    "theorem1_bound",
    "SelectionConfig",
    "SelectionResult",
    "brute_force_minimum_bandwidth",
    "minimal_budget_for_period",
    "select_interface",
    "theorem2_period_bound",
    "CompositionResult",
    "compose",
    "default_deadline_margin",
    "tighten_deadlines",
    "update_client",
    "BreakdownResult",
    "breakdown_scale",
    "breakdown_utilization",
    "can_admit",
    "slack_per_client",
    "PathResponseBound",
    "busy_period_length",
    "end_to_end_bound",
    "holistic_response_bounds",
    "supply_inverse",
    "wcrt_on_interface",
]
