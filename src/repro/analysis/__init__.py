"""Schedulability analysis: periodic resource model, Theorems 1 & 2,
interface selection and hierarchical composition (paper Sec. 5).

Two interchangeable backends evaluate the dbf<=sbf machinery: the
original ``scalar`` reference oracle and a numpy-backed ``vectorized``
engine that batches candidate interfaces over shared, memoized
step-point grids (:mod:`repro.analysis.engine`,
:mod:`repro.analysis.vectorized`, :mod:`repro.analysis.cache`)."""

from repro.analysis.cache import (
    AnalysisCache,
    CacheStats,
    get_default_cache,
    resolve_cache,
    set_default_cache,
    taskset_digest,
    taskset_key,
)
from repro.analysis.context import (
    DEFAULT_CONFIG,
    AnalysisContext,
)
from repro.analysis.engine import (
    BACKENDS,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.analysis.prm import (
    ResourceInterface,
    dbf,
    dbf_step_points,
    dbf_task,
    sbf,
    sbf_linear_lower_bound,
)
from repro.analysis.schedulability import (
    SchedulabilityResult,
    is_schedulable,
    is_schedulable_exhaustive,
    theorem1_bound,
)
from repro.analysis.interface_selection import (
    SelectionConfig,
    SelectionResult,
    brute_force_minimum_bandwidth,
    minimal_budget_for_period,
    minimal_budgets_for_periods,
    select_interface,
    theorem2_period_bound,
)
from repro.analysis.vectorized import (
    StepGrid,
    dbf_values,
    sbf_values,
    schedulable_many,
)
from repro.analysis.composition import (
    CompositionResult,
    compose,
    default_deadline_margin,
    tighten_deadlines,
    update_client,
)
from repro.analysis.sensitivity import (
    BreakdownResult,
    breakdown_scale,
    breakdown_utilization,
    can_admit,
    slack_per_client,
)
from repro.analysis.model import SystemModel
from repro.analysis.session import (
    AdmissionDecision,
    AdmissionSession,
    RejectionWitness,
)
from repro.analysis.response_time import (
    PathResponseBound,
    busy_period_length,
    end_to_end_bound,
    holistic_response_bounds,
    supply_inverse,
    wcrt_on_interface,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionSession",
    "AnalysisCache",
    "AnalysisContext",
    "BACKENDS",
    "DEFAULT_CONFIG",
    "RejectionWitness",
    "SystemModel",
    "CacheStats",
    "StepGrid",
    "dbf_values",
    "get_default_backend",
    "get_default_cache",
    "minimal_budgets_for_periods",
    "resolve_backend",
    "resolve_cache",
    "sbf_values",
    "schedulable_many",
    "set_default_backend",
    "set_default_cache",
    "taskset_digest",
    "taskset_key",
    "ResourceInterface",
    "dbf",
    "dbf_step_points",
    "dbf_task",
    "sbf",
    "sbf_linear_lower_bound",
    "SchedulabilityResult",
    "is_schedulable",
    "is_schedulable_exhaustive",
    "theorem1_bound",
    "SelectionConfig",
    "SelectionResult",
    "brute_force_minimum_bandwidth",
    "minimal_budget_for_period",
    "select_interface",
    "theorem2_period_bound",
    "CompositionResult",
    "compose",
    "default_deadline_margin",
    "tighten_deadlines",
    "update_client",
    "BreakdownResult",
    "breakdown_scale",
    "breakdown_utilization",
    "can_admit",
    "slack_per_client",
    "PathResponseBound",
    "busy_period_length",
    "end_to_end_bound",
    "holistic_response_bounds",
    "supply_inverse",
    "wcrt_on_interface",
]
