"""Periodic resource model (Shin & Lee, RTSS 2003) — sbf and dbf.

A Virtual Element (VE) in BlueScale is characterized by an interface
``(Π, Θ)``: at least ``Θ`` time units of transaction capacity are
guaranteed every ``Π`` time units.  The *supply bound function*
``sbf(t)`` lower-bounds the capacity delivered in any window of length
``t``; the *demand bound function* ``dbf(t)`` upper-bounds the work an
EDF-scheduled task set can require by its deadlines within ``t``.

The formulas implemented here are exactly the ones quoted in Sec. 5 of
the BlueScale paper:

    sbf(t, X) = 0                                  if t' < 0
              = floor(t'/Π)·Θ + ε                  if t' >= 0
      where t' = t − (Π − Θ)
            ε  = max(t' − Π·floor(t'/Π) − (Π − Θ), 0)

    dbf(t, τi) = floor(t / T_i) · C_i
    dbf(t, T)  = Σ_{τi ∈ T} dbf(t, τi)

All quantities are integers (discrete time).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True, order=True)
class ResourceInterface:
    """A periodic resource interface ``(Π, Θ)``.

    Ordering compares ``(period, budget)`` lexicographically, which is
    occasionally convenient for deterministic tie-breaking; use
    :attr:`bandwidth` for the meaningful comparison.
    """

    period: int  # Π
    budget: int  # Θ

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"Π must be positive, got {self.period}")
        if self.budget < 0:
            raise ConfigurationError(f"Θ must be non-negative, got {self.budget}")
        if self.budget > self.period:
            raise ConfigurationError(
                f"Θ={self.budget} exceeds Π={self.period}: a VE cannot supply "
                "more than the full resource"
            )

    @property
    def bandwidth(self) -> Fraction:
        """Θ/Π as an exact fraction."""
        return Fraction(self.budget, self.period)

    @property
    def bandwidth_float(self) -> float:
        return self.budget / self.period

    def as_server_task(self, name: str = "", client_id: int | None = None) -> PeriodicTask:
        """The server task realizing this interface: T=Π, C=Θ.

        Only valid for non-empty budgets (a zero-budget interface
        corresponds to an idle VE with no server task).
        """
        if self.budget == 0:
            raise ConfigurationError("a zero-budget interface has no server task")
        return PeriodicTask(
            period=self.period, wcet=self.budget, name=name, client_id=client_id
        )


def sbf(t: int, interface: ResourceInterface) -> int:
    """Supply bound function of a periodic resource at time ``t``."""
    if t < 0:
        raise ConfigurationError(f"sbf is undefined for negative t={t}")
    period, budget = interface.period, interface.budget
    t_prime = t - (period - budget)
    if t_prime < 0:
        return 0
    full_periods = t_prime // period
    epsilon = max(t_prime - period * full_periods - (period - budget), 0)
    return full_periods * budget + epsilon


def sbf_linear_lower_bound(t: int, interface: ResourceInterface) -> Fraction:
    """The linear lower bound (Θ/Π)·(t − 2(Π − Θ)) used in Theorem 1's proof.

    Clamped at zero; exact arithmetic so proofs can be checked in tests.
    """
    period, budget = interface.period, interface.budget
    bound = Fraction(budget, period) * (t - 2 * (period - budget))
    return max(bound, Fraction(0))


def dbf_task(t: int, task: PeriodicTask) -> int:
    """Demand bound function of one implicit-deadline task under EDF."""
    if t < 0:
        raise ConfigurationError(f"dbf is undefined for negative t={t}")
    return (t // task.period) * task.wcet


def dbf(t: int, taskset: TaskSet) -> int:
    """Demand bound function of a task set: sum of per-task dbfs."""
    total = 0
    for task in taskset:
        total += (t // task.period) * task.wcet
    return total


def dbf_step_points(taskset: TaskSet, horizon: int) -> list[int]:
    """All t in (0, horizon] where dbf(t, taskset) changes value.

    These are the multiples of each task's period — the only instants a
    schedulability test must examine.  The horizon itself is included:
    Theorem 1's bound β must be checked when it lands exactly on a
    demand step (``theorem1_bound`` returns ceil(β), so the scan covers
    the closed interval the theorem requires).
    """
    points: set[int] = set()
    for task in taskset:
        multiple = task.period
        while multiple <= horizon:
            points.add(multiple)
            multiple += task.period
    return sorted(points)
