"""EDF schedulability of a task set on a periodic resource.

Sec. 5 of the paper: task set ``T_X`` is schedulable on VE ``X`` iff
``dbf(t, T_X) <= sbf(t, X)`` for all ``t``.  Theorem 1 bounds the range
of ``t`` that must be checked:

    β = 2·(Θ/Π)·(Π − Θ) / (Θ/Π − U_X)

provided the bandwidth strictly exceeds the task-set utilization
(``Θ/Π > U_X``), which is a necessary condition anyway.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.cache import AnalysisCache, resolve_cache
from repro.analysis.engine import resolve_backend
from repro.analysis.prm import ResourceInterface, dbf, dbf_step_points, sbf
from repro.errors import ConfigurationError
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class SchedulabilityResult:
    """Outcome of one dbf<=sbf test, with the witness when it fails."""

    schedulable: bool
    #: first t at which demand exceeded supply (None when schedulable)
    violation_time: int | None = None
    #: demand and supply at the violation (0 when schedulable)
    demand_at_violation: int = 0
    supply_at_violation: int = 0
    #: the Theorem-1 bound actually used (0 when the utilization test fails)
    test_bound: int = 0


def theorem1_bound(interface: ResourceInterface, utilization: Fraction) -> int:
    """The finite test horizon β of Theorem 1 (rounded up to an integer).

    Requires ``Θ/Π > U`` strictly; raises otherwise since β would be
    infinite or negative.
    """
    bandwidth = interface.bandwidth
    if bandwidth <= utilization:
        raise ConfigurationError(
            f"Theorem 1 needs bandwidth Θ/Π={bandwidth} > U={utilization}"
        )
    slack = interface.period - interface.budget
    beta = 2 * bandwidth * slack / (bandwidth - utilization)
    # β is exact (Fraction); tests must cover all integer t in (0, β],
    # including β itself when it is integral (a demand step can land
    # exactly on the bound).
    ceiling = -(-beta.numerator // beta.denominator)  # ceil for Fractions
    return int(ceiling)


def is_schedulable(
    taskset: TaskSet,
    interface: ResourceInterface,
    backend: str | None = None,
    cache: AnalysisCache | None = None,
) -> SchedulabilityResult:
    """Exact EDF-on-periodic-resource schedulability test.

    Checks ``dbf(t) <= sbf(t)`` at every demand step point in the
    closed Theorem-1 range ``(0, β]``.  (Between step points demand is
    constant while supply is non-decreasing, so step points suffice;
    β itself can be a step point when it is integral, so the scan must
    include it.)

    ``backend`` picks how the scan is evaluated — ``"scalar"`` walks
    the step points in Python, ``"vectorized"`` evaluates demand once
    over the task set's shared step grid and supply in one array pass
    (see :mod:`repro.analysis.engine`).  Both are integer-exact and
    return identical results, witnesses included.
    """
    if len(taskset) == 0:
        return SchedulabilityResult(schedulable=True)
    utilization = taskset.utilization
    if interface.budget == 0:
        # No supply at all but there is demand.
        first_deadline = taskset.min_period
        return SchedulabilityResult(
            schedulable=False,
            violation_time=first_deadline,
            demand_at_violation=dbf(first_deadline, taskset),
            supply_at_violation=0,
        )
    if interface.bandwidth <= utilization:
        # Necessary bandwidth condition fails — except in the degenerate
        # dedicated-resource case Θ == Π with U exactly 1, where
        # dbf(t) <= U·t = t = sbf(t) for every t: genuinely schedulable.
        if interface.budget == interface.period and utilization == 1:
            return SchedulabilityResult(schedulable=True)
        # Demand outpaces supply in the long run; report the first step
        # point where it shows.  With slack Π−Θ > 0 a violation is
        # guaranteed at the hyperperiod or earlier (sbf(t) <= Θ/Π·(t −
        # (Π−Θ)) while dbf(H) = U·H >= Θ/Π·H), so the scan terminates —
        # the iteration cap only guards pathological hyperperiods.
        witness = _bandwidth_failure_witness(taskset, interface)
        if witness is not None:
            time, demand, supply = witness
            return SchedulabilityResult(
                schedulable=False,
                violation_time=time,
                demand_at_violation=demand,
                supply_at_violation=supply,
                test_bound=0,
            )
        return SchedulabilityResult(
            schedulable=False,
            violation_time=None,
            test_bound=0,
        )
    beta = theorem1_bound(interface, utilization)
    if resolve_backend(backend) == "vectorized":
        from repro.analysis.vectorized import first_violation

        witness = first_violation(
            taskset, interface, beta, resolve_cache(cache)
        )
    else:
        witness = None
        for t in dbf_step_points(taskset, beta):
            demand = dbf(t, taskset)
            supply = sbf(t, interface)
            if demand > supply:
                witness = (t, demand, supply)
                break
    if witness is not None:
        time, demand, supply = witness
        return SchedulabilityResult(
            schedulable=False,
            violation_time=time,
            demand_at_violation=demand,
            supply_at_violation=supply,
            test_bound=beta,
        )
    return SchedulabilityResult(schedulable=True, test_bound=beta)


def _bandwidth_failure_witness(
    taskset: TaskSet, interface: ResourceInterface, max_points: int = 200_000
) -> tuple[int, int, int] | None:
    """First demand step point with ``dbf > sbf`` (lazy ascending scan).

    Used when the necessary bandwidth condition already failed: only
    step points can witness the violation (demand is constant between
    them while supply never decreases).  Candidate points — multiples
    of each task's period — are merged lazily through a heap, so the
    scan costs O(found · log n) instead of materializing a horizon.
    Returns ``(t, demand, supply)``, or None if no violation surfaced
    within ``max_points`` step points (incommensurate-period task sets
    whose first violation sits beyond any practical hyperperiod).
    """
    heap = [(task.period, task.period) for task in taskset]
    heapq.heapify(heap)
    examined = 0
    previous = 0
    while heap and examined < max_points:
        time, period = heapq.heappop(heap)
        heapq.heappush(heap, (time + period, period))
        if time == previous:
            continue  # several tasks stepping at the same instant
        previous = time
        examined += 1
        demand = dbf(time, taskset)
        supply = sbf(time, interface)
        if demand > supply:
            return time, demand, supply
    return None


def is_schedulable_exhaustive(
    taskset: TaskSet, interface: ResourceInterface, horizon: int
) -> bool:
    """Brute-force dbf<=sbf over *every* integer t in (0, horizon].

    Exists to validate :func:`is_schedulable` (and Theorem 1) in tests;
    prefer :func:`is_schedulable` everywhere else.
    """
    for t in range(1, horizon + 1):
        if dbf(t, taskset) > sbf(t, interface):
            return False
    return True
