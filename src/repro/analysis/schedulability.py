"""EDF schedulability of a task set on a periodic resource.

Sec. 5 of the paper: task set ``T_X`` is schedulable on VE ``X`` iff
``dbf(t, T_X) <= sbf(t, X)`` for all ``t``.  Theorem 1 bounds the range
of ``t`` that must be checked:

    β = 2·(Θ/Π)·(Π − Θ) / (Θ/Π − U_X)

provided the bandwidth strictly exceeds the task-set utilization
(``Θ/Π > U_X``), which is a necessary condition anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.prm import ResourceInterface, dbf, dbf_step_points, sbf
from repro.errors import ConfigurationError
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class SchedulabilityResult:
    """Outcome of one dbf<=sbf test, with the witness when it fails."""

    schedulable: bool
    #: first t at which demand exceeded supply (None when schedulable)
    violation_time: int | None = None
    #: demand and supply at the violation (0 when schedulable)
    demand_at_violation: int = 0
    supply_at_violation: int = 0
    #: the Theorem-1 bound actually used (0 when the utilization test fails)
    test_bound: int = 0


def theorem1_bound(interface: ResourceInterface, utilization: Fraction) -> int:
    """The finite test horizon β of Theorem 1 (rounded up to an integer).

    Requires ``Θ/Π > U`` strictly; raises otherwise since β would be
    infinite or negative.
    """
    bandwidth = interface.bandwidth
    if bandwidth <= utilization:
        raise ConfigurationError(
            f"Theorem 1 needs bandwidth Θ/Π={bandwidth} > U={utilization}"
        )
    slack = interface.period - interface.budget
    beta = 2 * bandwidth * slack / (bandwidth - utilization)
    # β is exact (Fraction); tests must cover all integer t < β.
    ceiling = -(-beta.numerator // beta.denominator)  # ceil for Fractions
    return int(ceiling)


def is_schedulable(
    taskset: TaskSet, interface: ResourceInterface
) -> SchedulabilityResult:
    """Exact EDF-on-periodic-resource schedulability test.

    Checks ``dbf(t) <= sbf(t)`` at every demand step point below the
    Theorem-1 bound β.  (Between step points demand is constant while
    supply is non-decreasing, so step points suffice.)
    """
    if len(taskset) == 0:
        return SchedulabilityResult(schedulable=True)
    utilization = taskset.utilization
    if interface.budget == 0:
        # No supply at all but there is demand.
        first_deadline = taskset.min_period
        return SchedulabilityResult(
            schedulable=False,
            violation_time=first_deadline,
            demand_at_violation=dbf(first_deadline, taskset),
            supply_at_violation=0,
        )
    if interface.bandwidth <= utilization:
        # Necessary bandwidth condition fails: demand outpaces supply in
        # the long run. Report the first step point where it shows, or the
        # asymptotic failure via the hyperperiod-bounded scan.
        return SchedulabilityResult(
            schedulable=False,
            violation_time=None,
            test_bound=0,
        )
    beta = theorem1_bound(interface, utilization)
    for t in dbf_step_points(taskset, beta):
        demand = dbf(t, taskset)
        supply = sbf(t, interface)
        if demand > supply:
            return SchedulabilityResult(
                schedulable=False,
                violation_time=t,
                demand_at_violation=demand,
                supply_at_violation=supply,
                test_bound=beta,
            )
    return SchedulabilityResult(schedulable=True, test_bound=beta)


def is_schedulable_exhaustive(
    taskset: TaskSet, interface: ResourceInterface, horizon: int
) -> bool:
    """Brute-force dbf<=sbf over *every* integer t in (0, horizon].

    Exists to validate :func:`is_schedulable` (and Theorem 1) in tests;
    prefer :func:`is_schedulable` everywhere else.
    """
    for t in range(1, horizon + 1):
        if dbf(t, taskset) > sbf(t, interface):
            return False
    return True
