"""Analysis backend switch: scalar reference oracle vs vectorized engine.

Every analysis entry point (:func:`~repro.analysis.schedulability.is_schedulable`,
:func:`~repro.analysis.interface_selection.select_interface`,
:func:`~repro.analysis.composition.compose`, the sensitivity helpers)
accepts ``backend=``:

* ``"scalar"`` — the original pure-Python implementations, kept as the
  reference oracle.  Every candidate ``(Π, Θ)`` is tested by its own
  step-point scan.
* ``"vectorized"`` — numpy-backed batch evaluation
  (:mod:`repro.analysis.vectorized`): dbf is evaluated once over a
  deduplicated step-point grid per task set, and all candidate
  interfaces of a search are checked against that grid at once.

Both backends are exact over integers and produce **identical**
results; the property suite and the analysis benchmark assert it.
``backend=None`` anywhere resolves to the process-wide default set
here (the CLI's ``--analysis-backend`` flag lands in
:func:`set_default_backend`, including inside parallel workers via the
executor's ``worker_init`` hook).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: the recognized backend names
BACKENDS: tuple[str, ...] = ("scalar", "vectorized")

_default_backend: str = "vectorized"


def get_default_backend() -> str:
    """The process-wide backend used when ``backend=None``."""
    return _default_backend


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous one.

    Picklable by reference, so it doubles as an executor
    ``worker_init`` target: ``partial(set_default_backend, "scalar")``.
    """
    global _default_backend
    previous = _default_backend
    _default_backend = resolve_backend(backend)
    return previous


def resolve_backend(backend: str | None) -> str:
    """Validate a ``backend=`` argument (``None`` → session default)."""
    if backend is None:
        return _default_backend
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown analysis backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend
