"""The per-call analysis context: backend + cache + search config.

Before this module existed, every function on the composition path
(:func:`~repro.analysis.composition.compose` →
:func:`~repro.analysis.interface_selection.select_interface` →
:func:`~repro.analysis.interface_selection.minimal_budgets_for_periods`)
re-threaded a ``backend=`` and a ``cache=`` keyword argument through
every call, re-resolving both at every level.  :class:`AnalysisContext`
bundles the three knobs that select *how* an analysis runs — engine
backend, memo cache, selection-search config — into one immutable
object that is resolved **once** at the public entry point and passed
down unchanged.

The public entry points keep their ``backend=`` / ``cache=`` keyword
arguments as compatibility shims: they build a context immediately and
everything below speaks context only.  Long-lived holders
(:class:`~repro.analysis.model.SystemModel`,
:class:`~repro.analysis.session.AdmissionSession`) carry their context
explicitly.

:class:`SelectionConfig` lives here (re-exported from
:mod:`repro.analysis.interface_selection` for compatibility) because it
is part of the context, not of any single search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cache import AnalysisCache, resolve_cache
from repro.analysis.engine import resolve_backend
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SelectionConfig:
    """Tuning knobs for the interface-selection search.

    ``max_period_candidates`` caps how many periods are examined: when
    the Theorem-2 range is wider, candidates are sampled evenly across
    it (the bandwidth landscape is smooth enough that this finds the
    optimum or a near-optimum; set it to 0 for exhaustive enumeration).
    """

    max_period_candidates: int = 256
    min_period: int = 1

    def __post_init__(self) -> None:
        if self.max_period_candidates < 0:
            raise ConfigurationError("max_period_candidates must be >= 0")
        if self.min_period < 1:
            raise ConfigurationError("min_period must be >= 1")

    def memo_key(self) -> tuple:
        """The config's contribution to a selection cache key."""
        return (self.max_period_candidates, self.min_period)


DEFAULT_CONFIG = SelectionConfig()


@dataclass(frozen=True)
class AnalysisContext:
    """How one analysis runs: engine backend, memo cache, search config.

    Immutable, cheap, and safe to share: the cache it points at is
    thread-safe, the other two fields are frozen value objects.
    Resolve one at the boundary (:meth:`resolve`), then pass it down —
    never re-resolve mid-computation, or a concurrent
    ``set_default_backend`` / ``set_default_cache`` could split one
    logical analysis across two configurations.
    """

    backend: str
    cache: AnalysisCache
    config: SelectionConfig = DEFAULT_CONFIG

    @classmethod
    def resolve(
        cls,
        backend: str | None = None,
        cache: AnalysisCache | None = None,
        config: SelectionConfig | None = None,
    ) -> "AnalysisContext":
        """Build a context from optional knobs (``None`` → defaults).

        ``backend=None`` resolves to the process-wide default backend,
        ``cache=None`` to the process-wide default cache and
        ``config=None`` to :data:`DEFAULT_CONFIG` — exactly the
        defaulting every public analysis entry point documents.
        """
        return cls(
            backend=resolve_backend(backend),
            cache=resolve_cache(cache),
            config=DEFAULT_CONFIG if config is None else config,
        )

    def with_config(self, config: SelectionConfig) -> "AnalysisContext":
        """The same backend/cache with a different search config."""
        return AnalysisContext(
            backend=self.backend, cache=self.cache, config=config
        )
