"""Unified trial-execution runtime for the experiment harness.

Every paper artefact (Fig. 6/7, the ablations, the extension sweeps)
is a batch of *independent trials*: seed in, metrics out.  This package
factors that shape into three explicit pieces so every experiment is a
spec-builder + per-trial-runner + reducer triple:

* :class:`TrialSpec` — a pure, picklable description of one trial
  (experiment name, trial index, seed, frozen parameters);
* :class:`Executor` — the seam that maps a trial runner over specs.
  :class:`SerialExecutor` runs in-process; :class:`ParallelExecutor`
  fans trials out over a :class:`concurrent.futures.ProcessPoolExecutor`
  with chunking and *ordered* result collection, so a parallel run is
  bit-for-bit identical to a serial one;
* :class:`MetricSet` — the schema every trial runner emits, consumed
  directly by reducers and by the campaign archive.

Determinism contract: a trial runner must be a pure function of its
spec — all randomness derived from ``spec.seed`` via explicit
:class:`random.Random` instances, no module-level RNG, no reads of
ambient state.  Under that contract ``ParallelExecutor`` ≡
``SerialExecutor`` exactly, and any future backend (async, cluster)
plugs into the same seam.
"""

from repro.runtime.executor import (
    Executor,
    ExecutionHooks,
    ParallelExecutor,
    ProgressPrinter,
    SerialExecutor,
    TrialOutcome,
    make_executor,
)
from repro.runtime.metrics import (
    FAILURE_METRIC,
    MetricSet,
    extract_metric_set,
    failure_metric_set,
)
from repro.runtime.seeding import (
    derive_seed,
    derive_seeds,
    seed_stream,
    spawn_rng,
)
from repro.runtime.spec import TrialSpec

__all__ = [
    "FAILURE_METRIC",
    "Executor",
    "ExecutionHooks",
    "MetricSet",
    "ParallelExecutor",
    "ProgressPrinter",
    "SerialExecutor",
    "TrialOutcome",
    "TrialSpec",
    "derive_seed",
    "derive_seeds",
    "extract_metric_set",
    "failure_metric_set",
    "make_executor",
    "seed_stream",
    "spawn_rng",
]
