"""Trial specifications: pure, picklable descriptions of one trial.

A :class:`TrialSpec` carries everything a per-trial runner needs —
experiment name, trial index, seed, and a frozen parameter mapping —
and nothing else.  Because the spec (not a closure) crosses the
process boundary, any executor backend can ship trials anywhere and
replay them identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrialSpec:
    """One trial of one experiment, fully described.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    specs stay hashable-by-content and pickle deterministically; values
    must themselves be picklable (frozen config dataclasses, tuples,
    numbers, strings).
    """

    #: which experiment family this trial belongs to (``"fig6"``, ...)
    experiment: str
    #: position in the batch; reducers rely on spec order, not index
    index: int
    #: all trial randomness derives from this seed, nothing else
    seed: int | str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        experiment: str,
        index: int,
        seed: int | str,
        **params: Any,
    ) -> "TrialSpec":
        """Build a spec from keyword parameters."""
        return cls(
            experiment=experiment,
            index=index,
            seed=seed,
            params=tuple(sorted(params.items())),
        )

    @property
    def param_dict(self) -> Mapping[str, Any]:
        return dict(self.params)

    def param(self, key: str) -> Any:
        """Look up one parameter; unknown keys are a configuration bug."""
        for name, value in self.params:
            if name == key:
                return value
        raise ConfigurationError(
            f"trial spec {self.experiment}[{self.index}] has no "
            f"parameter {key!r} (has: {[n for n, _ in self.params]})"
        )

    def client_seed(self, client_id: int) -> str:
        """Seed material for one client's private RNG inside this trial."""
        return f"{self.seed}/client/{client_id}"
