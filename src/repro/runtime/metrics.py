"""The shared metrics schema trial runners emit and campaigns archive.

A :class:`MetricSet` is a flat mapping of metric name → float plus
string tags identifying where it came from.  Per-trial runners return
one; reducers fold batches of them into experiment results; experiment
results expose an aggregate one via ``metric_set()``; and the campaign
layer archives those aggregates without per-experiment glue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MetricSet:
    """Named scalar metrics with identifying tags.

    Metric names are free-form but the convention throughout the
    experiments is ``"<series>/<quantity>"`` (``"BlueScale/miss"``),
    which flattens into campaign manifests and CSV columns unchanged.
    """

    scalars: Mapping[str, float]
    tags: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in self.scalars.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"metric {name!r} must be numeric, got {value!r}"
                )

    def __getitem__(self, name: str) -> float:
        try:
            return self.scalars[name]
        except KeyError:
            raise ConfigurationError(
                f"no metric {name!r} (has: {sorted(self.scalars)})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.scalars

    def prefixed(self, prefix: str) -> "MetricSet":
        """A copy with every metric name under ``prefix/``."""
        return MetricSet(
            scalars={f"{prefix}/{k}": v for k, v in self.scalars.items()},
            tags=dict(self.tags),
        )

    def merged_with(self, other: "MetricSet") -> "MetricSet":
        """Union of two metric sets; duplicate names are a bug."""
        overlap = set(self.scalars) & set(other.scalars)
        if overlap:
            raise ConfigurationError(
                f"metric sets overlap on {sorted(overlap)}"
            )
        return MetricSet(
            scalars={**self.scalars, **other.scalars},
            tags={**self.tags, **other.tags},
        )

    def as_dict(self) -> dict[str, float]:
        """Plain ``{name: float}`` for manifests and JSON."""
        return {k: float(v) for k, v in self.scalars.items()}


#: scalar present (== 1.0) in the metric set of a trial whose runner
#: raised; reducers filter on it (or on ``TrialOutcome.failed``)
FAILURE_METRIC = "trial/failed"


def failure_metric_set(spec: Any, exc: BaseException) -> MetricSet:
    """The structured failure record of a raising trial runner.

    Campaign executors substitute this for the runner's result so one
    crashing trial cannot abort a parallel batch: the outcome keeps its
    slot (ordering and parallel ≡ serial are preserved) and carries the
    exception type and message as tags for post-mortem triage.
    """
    message = str(exc) or type(exc).__name__
    if len(message) > 500:
        message = message[:500] + "..."
    return MetricSet(
        scalars={FAILURE_METRIC: 1.0},
        tags={
            "experiment": spec.experiment,
            "trial": str(spec.index),
            "error_type": type(exc).__name__,
            "error": message,
        },
    )


def extract_metric_set(result: Any) -> MetricSet:
    """Coerce an experiment result into a :class:`MetricSet`.

    Accepts a ``MetricSet``, anything exposing ``metric_set()`` (all
    experiment result classes do), or a plain ``{name: float}`` dict.
    """
    if isinstance(result, MetricSet):
        return result
    method = getattr(result, "metric_set", None)
    if callable(method):
        return extract_metric_set(method())
    if isinstance(result, Mapping):
        return MetricSet(scalars=dict(result))
    raise ConfigurationError(
        f"cannot extract metrics from {type(result).__name__}; expected a "
        "MetricSet, an object with metric_set(), or a name->float mapping"
    )
