"""Trial executors: the serial/parallel seam of the runtime.

An :class:`Executor` maps a per-trial runner over a batch of
:class:`~repro.runtime.spec.TrialSpec`\\ s and returns
:class:`TrialOutcome`\\ s *in spec order*.  Because runners are pure
functions of their spec (the determinism contract in
:mod:`repro.runtime`), the two provided backends are interchangeable:

* :class:`SerialExecutor` — an in-process loop;
* :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` fan-out with
  chunking.  ``map`` preserves submission order when collecting, so the
  reduced results are bit-for-bit identical to a serial run.

Runners must be module-level functions (picklable by reference) for the
parallel backend; per-trial wall-clock is measured inside the worker
and shipped back with the metrics.

A runner may additionally carry a ``batch`` attribute — a callable
taking a list of specs and returning one :class:`MetricSet` per spec.
Both executors then hand the runner whole chunks at a time instead of
single specs, which is how the batched simulator backend
(:mod:`repro.sim.batched`) gets same-shaped trials to advance in
lock-step.  Outcomes, hook sequencing and failure capture are
identical either way: a raising batch falls back to per-spec execution
inside the same process, so one bad trial still fails alone.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import ConfigurationError
from repro.runtime.metrics import MetricSet, failure_metric_set
from repro.runtime.spec import TrialSpec

#: a per-trial runner: pure function of the spec
TrialRunner = Callable[[TrialSpec], MetricSet]


@dataclass(frozen=True)
class TrialOutcome:
    """One executed trial: its spec, metrics, and worker wall-clock.

    A trial whose runner raised still yields an outcome — ``error``
    carries ``"ExcType: message"`` and ``metrics`` is the structured
    failure record from :func:`repro.runtime.metrics.failure_metric_set`
    — so a crashing trial occupies its slot in the (spec-ordered) result
    list instead of aborting the whole campaign.
    """

    spec: TrialSpec
    metrics: MetricSet
    seconds: float
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None


class ExecutionHooks:
    """Observability callbacks; subclass and override what you need.

    Hooks always fire in the submitting process (never in workers) and,
    for trial completions, in spec order — so they see the same
    sequence under every backend.
    """

    def on_batch_start(self, specs: Sequence[TrialSpec]) -> None:
        """Called once before the first trial runs."""

    def on_trial_done(
        self, outcome: TrialOutcome, done: int, total: int
    ) -> None:
        """Called per collected trial; ``done`` counts from 1."""

    def on_batch_done(self, outcomes: Sequence[TrialOutcome]) -> None:
        """Called once after every trial was collected."""


class ProgressPrinter(ExecutionHooks):
    """Minimal progress/timing hook: one status line per batch."""

    def __init__(self, stream=None) -> None:
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self._started = 0.0

    def on_batch_start(self, specs: Sequence[TrialSpec]) -> None:
        self._started = time.perf_counter()
        if specs:
            print(
                f"[{specs[0].experiment}] running {len(specs)} trials...",
                file=self.stream,
            )

    def on_trial_done(
        self, outcome: TrialOutcome, done: int, total: int
    ) -> None:
        if outcome.failed:
            print(
                f"[{outcome.spec.experiment}] trial {outcome.spec.index} "
                f"FAILED: {outcome.error}",
                file=self.stream,
            )
        # ~10 lines per batch, never more than one line per 5 trials —
        # without the clamp a small batch (total < 20) degenerates to a
        # divisor of 1 and prints on every single trial
        step = max(5, total // 10)
        if done == total or done % step == 0:
            elapsed = time.perf_counter() - self._started
            print(
                f"[{outcome.spec.experiment}] {done}/{total} trials "
                f"({elapsed:.1f}s)",
                file=self.stream,
            )


@runtime_checkable
class Executor(Protocol):
    """Anything that can map a trial runner over specs, in order."""

    @property
    def workers(self) -> int: ...

    def map(
        self,
        runner: TrialRunner,
        specs: Sequence[TrialSpec],
        hooks: ExecutionHooks | None = None,
    ) -> list[TrialOutcome]: ...


def _execute_one(runner: TrialRunner, spec: TrialSpec) -> TrialOutcome:
    """Run one trial and time it; module-level so workers can pickle it.

    A raising runner is captured *inside the worker* — the exception is
    folded into a failure outcome rather than propagated, so one bad
    trial cannot poison a parallel batch (and serial and parallel
    executors degrade identically).  A runner returning the wrong type
    is a programming error, not a trial failure, and still raises.
    """
    started = time.perf_counter()
    try:
        metrics = runner(spec)
    except Exception as exc:  # noqa: BLE001 - the capture is the feature
        return TrialOutcome(
            spec=spec,
            metrics=failure_metric_set(spec, exc),
            seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    if not isinstance(metrics, MetricSet):
        raise ConfigurationError(
            f"trial runner for {spec.experiment!r} returned "
            f"{type(metrics).__name__}, expected MetricSet"
        )
    return TrialOutcome(
        spec=spec, metrics=metrics, seconds=time.perf_counter() - started
    )


#: serial chunk size for batch-capable runners — bounds how many specs'
#: simulations are alive at once while still feeding the batched
#: backend groups large enough to amortize its per-cycle costs
SERIAL_BATCH = 256


def _execute_batch(
    runner: TrialRunner, specs: Sequence[TrialSpec]
) -> list[TrialOutcome]:
    """Run one chunk of specs through the runner's batch entry point.

    Module-level so workers can pickle it (the ``batch`` attribute is
    re-resolved from the runner after unpickling by reference).  Any
    exception out of the batch falls back to per-spec execution: the
    chunk is re-run one trial at a time, so the failing trial is blamed
    in its own outcome exactly as under :func:`_execute_one` and the
    healthy trials still succeed.  Per-trial wall-clock is the batch
    elapsed time split evenly (lock-step trials have no individual
    timings).
    """
    batch = getattr(runner, "batch", None)
    if batch is None:
        return [_execute_one(runner, spec) for spec in specs]
    if not specs:
        return []
    started = time.perf_counter()
    try:
        metric_sets = batch(list(specs))
    except Exception:  # noqa: BLE001 - refine blame per trial
        return [_execute_one(runner, spec) for spec in specs]
    elapsed = time.perf_counter() - started
    if len(metric_sets) != len(specs) or not all(
        isinstance(metrics, MetricSet) for metrics in metric_sets
    ):
        raise ConfigurationError(
            f"batch runner for {specs[0].experiment!r} must return one "
            f"MetricSet per spec (got {len(metric_sets)} for "
            f"{len(specs)} specs)"
        )
    seconds = elapsed / len(specs)
    return [
        TrialOutcome(spec=spec, metrics=metrics, seconds=seconds)
        for spec, metrics in zip(specs, metric_sets)
    ]


class SerialExecutor:
    """Run every trial in the calling process, in spec order."""

    workers = 1

    def map(
        self,
        runner: TrialRunner,
        specs: Sequence[TrialSpec],
        hooks: ExecutionHooks | None = None,
    ) -> list[TrialOutcome]:
        hooks = hooks or ExecutionHooks()
        hooks.on_batch_start(specs)
        outcomes: list[TrialOutcome] = []
        if getattr(runner, "batch", None) is not None:
            for lo in range(0, len(specs), SERIAL_BATCH):
                for outcome in _execute_batch(
                    runner, specs[lo : lo + SERIAL_BATCH]
                ):
                    outcomes.append(outcome)
                    hooks.on_trial_done(outcome, len(outcomes), len(specs))
        else:
            for spec in specs:
                outcome = _execute_one(runner, spec)
                outcomes.append(outcome)
                hooks.on_trial_done(outcome, len(outcomes), len(specs))
        hooks.on_batch_done(outcomes)
        return outcomes


class ParallelExecutor:
    """Fan trials out over a process pool; results stay in spec order.

    ``chunk_size`` batches specs per worker task to amortize pickling;
    by default it targets ~4 chunks per worker.  Ordered collection is
    what makes parallel ≡ serial: ``ProcessPoolExecutor.map`` yields
    results in submission order regardless of completion order.

    ``worker_init`` (a picklable zero-argument callable) runs once in
    every worker process before its first trial — the hook for
    replicating process-wide configuration such as the analysis engine
    backend (``partial(set_default_backend, "scalar")``) into the pool.
    """

    def __init__(
        self,
        workers: int,
        chunk_size: int | None = None,
        worker_init: Callable[[], object] | None = None,
    ) -> None:
        if workers < 2:
            raise ConfigurationError(
                f"ParallelExecutor needs >= 2 workers, got {workers}; "
                "use SerialExecutor (or make_executor) for 1"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"invalid chunk size {chunk_size}")
        self._workers = workers
        self.chunk_size = chunk_size
        self.worker_init = worker_init

    @property
    def workers(self) -> int:
        return self._workers

    def _chunk(self, n_specs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, n_specs // (self._workers * 4))

    def map(
        self,
        runner: TrialRunner,
        specs: Sequence[TrialSpec],
        hooks: ExecutionHooks | None = None,
    ) -> list[TrialOutcome]:
        hooks = hooks or ExecutionHooks()
        hooks.on_batch_start(specs)
        outcomes: list[TrialOutcome] = []
        if specs:
            with ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=self.worker_init,
            ) as pool:
                if getattr(runner, "batch", None) is not None:
                    # ship whole chunks so each worker can advance its
                    # specs in lock-step; ordered collection over the
                    # chunk list keeps outcomes in spec order
                    chunk = self._chunk(len(specs))
                    groups = [
                        list(specs[lo : lo + chunk])
                        for lo in range(0, len(specs), chunk)
                    ]
                    collected = (
                        outcome
                        for group in pool.map(
                            partial(_execute_batch, runner), groups
                        )
                        for outcome in group
                    )
                else:
                    collected = pool.map(
                        partial(_execute_one, runner),
                        specs,
                        chunksize=self._chunk(len(specs)),
                    )
                for outcome in collected:
                    outcomes.append(outcome)
                    hooks.on_trial_done(outcome, len(outcomes), len(specs))
        hooks.on_batch_done(outcomes)
        return outcomes


def make_executor(
    workers: int | None,
    worker_init: Callable[[], object] | None = None,
) -> Executor:
    """The executor for a ``--workers N`` request (None/0/1 → serial).

    ``worker_init`` is forwarded to :class:`ParallelExecutor`; the
    serial path ignores it (the calling process is already configured).
    """
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers, worker_init=worker_init)
