"""Deterministic seed derivation for trial fan-out.

Experiments never touch the module-level :mod:`random` state: every
trial gets its own integer seed drawn from a named stream, and every
client inside a trial gets its own :class:`random.Random` derived from
that seed.  Two properties follow:

* trials are independent — reordering or parallelising them cannot
  change any trial's randomness;
* concurrent experiments in one process cannot interleave RNG state,
  because no stream is shared.
"""

from __future__ import annotations

import random

#: seeds are drawn from [0, 2**63) — comfortably within what
#: ``random.Random`` accepts and what JSON round-trips exactly
SEED_BITS = 63


def seed_stream(seed: int | str) -> random.Random:
    """A named RNG stream; equal seeds yield equal streams."""
    return random.Random(seed)


def derive_seeds(seed: int | str, n: int) -> list[int]:
    """``n`` per-trial seeds drawn from the stream named by ``seed``.

    The whole prefix is stable: ``derive_seeds(s, n)`` is a prefix of
    ``derive_seeds(s, m)`` for ``n <= m``, so growing ``trials`` keeps
    the earlier trials' randomness unchanged.
    """
    if n < 0:
        raise ValueError(f"cannot derive {n} seeds")
    stream = seed_stream(seed)
    return [stream.randrange(2**SEED_BITS) for _ in range(n)]


def spawn_rng(parent: random.Random) -> random.Random:
    """A child RNG split off ``parent``'s stream (one draw consumed)."""
    return random.Random(parent.randrange(2**SEED_BITS))


def derive_seed(base: int | str, label: str) -> int:
    """One integer seed for the substream named ``label`` under ``base``.

    The campaign layer derives every grid cell's seed this way
    (``derive_seed(campaign_seed, cell_id)``), and each cell's trial
    seeds then come from :func:`derive_seeds` on a cell-local stream —
    so two distinct cells can never share a trial seed stream, no
    matter how the grid is sliced, sharded or resumed.
    """
    return seed_stream(f"{base}/{label}").randrange(2**SEED_BITS)
