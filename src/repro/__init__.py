"""repro — a full reproduction of *BlueScale: A Scalable Memory
Architecture for Predictable Real-Time Computing on Highly Integrated
SoCs* (Jiang et al., DAC 2022).

Top-level convenience re-exports cover the most common entry points;
see the subpackages for the full API:

* :mod:`repro.core` — BlueScale itself (Scale Elements, quadtree).
* :mod:`repro.analysis` — periodic resource model, Theorems 1–2,
  interface selection, hierarchical composition.
* :mod:`repro.interconnects` — the baselines (AXI-IC^RT, BlueTree,
  BlueTree-Smooth, GSMTree-TDM/-FBSP).
* :mod:`repro.memory`, :mod:`repro.clients`, :mod:`repro.sim`,
  :mod:`repro.soc` — the simulation substrate.
* :mod:`repro.hardware` — area/power/frequency models (Table 1, Fig. 5).
* :mod:`repro.workloads` — automotive case-study task sets (Fig. 7).
* :mod:`repro.runtime` — the trial-execution runtime (specs,
  serial/parallel executors, the shared metrics schema).
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.analysis import (
    AdmissionSession,
    ResourceInterface,
    SystemModel,
    compose,
    is_schedulable,
    select_interface,
)
from repro.core import BlueScaleInterconnect, ScaleElement
from repro.soc import SoCSimulation, TrialResult
from repro.tasks import PeriodicTask, TaskSet
from repro.topology import TreeTopology, binary_tree, quadtree

__version__ = "1.0.0"

__all__ = [
    "AdmissionSession",
    "ResourceInterface",
    "SystemModel",
    "compose",
    "is_schedulable",
    "select_interface",
    "BlueScaleInterconnect",
    "ScaleElement",
    "SoCSimulation",
    "TrialResult",
    "PeriodicTask",
    "TaskSet",
    "TreeTopology",
    "binary_tree",
    "quadtree",
    "__version__",
]
