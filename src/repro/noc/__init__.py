"""Mesh NoC substrate (inter-processor communication plane)."""

from repro.noc.mesh import MeshNoC, Message, Router

__all__ = ["MeshNoC", "Message", "Router"]
