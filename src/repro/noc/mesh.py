"""A dimension-ordered (XY) mesh NoC for inter-processor communication.

The paper's platform connects its processors with a 9x9 open-source
mesh NoC (Blueshell) *in addition to* the memory interconnect: memory
traffic rides BlueScale; inter-processor messages ride the mesh.  The
mesh therefore does not influence the memory-path experiments, but it
is part of the platform, so a faithful message-level model is provided
for system-level studies and examples.

Routing is deterministic XY (x first, then y), which is deadlock-free
on a mesh.  Each router forwards one flit per output port per cycle;
links are one cycle long.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

_message_ids = itertools.count()


@dataclass
class Message:
    """One NoC message (modelled as a single head flit + payload size)."""

    source: tuple[int, int]
    destination: tuple[int, int]
    payload_flits: int = 1
    inject_cycle: int = -1
    deliver_cycle: int = -1
    mid: int = field(default_factory=lambda: next(_message_ids))

    @property
    def delivered(self) -> bool:
        return self.deliver_cycle >= 0

    @property
    def latency(self) -> int:
        if not self.delivered:
            raise ConfigurationError(f"message {self.mid} not delivered yet")
        return self.deliver_cycle - self.inject_cycle


class Router:
    """One mesh router with per-output-port FIFO queues."""

    #: output port indices
    LOCAL, EAST, WEST, NORTH, SOUTH = range(5)

    def __init__(self, position: tuple[int, int], queue_capacity: int = 8) -> None:
        self.position = position
        self.queue_capacity = queue_capacity
        self.queues: list[deque[Message]] = [deque() for _ in range(5)]

    def route(self, message: Message) -> int:
        """XY routing: which output port the message leaves through."""
        x, y = self.position
        dx, dy = message.destination
        if dx > x:
            return self.EAST
        if dx < x:
            return self.WEST
        if dy > y:
            return self.NORTH
        if dy < y:
            return self.SOUTH
        return self.LOCAL

    def try_enqueue(self, message: Message) -> bool:
        port = self.route(message)
        queue = self.queues[port]
        if len(queue) >= self.queue_capacity:
            return False
        queue.append(message)
        return True

    def occupancy(self) -> int:
        return sum(len(q) for q in self.queues)


class MeshNoC:
    """``width x height`` mesh of XY routers, message-level simulation."""

    def __init__(self, width: int, height: int, queue_capacity: int = 8) -> None:
        if width < 1 or height < 1:
            raise ConfigurationError(f"invalid mesh {width}x{height}")
        self.width = width
        self.height = height
        self.routers = {
            (x, y): Router((x, y), queue_capacity)
            for x in range(width)
            for y in range(height)
        }
        self.delivered: list[Message] = []
        self._in_flight = 0

    def _check_position(self, position: tuple[int, int]) -> None:
        if position not in self.routers:
            raise ConfigurationError(f"position {position} outside the mesh")

    def inject(self, message: Message, cycle: int) -> bool:
        """Offer a message at its source router; False when full."""
        self._check_position(message.source)
        self._check_position(message.destination)
        if self.routers[message.source].try_enqueue(message):
            message.inject_cycle = cycle
            self._in_flight += 1
            return True
        return False

    def _neighbor(self, position: tuple[int, int], port: int) -> tuple[int, int]:
        x, y = position
        if port == Router.EAST:
            return (x + 1, y)
        if port == Router.WEST:
            return (x - 1, y)
        if port == Router.NORTH:
            return (x, y + 1)
        if port == Router.SOUTH:
            return (x, y - 1)
        raise ConfigurationError(f"port {port} has no neighbor")

    def tick(self, cycle: int) -> list[Message]:
        """Advance one cycle; returns messages delivered this cycle."""
        arrivals: list[Message] = []
        moves: list[tuple[Router, int, Message, Router | None]] = []
        # Phase 1: pick at most one departing message per (router, port).
        for router in self.routers.values():
            for port, queue in enumerate(router.queues):
                if not queue:
                    continue
                message = queue[0]
                if port == Router.LOCAL:
                    moves.append((router, port, message, None))
                else:
                    target = self.routers[self._neighbor(router.position, port)]
                    moves.append((router, port, message, target))
        # Phase 2: apply moves (simultaneous across routers).
        for router, port, message, target in moves:
            if target is None:
                router.queues[port].popleft()
                # Serialization of the payload at the destination NI.
                message.deliver_cycle = cycle + max(0, message.payload_flits - 1)
                arrivals.append(message)
                self.delivered.append(message)
                self._in_flight -= 1
            elif target.try_enqueue(message):
                router.queues[port].popleft()
        return arrivals

    def run_until_drained(self, start_cycle: int = 0, max_cycles: int = 100_000) -> int:
        """Tick until every injected message is delivered; returns cycles used."""
        cycle = start_cycle
        while self._in_flight > 0:
            if cycle - start_cycle > max_cycles:
                raise ConfigurationError(
                    f"mesh did not drain within {max_cycles} cycles"
                )
            self.tick(cycle)
            cycle += 1
        return cycle - start_cycle

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def hop_distance(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Manhattan distance: the zero-load hop count of XY routing."""
        self._check_position(a)
        self._check_position(b)
        return abs(a[0] - b[0]) + abs(a[1] - b[1])
