"""Family adapters: one grid cell → one experiment-triple run.

Each campaign cell names an experiment *family* (``fig6`` / ``fig7`` /
``isolation`` / ``churn``) and pins a point of that family's parameter
space.  The adapters here translate a :class:`~repro.campaigns.grid.GridCell`
into the family's existing runtime triple — spec builder, trial runner,
reducer — so the campaign layer adds **no new simulation code**: a cell
runs exactly the trials the standalone experiment would, under the
cell's seed, and folds the family's own ``metric_set()`` plus combined
trace digests into one deterministic record.

Conventions shared by every family:

* ``design`` selects a single interconnect per cell (the whole default
  roster when absent), so a two-design sweep yields two independently
  diffable cells;
* ``utilization`` pins the family's utilization draw (for families that
  draw from a ``[low, high]`` range, both ends are set to the value);
* ``fault`` (isolation) is a ``"SIZExEVERY"`` burst shape, e.g.
  ``"24x60"`` = bursts of 24 every 60 cycles;
* ``scenario`` (churn) is the joiner count of the churn timeline;
* ``sim_backend`` / ``analysis_backend`` pin the process-wide engine
  defaults for the cell's duration — results are bit-identical across
  them (the repo's differential walls), so sweeping a backend axis is a
  *test*, not a new experiment: the gate diffs the cells flat.

A failed trial fails its whole cell (recorded, surfaced by the gate) —
campaign records never average over silently-missing trials.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.campaigns.grid import GridCell
from repro.errors import ConfigurationError, SimulationError
from repro.runtime import MetricSet, SerialExecutor, TrialOutcome, TrialSpec

#: axes every family accepts on top of its own
_BACKEND_AXES = ("sim_backend", "analysis_backend")

#: build result: (trial runner, trial specs, outcome folder)
CellPlan = tuple[
    Callable[[TrialSpec], MetricSet],
    "list[TrialSpec]",
    Callable[[Sequence[TrialOutcome]], MetricSet],
]


@dataclass(frozen=True)
class CellFamily:
    """One experiment family's campaign adapter."""

    name: str
    #: sweepable axis names (subset of spec.AXIS_ORDER)
    axes: tuple[str, ...]
    #: extra scalar-only settings beyond trials/horizon/drain
    extra_settings: tuple[str, ...]
    build: Callable[[GridCell], CellPlan]


def _scale_kwargs(cell: GridCell) -> dict[str, int]:
    """trials/horizon/drain overrides — only the ones the spec set."""
    kwargs: dict[str, int] = {}
    for name in ("trials", "horizon", "drain"):
        value = cell.value(name)
        if value is not None:
            kwargs[name] = int(value)
    return kwargs


def _designs(cell: GridCell, roster: tuple[str, ...]) -> tuple[str, ...]:
    design = cell.value("design")
    if design is None:
        return roster
    from repro.experiments.factory import INTERCONNECT_NAMES

    if design not in INTERCONNECT_NAMES:
        raise ConfigurationError(
            f"cell {cell.cell_id}: unknown design {design!r}; expected one "
            f"of {INTERCONNECT_NAMES}"
        )
    return (str(design),)


def _utilization_kwargs(cell: GridCell) -> dict[str, float]:
    utilization = cell.value("utilization")
    if utilization is None:
        return {}
    utilization = float(utilization)
    if not 0 < utilization <= 1:
        raise ConfigurationError(
            f"cell {cell.cell_id}: utilization must be in (0, 1], got "
            f"{utilization}"
        )
    return {
        "utilization_low": utilization,
        "utilization_high": utilization,
    }


def parse_fault_axis(value: Any) -> tuple[int, int]:
    """``"SIZExEVERY"`` → (burst_size, burst_every), e.g. ``"24x60"``."""
    try:
        size_text, every_text = str(value).split("x")
        size, every = int(size_text), int(every_text)
    except ValueError:
        raise ConfigurationError(
            f"fault axis values look like 'SIZExEVERY' (e.g. '24x60'), "
            f"got {value!r}"
        ) from None
    if size < 1 or every < 1:
        raise ConfigurationError(
            f"fault burst size and period must be positive, got {value!r}"
        )
    return size, every


def _fig6_build(cell: GridCell) -> CellPlan:
    from repro.experiments.factory import INTERCONNECT_NAMES
    from repro.experiments.fig6 import (
        Fig6Config,
        build_fig6_specs,
        reduce_fig6,
        run_fig6_trial,
    )

    designs = _designs(cell, INTERCONNECT_NAMES)
    kwargs: dict[str, Any] = _scale_kwargs(cell)
    kwargs.update(_utilization_kwargs(cell))
    if cell.value("n") is not None:
        kwargs["n_clients"] = int(cell.value("n"))
    if cell.value("observability") is not None:
        kwargs["observability"] = bool(cell.value("observability"))
    config = Fig6Config(seed=cell.seed, **kwargs)

    def fold(outcomes: Sequence[TrialOutcome]) -> MetricSet:
        return reduce_fig6(config, designs, list(outcomes)).metric_set()

    return run_fig6_trial, build_fig6_specs(config, designs), fold


def _fig7_build(cell: GridCell) -> CellPlan:
    from repro.experiments.factory import INTERCONNECT_NAMES
    from repro.experiments.fig7 import (
        Fig7Config,
        build_fig7_specs,
        reduce_fig7,
        run_fig7_trial,
    )

    designs = _designs(cell, INTERCONNECT_NAMES)
    kwargs: dict[str, Any] = _scale_kwargs(cell)
    if cell.value("n") is not None:
        kwargs["n_processors"] = int(cell.value("n"))
    if cell.value("utilization") is not None:
        kwargs["utilizations"] = (float(cell.value("utilization")),)
    if cell.value("observability") is not None:
        kwargs["observability"] = bool(cell.value("observability"))
    if cell.value("analysis") is not None:
        kwargs["analysis"] = bool(cell.value("analysis"))
    config = Fig7Config(seed=cell.seed, **kwargs)

    def fold(outcomes: Sequence[TrialOutcome]) -> MetricSet:
        return reduce_fig7(config, designs, list(outcomes)).metric_set()

    return run_fig7_trial, build_fig7_specs(config, designs), fold


def _isolation_build(cell: GridCell) -> CellPlan:
    from repro.experiments.isolation import (
        ISOLATION_INTERCONNECTS,
        IsolationConfig,
        build_isolation_specs,
        reduce_isolation,
        run_isolation_trial,
    )

    designs = _designs(cell, ISOLATION_INTERCONNECTS)
    kwargs: dict[str, Any] = _scale_kwargs(cell)
    kwargs.update(_utilization_kwargs(cell))
    if cell.value("n") is not None:
        kwargs["n_clients"] = int(cell.value("n"))
    if cell.value("fault") is not None:
        size, every = parse_fault_axis(cell.value("fault"))
        kwargs["burst_size"] = size
        kwargs["burst_every"] = every
    config = IsolationConfig(seed=cell.seed, **kwargs)

    def fold(outcomes: Sequence[TrialOutcome]) -> MetricSet:
        return reduce_isolation(config, designs, list(outcomes)).metric_set()

    return run_isolation_trial, build_isolation_specs(config, designs), fold


def _churn_build(cell: GridCell) -> CellPlan:
    from repro.experiments.churn import (
        ChurnConfig,
        build_churn_specs,
        reduce_churn,
        run_churn_trial,
    )

    kwargs: dict[str, Any] = _scale_kwargs(cell)
    kwargs.update(_utilization_kwargs(cell))
    if cell.value("n") is not None:
        kwargs["n_clients"] = int(cell.value("n"))
    if cell.value("scenario") is not None:
        kwargs["joiners"] = int(cell.value("scenario"))
    config = ChurnConfig(seed=cell.seed, **kwargs)

    def fold(outcomes: Sequence[TrialOutcome]) -> MetricSet:
        return reduce_churn(config, list(outcomes)).metric_set()

    return run_churn_trial, build_churn_specs(config), fold


FAMILIES: dict[str, CellFamily] = {
    "fig6": CellFamily(
        "fig6",
        axes=("design", "n", "utilization") + _BACKEND_AXES,
        extra_settings=("observability",),
        build=_fig6_build,
    ),
    "fig7": CellFamily(
        "fig7",
        axes=("design", "n", "utilization") + _BACKEND_AXES,
        extra_settings=("observability", "analysis"),
        build=_fig7_build,
    ),
    "isolation": CellFamily(
        "isolation",
        axes=("design", "n", "utilization", "fault") + _BACKEND_AXES,
        extra_settings=(),
        build=_isolation_build,
    ),
    "churn": CellFamily(
        "churn",
        axes=("n", "utilization", "scenario") + _BACKEND_AXES,
        extra_settings=(),
        build=_churn_build,
    ),
}


def get_family(name: str) -> CellFamily:
    if name not in FAMILIES:
        raise ConfigurationError(
            f"unknown experiment family {name!r}; expected one of "
            f"{sorted(FAMILIES)}"
        )
    return FAMILIES[name]


def family_axes(name: str) -> tuple[str, ...]:
    """Every key (axes + family settings) sweeps of ``name`` accept."""
    family = get_family(name)
    return family.axes + family.extra_settings


def cell_trial_specs(cell: GridCell) -> list[TrialSpec]:
    """The exact trial specs a cell will run (for the property tests)."""
    _, specs, _ = get_family(cell.family).build(cell)
    return specs


def _combined_trace_tags(
    outcomes: Sequence[TrialOutcome],
) -> dict[str, str]:
    """Per-design digests over every trial's trace digests, in order.

    Each trial already tags its completion-trace digests
    (``{design}/trace``, isolation's ``…/trace_base``/``…/trace_fault``,
    churn's per-policy traces); the cell record keeps one sha256 per
    tag key over the whole trial sequence — a single line whose
    equality certifies bit-identical simulation across executors,
    worker counts and sim backends.
    """
    keys: list[str] = []
    for outcome in outcomes:
        for key in outcome.metrics.tags:
            if "trace" in key.rsplit("/", 1)[-1] and key not in keys:
                keys.append(key)
    combined: dict[str, str] = {}
    for key in sorted(keys):
        digest = hashlib.sha256()
        for outcome in outcomes:
            digest.update(outcome.metrics.tags.get(key, "").encode())
        combined[key] = digest.hexdigest()
    return combined


def run_cell(cell: GridCell) -> MetricSet:
    """Execute one grid cell to a deterministic metric set.

    Runs the family's trials on a :class:`SerialExecutor` inside the
    current process (the campaign executor shards *cells*, not trials —
    so each trial runner's ``.batch`` seam still batches within the
    cell), pinning any backend the cell names for the duration.
    """
    family = get_family(cell.family)
    runner, specs, fold = family.build(cell)
    restore: list[Callable[[], Any]] = []
    sim_backend = cell.value("sim_backend")
    if sim_backend is not None:
        from repro.sim.backend import set_default_sim_backend

        previous = set_default_sim_backend(str(sim_backend))
        restore.append(lambda: set_default_sim_backend(previous))
    analysis_backend = cell.value("analysis_backend")
    if analysis_backend is not None:
        from repro.analysis.engine import set_default_backend

        previous_analysis = set_default_backend(str(analysis_backend))
        restore.append(lambda: set_default_backend(previous_analysis))
    try:
        outcomes = SerialExecutor().map(runner, specs, None)
    finally:
        for undo in restore:
            undo()
    failures = [outcome for outcome in outcomes if outcome.failed]
    if failures:
        raise SimulationError(
            f"cell {cell.cell_id}: {len(failures)} of {len(outcomes)} "
            f"trial(s) failed — first error: {failures[0].error}"
        )
    reduced = fold(outcomes)
    scalars = dict(reduced.scalars)
    scalars["cell/trials"] = float(len(specs))
    tags = dict(reduced.tags)
    tags.update(_combined_trace_tags(outcomes))
    tags["cell_id"] = cell.cell_id
    return MetricSet(scalars=scalars, tags=tags)
