"""The campaign regression gate: manifest vs golden baseline.

:func:`diff_campaigns` compares a fresh campaign's artifacts against a
baseline — another results directory, or a committed golden-baseline
JSON — under the campaign's :class:`~repro.campaigns.spec.GateConfig`:

* **structure** is sacred: a cell present on one side only, or a cell
  that failed, is a regression (sweeps must not silently shrink);
* **tags** (trace digests, verdict strings) compare exactly, always —
  they certify bit-identical simulation;
* **scalars** compare exactly by default, with per-pattern
  :class:`~repro.campaigns.spec.ToleranceRule` overrides (first match
  wins) for metrics that legitimately move;
* **wall-clock** — the only machine-dependent artifact, kept in
  ``timings.jsonl`` outside every digest — compares under a relative
  band, and only when both sides actually carry timings (committed
  goldens usually don't).

:class:`MetricDelta` is the shared delta primitive, with the edge-case
semantics the legacy ``compare_campaigns`` lacked: a metric missing on
either side yields an explicit ``added``/``removed`` delta (never a
silent skip), a NaN on either side is an explicit change (never a
quiet pass), and a zero baseline never raises — ``relative_change``
goes to ``inf``/``nan`` and threshold checks are written so that
non-finite changes always report.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Mapping

from repro.campaigns.executor import (
    CellRecord,
    load_campaign_dir,
)
from repro.campaigns.spec import GateConfig, ToleranceRule
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between two runs.

    ``before``/``after`` are ``None`` when the metric exists on only
    one side — such deltas are *explicit* (status ``added``/``removed``)
    rather than silently skipped, and their ``relative_change`` is NaN
    so every threshold check reports them.
    """

    experiment: str
    metric: str
    before: float | None
    after: float | None

    @property
    def status(self) -> str:
        if self.before is None:
            return "added"
        if self.after is None:
            return "removed"
        return "changed" if not self.equal else "equal"

    @property
    def equal(self) -> bool:
        """Exact equality; two NaNs count as equal (no change)."""
        if self.before is None or self.after is None:
            return False
        if math.isnan(self.before) and math.isnan(self.after):
            return True
        return self.before == self.after

    @property
    def relative_change(self) -> float:
        """(after - before) / |before|, with explicit edge semantics.

        * missing on either side → NaN (always exceeds any threshold);
        * NaN on exactly one side → NaN;
        * NaN on both sides → 0.0 (nothing moved);
        * zero baseline → 0.0 if after is zero too, else ±inf.
        """
        if self.before is None or self.after is None:
            return math.nan
        if math.isnan(self.before) and math.isnan(self.after):
            return 0.0
        if math.isnan(self.before) or math.isnan(self.after):
            return math.nan
        if self.before == 0:
            if self.after == 0:
                return 0.0
            return math.copysign(math.inf, self.after)
        return (self.after - self.before) / abs(self.before)

    def exceeds(self, threshold: float) -> bool:
        """True when the change is beyond ``threshold`` — written as
        ``not (|change| <= threshold)`` so NaN and inf always report."""
        return not (abs(self.relative_change) <= threshold)


def metric_deltas(
    before: Mapping[str, float],
    after: Mapping[str, float],
    experiment: str = "",
) -> list[MetricDelta]:
    """Explicit deltas over the *union* of both sides' metric names."""
    return [
        MetricDelta(
            experiment=experiment,
            metric=name,
            before=before.get(name),
            after=after.get(name),
        )
        for name in sorted(set(before) | set(after))
    ]


def format_metric(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


@dataclass(frozen=True)
class GateViolation:
    """One reason the gate fails: where, what kind, and the evidence."""

    kind: str  # "structure" | "failure" | "tag" | "metric" | "wall_clock"
    cell_id: str
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.cell_id}: {self.detail}"


@dataclass
class CampaignArtifacts:
    """A loaded campaign: manifest + cell records (+ optional timings)."""

    manifest: dict[str, Any]
    records: list[CellRecord]
    timings: list[dict[str, Any]]

    @property
    def by_cell(self) -> dict[str, CellRecord]:
        return {record.cell_id: record for record in self.records}

    def wall_clock_seconds(self) -> float | None:
        """Total per-cell wall-clock; last timing line per cell wins
        (resumed runs append a retry line).  None without timings."""
        if not self.timings:
            return None
        last: dict[str, float] = {}
        for entry in self.timings:
            try:
                last[entry["cell_id"]] = float(entry["seconds"])
            except (KeyError, TypeError, ValueError):
                continue
        return sum(last.values()) if last else None


def load_artifacts(path: str | Path) -> CampaignArtifacts:
    """Load a results directory *or* a golden-baseline JSON file."""
    path = Path(path)
    if path.is_dir():
        manifest, records, timings = load_campaign_dir(path)
        return CampaignArtifacts(manifest, records, timings)
    if not path.exists():
        raise ConfigurationError(f"no campaign artifacts at {path}")
    raw = json.loads(path.read_text(encoding="utf-8"))
    if "manifest" not in raw or "cells" not in raw:
        raise ConfigurationError(
            f"{path} is not a campaign baseline (needs 'manifest' and "
            "'cells' keys)"
        )
    return CampaignArtifacts(
        manifest=raw["manifest"],
        records=[CellRecord.from_dict(entry) for entry in raw["cells"]],
        timings=list(raw.get("timings", ())),
    )


def golden_payload(
    artifacts: CampaignArtifacts, comment: str
) -> dict[str, Any]:
    """The committed golden-baseline shape (timings intentionally
    dropped — they are machine-dependent and gate-exempt)."""
    return {
        "comment": comment,
        "manifest": artifacts.manifest,
        "cells": [record.as_dict() for record in artifacts.records],
    }


def _rule_for(gate: GateConfig, metric: str) -> ToleranceRule:
    for rule in gate.rules:
        if fnmatchcase(metric, rule.pattern):
            return rule
    return ToleranceRule(pattern="*", kind="exact")


def _check_metric(
    gate: GateConfig, cell_id: str, delta: MetricDelta
) -> GateViolation | None:
    rule = _rule_for(gate, delta.metric)
    if rule.kind == "ignore":
        return None
    if delta.before is None or delta.after is None:
        return GateViolation(
            kind="metric",
            cell_id=cell_id,
            detail=(
                f"{delta.metric} {delta.status}: "
                f"{format_metric(delta.before)} -> "
                f"{format_metric(delta.after)}"
            ),
        )
    if rule.kind == "exact":
        if delta.equal:
            return None
        return GateViolation(
            kind="metric",
            cell_id=cell_id,
            detail=(
                f"{delta.metric}: {format_metric(delta.before)} -> "
                f"{format_metric(delta.after)} (exact rule "
                f"{rule.pattern!r})"
            ),
        )
    if rule.kind == "relative":
        if not delta.exceeds(rule.tolerance):
            return None
        return GateViolation(
            kind="metric",
            cell_id=cell_id,
            detail=(
                f"{delta.metric}: {format_metric(delta.before)} -> "
                f"{format_metric(delta.after)} "
                f"({delta.relative_change:+.1%} beyond ±"
                f"{rule.tolerance:.0%} of rule {rule.pattern!r})"
            ),
        )
    # absolute
    moved = (
        abs(delta.after - delta.before)
        if not (math.isnan(delta.before) or math.isnan(delta.after))
        else math.nan
    )
    if moved <= rule.tolerance and not math.isnan(moved):
        return None
    return GateViolation(
        kind="metric",
        cell_id=cell_id,
        detail=(
            f"{delta.metric}: {format_metric(delta.before)} -> "
            f"{format_metric(delta.after)} (|Δ|={format_metric(moved)} "
            f"beyond {rule.tolerance} of rule {rule.pattern!r})"
        ),
    )


def diff_campaigns(
    baseline: CampaignArtifacts,
    current: CampaignArtifacts,
    gate: GateConfig | None = None,
) -> list[GateViolation]:
    """Every way ``current`` regresses from ``baseline`` under ``gate``.

    An empty list means the gate passes.  ``gate=None`` reads the gate
    config sealed into the *current* manifest (falling back to the
    baseline's, then to defaults) — the spec that produced the run
    decides its own tolerances.
    """
    if gate is None:
        raw = current.manifest.get("gate") or baseline.manifest.get("gate")
        gate = GateConfig.from_mapping(raw) if raw else GateConfig()
    violations: list[GateViolation] = []
    before_cells = baseline.by_cell
    after_cells = current.by_cell
    for cell_id in sorted(set(before_cells) - set(after_cells)):
        violations.append(
            GateViolation(
                kind="structure",
                cell_id=cell_id,
                detail="cell present in baseline but missing from run",
            )
        )
    for cell_id in sorted(set(after_cells) - set(before_cells)):
        violations.append(
            GateViolation(
                kind="structure",
                cell_id=cell_id,
                detail="cell present in run but not in baseline "
                "(bless a new baseline to accept it)",
            )
        )
    for cell_id in sorted(set(before_cells) & set(after_cells)):
        before = before_cells[cell_id]
        after = after_cells[cell_id]
        if before.error != after.error:
            violations.append(
                GateViolation(
                    kind="failure",
                    cell_id=cell_id,
                    detail=(
                        f"error status changed: {before.error!r} -> "
                        f"{after.error!r}"
                    ),
                )
            )
            continue
        before_tags = before.tag_dict
        after_tags = after.tag_dict
        for tag in sorted(set(before_tags) | set(after_tags)):
            if before_tags.get(tag) != after_tags.get(tag):
                violations.append(
                    GateViolation(
                        kind="tag",
                        cell_id=cell_id,
                        detail=(
                            f"{tag}: {before_tags.get(tag, '-')[:16]}… -> "
                            f"{after_tags.get(tag, '-')[:16]}…"
                        ),
                    )
                )
        for delta in metric_deltas(
            before.scalar_dict, after.scalar_dict, experiment=cell_id
        ):
            violation = _check_metric(gate, cell_id, delta)
            if violation is not None:
                violations.append(violation)
    before_seconds = baseline.wall_clock_seconds()
    after_seconds = current.wall_clock_seconds()
    if before_seconds is not None and after_seconds is not None:
        delta = MetricDelta(
            experiment="campaign",
            metric="wall_clock_seconds",
            before=before_seconds,
            after=after_seconds,
        )
        # only a *slowdown* beyond the band fails; getting faster is fine
        if (
            delta.relative_change > 0 or math.isnan(delta.relative_change)
        ) and delta.exceeds(gate.wall_clock_tolerance):
            violations.append(
                GateViolation(
                    kind="wall_clock",
                    cell_id="campaign",
                    detail=(
                        f"total wall-clock {before_seconds:.2f}s -> "
                        f"{after_seconds:.2f}s "
                        f"({delta.relative_change:+.0%} beyond the "
                        f"±{gate.wall_clock_tolerance:.0%} band)"
                    ),
                )
            )
    return violations


def format_gate_report(
    violations: list[GateViolation], baseline_name: str = "baseline"
) -> str:
    """Human-readable verdict for the ``repro campaign diff`` CLI."""
    if not violations:
        return f"gate PASS: no regressions against {baseline_name}"
    lines = [
        f"gate FAIL: {len(violations)} regression(s) against "
        f"{baseline_name}"
    ]
    lines.extend(violation.describe() for violation in violations)
    return "\n".join(lines)
