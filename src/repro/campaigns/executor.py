"""Resumable, sharded campaign execution with checkpointed manifests.

:func:`run_campaign` maps a campaign's grid cells over the
:mod:`repro.runtime` executor seam (cells are the sharding unit — each
cell's trials run serially *inside* one process, so the trial runners'
``.batch`` seam still batches within the cell) and checkpoints every
completed cell to ``cells.jsonl`` as it is collected.  A killed run
restarts with ``resume=True``: finished cells are loaded back from the
checkpoint, only the missing (and previously-errored) cells execute,
and the finalization pass rewrites ``cells.jsonl`` in grid order — so
the final artifacts are **byte-identical** to an uninterrupted run, at
any worker count, on either sim backend.

Artifact layout under ``out_dir``::

    campaign.json   header: name + spec/grid digests (resume guard)
    cells.jsonl     one canonical-JSON record per cell, grid order
    manifest.json   name, digests (incl. sha256 of cells.jsonl), gate
    timings.jsonl   per-cell wall-clock — deliberately OUTSIDE every
                    digest; machines differ, manifests must not

Only ``timings.jsonl`` is machine-dependent; everything else is a pure
function of the spec, which is what lets the regression gate compare
manifests across machines and branches with exact rules.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.campaigns.families import run_cell
from repro.campaigns.grid import GridCell, expand_campaign, grid_digest
from repro.campaigns.spec import CampaignSpec, canonical_json
from repro.errors import ConfigurationError
from repro.runtime import (
    ExecutionHooks,
    Executor,
    MetricSet,
    ParallelExecutor,
    SerialExecutor,
    TrialOutcome,
    TrialSpec,
)

CAMPAIGN_FILE = "campaign.json"
CELLS_FILE = "cells.jsonl"
MANIFEST_FILE = "manifest.json"
TIMINGS_FILE = "timings.jsonl"


@dataclass(frozen=True)
class CellRecord:
    """One completed cell, ready to serialize canonically.

    Everything here is a pure function of the campaign spec (scalars,
    tags, the cell's identity and seed) — wall-clock lives in
    ``timings.jsonl``, never in a record, so records are byte-stable
    across machines, worker counts and resumption histories.
    """

    cell_id: str
    index: int
    family: str
    seed: int
    coords: tuple[tuple[str, Any], ...]
    settings: tuple[tuple[str, Any], ...]
    scalars: tuple[tuple[str, float], ...]
    tags: tuple[tuple[str, str], ...]
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def scalar_dict(self) -> dict[str, float]:
        return dict(self.scalars)

    @property
    def tag_dict(self) -> dict[str, str]:
        return dict(self.tags)

    def as_dict(self) -> dict[str, Any]:
        return {
            "cell_id": self.cell_id,
            "index": self.index,
            "family": self.family,
            "seed": self.seed,
            "coords": dict(self.coords),
            "settings": dict(self.settings),
            "scalars": dict(self.scalars),
            "tags": dict(self.tags),
            "error": self.error,
        }

    def line(self) -> str:
        return canonical_json(self.as_dict())

    @classmethod
    def from_outcome(
        cls, cell: GridCell, outcome: TrialOutcome
    ) -> "CellRecord":
        return cls(
            cell_id=cell.cell_id,
            index=cell.index,
            family=cell.family,
            seed=cell.seed,
            coords=cell.coords,
            settings=cell.settings,
            scalars=tuple(sorted(outcome.metrics.scalars.items())),
            tags=tuple(sorted(outcome.metrics.tags.items())),
            error=outcome.error,
        )

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "CellRecord":
        return cls(
            cell_id=raw["cell_id"],
            index=int(raw["index"]),
            family=raw["family"],
            seed=int(raw["seed"]),
            coords=tuple(raw["coords"].items()),
            settings=tuple(raw["settings"].items()),
            scalars=tuple(sorted(raw["scalars"].items())),
            tags=tuple(sorted(raw["tags"].items())),
            error=raw.get("error"),
        )


@dataclass
class CampaignRun:
    """What one (possibly resumed) campaign execution produced."""

    spec: CampaignSpec
    directory: Path
    records: list[CellRecord]
    manifest: dict[str, Any]
    #: cells loaded from the checkpoint instead of re-executed
    resumed_cells: int = 0
    executed_cells: int = 0

    @property
    def failed_cells(self) -> list[CellRecord]:
        return [record for record in self.records if record.failed]


def run_campaign_cell(spec: TrialSpec) -> MetricSet:
    """Runtime-level runner: unwrap the grid cell and execute it.

    Module-level (picklable by reference) so :class:`ParallelExecutor`
    ships cells to worker processes; deliberately has **no** ``batch``
    attribute — cells are coarse units that shard one-per-task.
    """
    return run_cell(spec.param("cell"))


class _CheckpointHooks(ExecutionHooks):
    """Append each collected cell to the checkpoint, then chain on.

    Runs in the submitting process in spec (= grid) order, so a killed
    run's ``cells.jsonl`` is interleaved with any previously-resumed
    records but each line is complete-or-absent (write + flush + fsync
    per cell; a torn final line from a hard kill is discarded on load).
    """

    def __init__(
        self,
        directory: Path,
        workers: int,
        inner: ExecutionHooks | None,
    ) -> None:
        self.directory = directory
        self.workers = workers
        self.inner = inner or ExecutionHooks()
        self.records: list[CellRecord] = []

    def on_batch_start(self, specs: Sequence[TrialSpec]) -> None:
        self.inner.on_batch_start(specs)

    def on_trial_done(
        self, outcome: TrialOutcome, done: int, total: int
    ) -> None:
        cell: GridCell = outcome.spec.param("cell")
        record = CellRecord.from_outcome(cell, outcome)
        self.records.append(record)
        with open(
            self.directory / CELLS_FILE, "a", encoding="utf-8"
        ) as handle:
            handle.write(record.line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        with open(
            self.directory / TIMINGS_FILE, "a", encoding="utf-8"
        ) as handle:
            handle.write(
                canonical_json(
                    {
                        "cell_id": record.cell_id,
                        "seconds": outcome.seconds,
                        "workers": self.workers,
                    }
                )
                + "\n"
            )
        self.inner.on_trial_done(outcome, done, total)

    def on_batch_done(self, outcomes: Sequence[TrialOutcome]) -> None:
        self.inner.on_batch_done(outcomes)


def _load_checkpoint(
    path: Path, cells: list[GridCell]
) -> dict[str, CellRecord]:
    """Completed, still-valid records from a (possibly torn) JSONL.

    Discards: a truncated final line (hard kill mid-write), errored
    records (retried on resume), and records whose identity no longer
    matches the grid (defense in depth — the digest guard in
    :func:`run_campaign` should have caught a changed spec already).
    """
    by_id = {cell.cell_id: cell for cell in cells}
    records: dict[str, CellRecord] = {}
    if not path.exists():
        return records
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = CellRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, AttributeError):
                continue  # torn tail from a mid-write kill
            cell = by_id.get(record.cell_id)
            if cell is None or cell.seed != record.seed or record.failed:
                continue
            records[record.cell_id] = record
    return records


def _write_canonical(path: Path, value: Any) -> None:
    path.write_text(canonical_json(value) + "\n", encoding="utf-8")


def run_campaign(
    spec: CampaignSpec,
    out_dir: str | Path,
    workers: int | None = 1,
    resume: bool = True,
    hooks: ExecutionHooks | None = None,
    worker_init: Callable[[], object] | None = None,
) -> CampaignRun:
    """Execute (or finish) a campaign into ``out_dir``.

    With ``resume=True`` (the default) an existing checkpoint for the
    *same* spec — same spec digest, same grid digest — is continued:
    completed cells are skipped, errored and missing cells run.  A
    checkpoint from a different spec is refused rather than silently
    mixed.  ``resume=False`` discards any checkpoint and starts clean.

    On completion ``cells.jsonl`` is rewritten atomically in grid order
    and ``manifest.json`` seals the run with digests over the spec, the
    grid and the cell records — the byte-identity anchor the resume and
    backend tests (and the regression gate) compare.
    """
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    cells = expand_campaign(spec)
    header = {
        "name": spec.name,
        "spec": spec.as_dict(),
        "spec_digest": spec.digest(),
        "grid_digest": grid_digest(cells),
        "cells": len(cells),
    }
    header_path = directory / CAMPAIGN_FILE
    done: dict[str, CellRecord] = {}
    if header_path.exists() and resume:
        previous = json.loads(header_path.read_text(encoding="utf-8"))
        for key in ("spec_digest", "grid_digest"):
            if previous.get(key) != header[key]:
                raise ConfigurationError(
                    f"{directory} holds a checkpoint for a different "
                    f"campaign ({key} mismatch); pass resume=False to "
                    "discard it"
                )
        done = _load_checkpoint(directory / CELLS_FILE, cells)
    elif not resume:
        for name in (CELLS_FILE, MANIFEST_FILE, TIMINGS_FILE):
            (directory / name).unlink(missing_ok=True)
    _write_canonical(header_path, header)

    pending = [cell for cell in cells if cell.cell_id not in done]
    specs = [
        TrialSpec.make("campaign", cell.index, cell.seed, cell=cell)
        for cell in pending
    ]
    checkpoint = _CheckpointHooks(directory, workers or 1, hooks)
    if workers and workers > 1:
        # chunk_size=1: cells are coarse (tens of trials each), so
        # shard them one per pool task for checkpoint granularity
        executor: Executor = ParallelExecutor(
            workers, chunk_size=1, worker_init=worker_init
        )
    else:
        executor = SerialExecutor()
    executor.map(run_campaign_cell, specs, checkpoint)

    records = sorted(
        [*done.values(), *checkpoint.records], key=lambda r: r.index
    )
    if [record.cell_id for record in records] != [
        cell.cell_id for cell in cells
    ]:
        raise ConfigurationError(
            f"campaign {spec.name!r} finished with an inconsistent "
            "checkpoint; re-run with resume=False"
        )
    body = "".join(record.line() + "\n" for record in records)
    tmp = directory / (CELLS_FILE + ".tmp")
    tmp.write_text(body, encoding="utf-8")
    os.replace(tmp, directory / CELLS_FILE)
    manifest = {
        "name": spec.name,
        "spec_digest": header["spec_digest"],
        "grid_digest": header["grid_digest"],
        "cells_digest": hashlib.sha256(body.encode()).hexdigest(),
        "cells": len(records),
        "failed": sum(1 for record in records if record.failed),
        "gate": spec.gate.as_dict(),
    }
    _write_canonical(directory / MANIFEST_FILE, manifest)
    return CampaignRun(
        spec=spec,
        directory=directory,
        records=records,
        manifest=manifest,
        resumed_cells=len(done),
        executed_cells=len(pending),
    )


def load_campaign_dir(
    directory: str | Path,
) -> tuple[dict[str, Any], list[CellRecord], list[dict[str, Any]]]:
    """Read a completed campaign back: (manifest, records, timings)."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_FILE
    if not manifest_path.exists():
        raise ConfigurationError(
            f"{directory} holds no completed campaign ({MANIFEST_FILE} "
            "missing — interrupted runs resume via run_campaign)"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    records = [
        CellRecord.from_dict(json.loads(line))
        for line in (directory / CELLS_FILE)
        .read_text(encoding="utf-8")
        .splitlines()
        if line.strip()
    ]
    timings: list[dict[str, Any]] = []
    timings_path = directory / TIMINGS_FILE
    if timings_path.exists():
        for line in timings_path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                try:
                    timings.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    return manifest, records, timings
