"""Deterministic grid expansion: spec → ordered, seeded cells.

:func:`expand_campaign` turns a :class:`~repro.campaigns.spec.CampaignSpec`
into the flat list of :class:`GridCell` it denotes — the cartesian
product of each sweep's axes, walked in :data:`~repro.campaigns.spec.AXIS_ORDER`
with each axis's values in spec order.  Three properties the campaign
machinery leans on (and the property tests pin):

* **Determinism** — the cell list is a pure function of the normalized
  spec; file key order, executor width and resume history cannot move a
  cell or change its seed.
* **Disjoint seed streams** — every cell's seed derives from the
  campaign seed and the cell's *workload* coordinates (the engine
  backend axes are excluded: cells that differ only in
  ``sim_backend``/``analysis_backend`` deliberately share a seed, so a
  backend sweep replays the identical workload and the gate's exact
  tag rules certify bit-identity).  Trial seeds inside a cell come
  from family streams keyed by the cell seed, so no two
  workload-distinct cells can share a trial seed stream.
* **Stable identity** — ``cell_id`` names the cell by its coordinates
  (``fig7/s0/design=BlueScale/utilization=0.3``), so checkpoints,
  manifests and gate diffs address cells symbolically, never by list
  position in a particular run.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Any

from repro.campaigns.spec import AXIS_ORDER, CampaignSpec, canonical_json
from repro.runtime import derive_seed

#: axes that select an *engine*, not a workload — excluded from seed
#: derivation so backend-swept cells replay identical trials
ENGINE_AXES = ("sim_backend", "analysis_backend")


@dataclass(frozen=True)
class GridCell:
    """One point of a campaign grid: where, with what, under what seed.

    ``coords`` are the swept ``(axis, value)`` pairs in
    :data:`AXIS_ORDER`; ``settings`` the sweep's fixed scalars sorted by
    name.  Frozen and tuple-backed, so cells hash, pickle and compare
    deterministically — they ride inside :class:`repro.runtime.TrialSpec`
    params across process boundaries.
    """

    family: str
    sweep: int
    coords: tuple[tuple[str, Any], ...]
    settings: tuple[tuple[str, Any], ...]
    seed: int
    index: int

    @property
    def cell_id(self) -> str:
        """Symbolic name: family, sweep block, then every coordinate."""
        return cell_name(self.family, self.sweep, self.coords)

    def value(self, name: str, default: Any = None) -> Any:
        """Look ``name`` up in the coordinates, then the settings."""
        for key, value in self.coords:
            if key == name:
                return value
        for key, value in self.settings:
            if key == name:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        return {
            "cell_id": self.cell_id,
            "family": self.family,
            "sweep": self.sweep,
            "coords": dict(self.coords),
            "settings": dict(self.settings),
            "seed": self.seed,
            "index": self.index,
        }


def cell_name(
    family: str, sweep: int, coords: tuple[tuple[str, Any], ...]
) -> str:
    parts = [f"{family}/s{sweep}"]
    parts.extend(f"{name}={value}" for name, value in coords)
    return "/".join(parts)


def expand_campaign(spec: CampaignSpec) -> list[GridCell]:
    """The spec's full cell list, in canonical order, seeded disjointly.

    Sweeps expand in declaration order; within a sweep the axes nest in
    :data:`AXIS_ORDER` (first axis slowest), each axis's values in the
    order the spec listed them.  Cell seeds derive from the campaign
    seed and the cell's workload name (its id minus any
    :data:`ENGINE_AXES` coordinates), so they are stable under any
    re-slicing of the grid, unique per workload, and *shared* between
    cells that differ only in engine backend.
    """
    cells: list[GridCell] = []
    seen: set[str] = set()
    for sweep_index, sweep in enumerate(spec.sweeps):
        axis_names = [name for name, _ in sweep.axes]
        axis_values = [values for _, values in sweep.axes]
        assert axis_names == [a for a in AXIS_ORDER if a in axis_names]
        for point in itertools.product(*axis_values):
            coords = tuple(zip(axis_names, point))
            name = cell_name(sweep.family, sweep_index, coords)
            if name in seen:
                raise AssertionError(f"duplicate cell id {name!r}")
            seen.add(name)
            workload = cell_name(
                sweep.family,
                sweep_index,
                tuple(
                    (axis, value)
                    for axis, value in coords
                    if axis not in ENGINE_AXES
                ),
            )
            cells.append(
                GridCell(
                    family=sweep.family,
                    sweep=sweep_index,
                    coords=coords,
                    settings=sweep.settings,
                    seed=derive_seed(spec.seed, workload),
                    index=len(cells),
                )
            )
    return cells


def grid_digest(cells: list[GridCell]) -> str:
    """sha256 over the canonical JSON of the whole expanded grid.

    Recorded in the manifest and checked on resume: a checkpoint
    directory only continues a run whose spec expands to the *same*
    grid — same cells, same order, same seeds.
    """
    payload = canonical_json([cell.as_dict() for cell in cells])
    return hashlib.sha256(payload.encode()).hexdigest()
