"""Campaign summarizer: per-family markdown reports + JSONL series.

:func:`summarize_campaign` renders a completed campaign directory (or
golden baseline) into two artifacts:

* ``report.md`` — the human report: manifest digests, one markdown
  table per family (cells as rows, the scalars every cell of the
  family shares as columns), folded observability counters
  (:func:`repro.observability.fold_summary_scalars` over the
  ``…/obs/…`` scalars), failures, and total wall-clock when timings
  are present;
* ``series.jsonl`` — the machine series: one JSON line per cell with
  its coordinates, scalars and wall-clock, ready for ad-hoc plotting
  or cross-campaign trend tooling.

This generalizes the per-experiment formatters in
:mod:`repro.experiments.reporting` — the tables there render one
result object; here, whole sweeps of cells.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.campaigns.executor import CellRecord
from repro.campaigns.gate import CampaignArtifacts, load_artifacts
from repro.campaigns.spec import canonical_json
from repro.experiments.reporting import format_markdown_table
from repro.observability import fold_summary_scalars

REPORT_FILE = "report.md"
SERIES_FILE = "series.jsonl"


def _families_in_order(records: list[CellRecord]) -> list[str]:
    seen: list[str] = []
    for record in records:
        if record.family not in seen:
            seen.append(record.family)
    return seen


def _shared_scalar_keys(records: list[CellRecord]) -> list[str]:
    """Scalar names every (non-failed) record of the family carries."""
    keys: set[str] | None = None
    for record in records:
        if record.failed:
            continue
        names = set(record.scalar_dict)
        keys = names if keys is None else keys & names
    return sorted(keys or ())


def _family_table(family: str, records: list[CellRecord]) -> str:
    columns = [
        key
        for key in _shared_scalar_keys(records)
        if "/obs/" not in key and key != "cell/trials"
    ]
    headers = ["cell", *columns, "status"]
    rows: list[list[object]] = []
    for record in records:
        coords = "/".join(
            f"{name}={value}" for name, value in record.coords
        ) or "-"
        scalars = record.scalar_dict
        rows.append(
            [
                coords,
                *[scalars.get(key, float("nan")) for key in columns],
                "FAILED" if record.failed else "ok",
            ]
        )
    return format_markdown_table(headers, rows, title=f"{family}")


def _cell_seconds(timings: list[dict[str, Any]]) -> dict[str, float]:
    seconds: dict[str, float] = {}
    for entry in timings:
        try:
            seconds[entry["cell_id"]] = float(entry["seconds"])
        except (KeyError, TypeError, ValueError):
            continue
    return seconds


def render_report(artifacts: CampaignArtifacts) -> str:
    """The full ``report.md`` body for one campaign's artifacts."""
    manifest = artifacts.manifest
    lines = [
        f"# Campaign report — {manifest.get('name', 'unnamed')}",
        "",
        f"- cells: {manifest.get('cells', len(artifacts.records))} "
        f"({manifest.get('failed', 0)} failed)",
        f"- spec digest: `{manifest.get('spec_digest', '-')}`",
        f"- grid digest: `{manifest.get('grid_digest', '-')}`",
        f"- cells digest: `{manifest.get('cells_digest', '-')}`",
    ]
    total_seconds = artifacts.wall_clock_seconds()
    if total_seconds is not None:
        lines.append(f"- total cell wall-clock: {total_seconds:.2f} s")
    by_family: dict[str, list[CellRecord]] = {}
    for record in artifacts.records:
        by_family.setdefault(record.family, []).append(record)
    for family in _families_in_order(artifacts.records):
        lines.append("")
        lines.append(_family_table(family, by_family[family]))
    obs = fold_summary_scalars(
        record.scalar_dict for record in artifacts.records
    )
    if obs:
        lines.append("")
        lines.append(
            format_markdown_table(
                ["observability metric", "folded value"],
                sorted(obs.items()),
                title="Observability (folded across cells)",
            )
        )
    failures = [record for record in artifacts.records if record.failed]
    if failures:
        lines.append("")
        lines.append("## Failures")
        lines.append("")
        for record in failures:
            lines.append(f"- `{record.cell_id}`: {record.error}")
    lines.append("")
    return "\n".join(lines)


def render_series(artifacts: CampaignArtifacts) -> str:
    """One JSON line per cell: identity, scalars, wall-clock."""
    seconds = _cell_seconds(artifacts.timings)
    lines = []
    for record in artifacts.records:
        entry: dict[str, Any] = {
            "cell_id": record.cell_id,
            "family": record.family,
            "coords": dict(record.coords),
            "scalars": record.scalar_dict,
            "error": record.error,
        }
        if record.cell_id in seconds:
            entry["seconds"] = seconds[record.cell_id]
        lines.append(canonical_json(entry))
    return "\n".join(lines) + ("\n" if lines else "")


def summarize_campaign(
    source: str | Path, out_dir: str | Path | None = None
) -> tuple[Path, Path]:
    """Render ``report.md`` + ``series.jsonl`` for a campaign.

    ``source`` is a results directory or a golden baseline file;
    ``out_dir`` defaults to the source directory (or the baseline
    file's parent).  Returns the two written paths.
    """
    source = Path(source)
    artifacts = load_artifacts(source)
    directory = Path(
        out_dir
        if out_dir is not None
        else (source if source.is_dir() else source.parent)
    )
    directory.mkdir(parents=True, exist_ok=True)
    report_path = directory / REPORT_FILE
    series_path = directory / SERIES_FILE
    report_path.write_text(render_report(artifacts), encoding="utf-8")
    series_path.write_text(render_series(artifacts), encoding="utf-8")
    return report_path, series_path
