"""Declarative, resumable, gated experiment campaigns.

The campaign layer turns the repo's experiment triples into CI-grade
infrastructure (ROADMAP item 5: "enforced in CI, not eyeballed"):

* :mod:`repro.campaigns.spec` — TOML/JSON sweep files normalized into
  frozen :class:`CampaignSpec` objects with key-order-independent
  digests;
* :mod:`repro.campaigns.grid` — deterministic cartesian expansion into
  seeded :class:`GridCell`\\ s with disjoint per-cell seed streams;
* :mod:`repro.campaigns.families` — adapters running each cell through
  the existing fig6/fig7/isolation/churn triples, unchanged;
* :mod:`repro.campaigns.executor` — sharded execution over
  :mod:`repro.runtime` with per-cell checkpointing; a killed run
  resumes to **byte-identical** final artifacts at any worker count;
* :mod:`repro.campaigns.summarize` — markdown report + JSONL series;
* :mod:`repro.campaigns.gate` — the regression gate diffing a run
  against a committed golden baseline under per-metric tolerance rules
  (``repro campaign run / report / diff``).
"""

from repro.campaigns.executor import (
    CampaignRun,
    CellRecord,
    load_campaign_dir,
    run_campaign,
)
from repro.campaigns.families import (
    FAMILIES,
    cell_trial_specs,
    family_axes,
    run_cell,
)
from repro.campaigns.gate import (
    CampaignArtifacts,
    GateViolation,
    MetricDelta,
    diff_campaigns,
    format_gate_report,
    golden_payload,
    load_artifacts,
    metric_deltas,
)
from repro.campaigns.grid import GridCell, expand_campaign, grid_digest
from repro.campaigns.spec import (
    AXIS_ORDER,
    CampaignSpec,
    GateConfig,
    SweepSpec,
    ToleranceRule,
    canonical_json,
    load_campaign_spec,
    parse_campaign_spec,
)
from repro.campaigns.summarize import (
    render_report,
    render_series,
    summarize_campaign,
)

__all__ = [
    "AXIS_ORDER",
    "FAMILIES",
    "CampaignArtifacts",
    "CampaignRun",
    "CampaignSpec",
    "CellRecord",
    "GateConfig",
    "GateViolation",
    "GridCell",
    "MetricDelta",
    "SweepSpec",
    "ToleranceRule",
    "canonical_json",
    "cell_trial_specs",
    "diff_campaigns",
    "expand_campaign",
    "family_axes",
    "format_gate_report",
    "golden_payload",
    "grid_digest",
    "load_artifacts",
    "load_campaign_dir",
    "load_campaign_spec",
    "metric_deltas",
    "parse_campaign_spec",
    "run_campaign",
    "run_cell",
    "summarize_campaign",
]
