"""Declarative campaign specifications (TOML / JSON sweep files).

A campaign spec describes *what to run* as data: a list of sweep
blocks, each naming an experiment family plus the axes to sweep
(design, system size, utilization, fault plan, scenario plan, engine
backends).  :func:`parse_campaign_spec` normalizes the raw mapping into
a frozen :class:`CampaignSpec` whose canonical form — and therefore
whose digest — is independent of the key order of the source file:
axes expand in a fixed canonical order, settings sort by name, and the
digest covers the normalized structure, never the file bytes.

Example (JSON; TOML is accepted wherever ``tomllib`` exists)::

    {
      "name": "ci-tiny",
      "seed": 2022,
      "sweeps": [
        {"family": "fig7",
         "design": ["AXI-IC^RT", "BlueScale"],
         "n": 4,
         "utilization": [0.3, 0.6],
         "trials": 2, "horizon": 2000, "drain": 1000}
      ],
      "gate": {"wall_clock_tolerance": 25.0}
    }

A known axis given as a *list* becomes a grid dimension (one cell per
value); given as a *scalar* it is a fixed setting shared by every cell
of the sweep.  Unknown keys are configuration errors — a typo must
never silently shrink a sweep.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError

#: canonical expansion order of the sweep axes — grid expansion walks
#: axes in THIS order (never file key order), so shuffling keys in a
#: spec file cannot change the expanded grid or any digest
AXIS_ORDER = (
    "design",
    "n",
    "utilization",
    "fault",
    "scenario",
    "sim_backend",
    "analysis_backend",
)

#: scalar knobs every family accepts next to its axes
COMMON_SETTINGS = (
    "trials",
    "horizon",
    "drain",
)


@dataclass(frozen=True)
class ToleranceRule:
    """How the regression gate compares one metric family.

    ``pattern`` is an ``fnmatch`` glob over metric names
    (``"*/success_ratio"``); first matching rule wins.  Kinds:

    * ``exact`` — any difference is a regression (the default for every
      deterministic metric: digests, verdicts, counts, ratios);
    * ``relative`` — ``|after - before| / |before|`` must stay within
      ``tolerance`` (the wall-clock band);
    * ``absolute`` — ``|after - before|`` must stay within ``tolerance``;
    * ``ignore`` — never compared (informational metrics).
    """

    pattern: str
    kind: str = "exact"
    tolerance: float = 0.0

    KINDS = ("exact", "relative", "absolute", "ignore")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ConfigurationError(
                f"unknown tolerance kind {self.kind!r}; expected one of "
                f"{self.KINDS}"
            )
        if self.tolerance < 0:
            raise ConfigurationError(
                f"tolerance must be non-negative, got {self.tolerance}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "pattern": self.pattern,
            "kind": self.kind,
            "tolerance": self.tolerance,
        }


@dataclass(frozen=True)
class GateConfig:
    """The regression gate's tolerance policy for one campaign.

    Deterministic content (metrics, digests, verdicts, structure) is
    compared exactly unless a rule says otherwise; wall-clock is always
    compared under a relative band because machines differ — the wide
    default only catches pathological slowdowns, CI can tighten it.
    """

    rules: tuple[ToleranceRule, ...] = ()
    wall_clock_tolerance: float = 25.0

    def __post_init__(self) -> None:
        if self.wall_clock_tolerance < 0:
            raise ConfigurationError(
                "wall_clock_tolerance must be non-negative, got "
                f"{self.wall_clock_tolerance}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "rules": [rule.as_dict() for rule in self.rules],
            "wall_clock_tolerance": self.wall_clock_tolerance,
        }

    @classmethod
    def from_mapping(cls, raw: Mapping[str, Any]) -> "GateConfig":
        unknown = set(raw) - {"rules", "wall_clock_tolerance"}
        if unknown:
            raise ConfigurationError(
                f"unknown gate keys {sorted(unknown)}; expected "
                "'rules' and/or 'wall_clock_tolerance'"
            )
        rules = []
        for entry in raw.get("rules", ()):
            extra = set(entry) - {"pattern", "kind", "tolerance"}
            if extra or "pattern" not in entry:
                raise ConfigurationError(
                    f"bad gate rule {entry!r}: needs 'pattern' plus "
                    "optional 'kind'/'tolerance'"
                )
            rules.append(
                ToleranceRule(
                    pattern=str(entry["pattern"]),
                    kind=str(entry.get("kind", "exact")),
                    tolerance=float(entry.get("tolerance", 0.0)),
                )
            )
        return cls(
            rules=tuple(rules),
            wall_clock_tolerance=float(raw.get("wall_clock_tolerance", 25.0)),
        )


@dataclass(frozen=True)
class SweepSpec:
    """One sweep block: a family, its grid axes, its fixed settings.

    ``axes`` holds ``(name, values)`` pairs in :data:`AXIS_ORDER`;
    ``settings`` holds ``(name, value)`` pairs sorted by name.  Both are
    tuples so the spec stays hashable and pickles deterministically.
    """

    family: str
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    settings: tuple[tuple[str, Any], ...] = ()

    @property
    def axis_dict(self) -> dict[str, tuple[Any, ...]]:
        return dict(self.axes)

    @property
    def setting_dict(self) -> dict[str, Any]:
        return dict(self.settings)

    @property
    def cell_count(self) -> int:
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    def as_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "axes": {name: list(values) for name, values in self.axes},
            "settings": dict(self.settings),
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A fully-normalized campaign: named, seeded, gated sweeps."""

    name: str
    seed: int
    sweeps: tuple[SweepSpec, ...]
    gate: GateConfig = field(default_factory=GateConfig)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign needs a non-empty name")
        if not self.sweeps:
            raise ConfigurationError(
                f"campaign {self.name!r} declares no sweeps"
            )

    @property
    def cell_count(self) -> int:
        return sum(sweep.cell_count for sweep in self.sweeps)

    def as_dict(self) -> dict[str, Any]:
        """The canonical (key-order-independent) form of the spec."""
        return {
            "name": self.name,
            "seed": self.seed,
            "sweeps": [sweep.as_dict() for sweep in self.sweeps],
            "gate": self.gate.as_dict(),
        }

    def digest(self) -> str:
        """sha256 over the canonical JSON form of the spec."""
        return hashlib.sha256(canonical_json(self.as_dict()).encode()).hexdigest()


def canonical_json(value: Any) -> str:
    """Deterministic compact JSON: sorted keys, no whitespace.

    Every digest and every manifest/checkpoint line in the campaign
    layer goes through this one serializer, so byte-identity claims
    reduce to value-identity claims.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _known_names(family: str) -> set[str]:
    from repro.campaigns.families import family_axes

    return set(family_axes(family)) | set(COMMON_SETTINGS)


def _normalize_sweep(raw: Mapping[str, Any], index: int) -> SweepSpec:
    if "family" not in raw:
        raise ConfigurationError(f"sweep #{index} has no 'family'")
    family = str(raw["family"])
    known = _known_names(family)  # validates the family name too
    unknown = set(raw) - known - {"family"}
    if unknown:
        raise ConfigurationError(
            f"sweep #{index} ({family}): unknown keys {sorted(unknown)}; "
            f"this family accepts {sorted(known)}"
        )
    axes: list[tuple[str, tuple[Any, ...]]] = []
    settings: dict[str, Any] = {}
    for name in sorted(set(raw) - {"family"}):
        value = raw[name]
        if isinstance(value, (list, tuple)):
            if name not in AXIS_ORDER:
                raise ConfigurationError(
                    f"sweep #{index} ({family}): {name!r} is a scalar "
                    "setting, not a sweep axis — pass a single value"
                )
            if not value:
                raise ConfigurationError(
                    f"sweep #{index} ({family}): axis {name!r} has no values"
                )
            if len(set(map(str, value))) != len(value):
                raise ConfigurationError(
                    f"sweep #{index} ({family}): axis {name!r} repeats a "
                    "value — every grid cell must be unique"
                )
            axes.append((name, tuple(value)))
        else:
            settings[name] = value
    # axes in canonical order, never file order
    ordered = tuple(
        (name, values)
        for axis in AXIS_ORDER
        for name, values in axes
        if name == axis
    )
    return SweepSpec(
        family=family,
        axes=ordered,
        settings=tuple(sorted(settings.items())),
    )


def parse_campaign_spec(raw: Mapping[str, Any]) -> CampaignSpec:
    """Normalize a raw spec mapping (parsed TOML/JSON) into a spec."""
    unknown = set(raw) - {"name", "seed", "sweeps", "gate"}
    if unknown:
        raise ConfigurationError(
            f"unknown campaign keys {sorted(unknown)}; expected "
            "'name', 'seed', 'sweeps', 'gate'"
        )
    if "name" not in raw:
        raise ConfigurationError("campaign spec has no 'name'")
    sweeps = raw.get("sweeps", ())
    if not isinstance(sweeps, (list, tuple)):
        raise ConfigurationError("'sweeps' must be a list of sweep blocks")
    return CampaignSpec(
        name=str(raw["name"]),
        seed=int(raw.get("seed", 0)),
        sweeps=tuple(
            _normalize_sweep(entry, index) for index, entry in enumerate(sweeps)
        ),
        gate=GateConfig.from_mapping(raw.get("gate", {})),
    )


def load_campaign_spec(path: str | Path) -> CampaignSpec:
    """Load and normalize a ``.json`` or ``.toml`` campaign file."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no campaign spec at {path}")
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py<3.11 only
            raise ConfigurationError(
                f"{path} is TOML but this interpreter has no tomllib; "
                "use the JSON spec format instead"
            ) from exc
        raw = tomllib.loads(text)
    elif path.suffix == ".json":
        raw = json.loads(text)
    else:
        raise ConfigurationError(
            f"campaign specs are .json or .toml files, got {path.name!r}"
        )
    return parse_campaign_spec(raw)
