"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause while still being able to discriminate configuration
problems from analysis infeasibility or simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class CapacityError(ReproError):
    """A bounded hardware structure (buffer, table) was over-filled."""


class InfeasibleError(ReproError):
    """An analysis problem admits no solution (e.g. no schedulable interface)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (a bug or misuse)."""


class ProtocolError(ReproError):
    """A transaction violated the interconnect handshake protocol."""
