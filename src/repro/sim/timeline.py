"""Per-request timelines: where did a transaction spend its life?

Attaching a :class:`Timeline` to a :class:`BlueScaleInterconnect`
wraps every Scale Element's forward hook and records, per request, the
cycle it crossed each hop — injection, each SE, provider arrival,
service, completion.  ``format_timeline`` renders the journey as an
ASCII Gantt row, which is how you debug "why was request #4812 late".

The wrapper is transparent: hooks still forward exactly as before, so
a monitored simulation behaves identically to an unmonitored one
(asserted in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError
from repro.memory.request import MemoryRequest
from repro.topology import NodeId


@dataclass
class RequestTimeline:
    """Event log of one transaction."""

    rid: int
    client_id: int
    release: int
    #: (label, cycle) in occurrence order
    events: list[tuple[str, int]] = field(default_factory=list)

    def add(self, label: str, cycle: int) -> None:
        self.events.append((label, cycle))

    def span(self) -> tuple[int, int]:
        if not self.events:
            return (self.release, self.release)
        cycles = [cycle for _, cycle in self.events]
        return (min(self.release, *cycles), max(cycles))


class Timeline:
    """Records hop-level timelines for every request through a tree."""

    def __init__(
        self, interconnect: BlueScaleInterconnect, capacity: int = 100_000
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self.capacity = capacity
        self._records: dict[int, RequestTimeline] = {}
        self.dropped_records = 0
        self._wrap(interconnect)

    # -- wiring ----------------------------------------------------------------
    def _wrap(self, interconnect: BlueScaleInterconnect) -> None:
        for node, element in interconnect.elements.items():
            element.forward_to_provider = self._make_wrapper(
                node, element.forward_to_provider
            )

    def _make_wrapper(self, node: NodeId, inner):  # noqa: ANN001
        def wrapper(request: MemoryRequest, cycle: int) -> bool:
            accepted = inner(request, cycle) if inner is not None else False
            if accepted:
                self._record(request).add(f"SE{node}", cycle)
            return accepted

        return wrapper

    def _record(self, request: MemoryRequest) -> RequestTimeline:
        record = self._records.get(request.rid)
        if record is None:
            if len(self._records) >= self.capacity:
                self.dropped_records += 1
                # recycle a throwaway record (not stored)
                return RequestTimeline(
                    rid=request.rid,
                    client_id=request.client_id,
                    release=request.release_cycle,
                )
            record = RequestTimeline(
                rid=request.rid,
                client_id=request.client_id,
                release=request.release_cycle,
            )
            self._records[request.rid] = record
        return record

    # -- completion enrichment ----------------------------------------------
    def finalize(self, requests: list[MemoryRequest]) -> None:
        """Fold completion timestamps of finished requests into the log."""
        for request in requests:
            record = self._records.get(request.rid)
            if record is None:
                continue
            if request.service_start_cycle >= 0:
                record.add("service", request.service_start_cycle)
            if request.complete_cycle >= 0:
                record.add("complete", request.complete_cycle)

    # -- queries ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def of(self, rid: int) -> RequestTimeline:
        if rid not in self._records:
            raise ConfigurationError(f"no timeline recorded for request {rid}")
        return self._records[rid]

    def slowest(self, k: int = 5) -> list[RequestTimeline]:
        """The k requests with the longest recorded spans."""
        return sorted(
            self._records.values(),
            key=lambda r: r.span()[1] - r.span()[0],
            reverse=True,
        )[:k]


def format_timeline(record: RequestTimeline, width: int = 60) -> str:
    """Render one request's journey as an ASCII Gantt row."""
    start, end = record.span()
    span = max(end - start, 1)
    lines = [
        f"request #{record.rid} (client {record.client_id}), "
        f"released at {record.release}, span {span} cycles"
    ]
    previous = start
    for label, cycle in record.events:
        offset = round((previous - start) / span * (width - 1))
        length = max(1, round((cycle - previous) / span * (width - 1)))
        bar = " " * offset + "#" * length
        lines.append(f"  {bar.ljust(width)} {label} @ {cycle}")
        previous = cycle
    return "\n".join(lines)
