"""Statistics collection for simulation runs.

The paper evaluates interconnects on per-request latencies (Fig. 6:
blocking latency and deadline-miss ratio) and per-trial success
(Fig. 7: success ratio).  :class:`LatencyRecorder` accumulates the
per-request numbers; :class:`SummaryStatistics` condenses a sample into
the moments the figures report (mean, max, percentiles, variance).

:class:`CycleAccounting` is the engine-side profiler: it counts, per
registered tick component, how many cycles were actually executed, how
many the quiescence fast path leapt over, and how often the component
was the one vetoing a leap — making the fast path's behaviour (and any
component that keeps it from engaging) observable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class SummaryStatistics:
    """Five-number-style summary of a latency (or any scalar) sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_sample(cls, sample: Sequence[float]) -> "SummaryStatistics":
        if not sample:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(sample)
        n = len(ordered)
        mean = sum(ordered) / n
        var = sum((x - mean) ** 2 for x in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(var),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
        )


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class LatencyRecorder:
    """Accumulates per-request outcome metrics during one trial."""

    response_times: list[int] = field(default_factory=list)
    blocking_times: list[int] = field(default_factory=list)
    completed: int = 0
    missed: int = 0
    dropped: int = 0

    def record_completion(
        self, response_time: int, blocking_time: int, met_deadline: bool
    ) -> None:
        """Record one finished request."""
        self.response_times.append(response_time)
        self.blocking_times.append(blocking_time)
        self.completed += 1
        if not met_deadline:
            self.missed += 1

    def record_drop(self) -> None:
        """Record a request abandoned at a full ingress queue.

        A dropped request can never meet its deadline, so it also counts
        as a miss.
        """
        self.dropped += 1
        self.missed += 1

    @property
    def issued(self) -> int:
        """Requests that entered the system (completed or dropped)."""
        return self.completed + self.dropped

    @property
    def deadline_miss_ratio(self) -> float:
        """Fraction of issued requests that missed their deadline."""
        if self.issued == 0:
            return 0.0
        return self.missed / self.issued

    def response_summary(self) -> SummaryStatistics:
        return SummaryStatistics.from_sample(self.response_times)

    def blocking_summary(self) -> SummaryStatistics:
        return SummaryStatistics.from_sample(self.blocking_times)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's sample into this one (cross-trial)."""
        self.response_times.extend(other.response_times)
        self.blocking_times.extend(other.blocking_times)
        self.completed += other.completed
        self.missed += other.missed
        self.dropped += other.dropped


@dataclass
class ComponentCycleStats:
    """Cycle accounting for one registered tick component."""

    #: cycles on which the component's tick() actually ran
    executed: int = 0
    #: cycles the engine leapt over while this component was quiescent
    skipped: int = 0
    #: leap attempts this component vetoed by reporting non-quiescence
    vetoes: int = 0

    @property
    def skip_ratio(self) -> float:
        total = self.executed + self.skipped
        if total == 0:
            return 0.0
        return self.skipped / total


@dataclass
class CycleAccounting:
    """Per-component executed/skipped cycle profile of one engine run.

    Attach via ``Engine(accounting=CycleAccounting())``.  Every
    component's executed count equals the engine's executed cycles (all
    components tick on every executed cycle); the per-component value
    is kept anyway so the profile stays meaningful if components ever
    tick selectively, and ``vetoes`` shows *which* component kept the
    fast path from engaging.
    """

    components: dict[str, ComponentCycleStats] = field(default_factory=dict)

    def _stats(self, name: str) -> ComponentCycleStats:
        stats = self.components.get(name)
        if stats is None:
            stats = ComponentCycleStats()
            self.components[name] = stats
        return stats

    def record_executed(self, names: Sequence[str]) -> None:
        for name in names:
            self._stats(name).executed += 1

    def record_leap(self, names: Sequence[str], skipped: int) -> None:
        for name in names:
            self._stats(name).skipped += skipped

    def record_veto(self, name: str) -> None:
        self._stats(name).vetoes += 1

    @property
    def executed_cycles(self) -> int:
        """Executed cycles (max across components; 0 when empty)."""
        return max((s.executed for s in self.components.values()), default=0)

    @property
    def skipped_cycles(self) -> int:
        return max((s.skipped for s in self.components.values()), default=0)

    @property
    def skip_ratio(self) -> float:
        total = self.executed_cycles + self.skipped_cycles
        if total == 0:
            return 0.0
        return self.skipped_cycles / total

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-friendly view (used by the simulation benchmark)."""
        return {
            name: {
                "executed": stats.executed,
                "skipped": stats.skipped,
                "vetoes": stats.vetoes,
                "skip_ratio": stats.skip_ratio,
            }
            for name, stats in self.components.items()
        }


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean, 0.0 for an empty iterable."""
    items = list(values)
    if not items:
        return 0.0
    return sum(items) / len(items)
