"""A small deterministic discrete-event simulation kernel.

The kernel supports two styles of components:

* **Event processes** — callbacks scheduled at absolute cycles via
  :meth:`Engine.schedule` / :meth:`Engine.schedule_in`.  Used for sparse
  activity such as periodic job releases.
* **Tick components** — objects with a ``tick(cycle)`` method invoked on
  every simulated cycle, in registration order.  Used for pipelined
  hardware (interconnect stages, the memory controller) whose behaviour
  is easiest to express cycle-by-cycle.

Determinism: events scheduled for the same cycle fire in insertion
order (a monotonically increasing sequence number breaks ties), and
tick components run in registration order, so a simulation is a pure
function of its inputs and seeds.

Quiescence fast path
--------------------

Ticking every component on every cycle is exact but wasteful when the
whole system is idle (a low-utilization trial spends most of its
cycles with nothing in flight).  Tick components may therefore opt in
to the *quiescence contract*:

* ``is_quiescent() -> bool`` — True when, absent external input,
  ticking the component is observably a no-op (or reconcilable, see
  below) for every cycle strictly before its next declared activity.
* ``next_activity_cycle(cycle) -> int | None`` — the earliest absolute
  cycle at which the component must be ticked again (None = never on
  its own accord).  ``cycle`` is the next cycle the engine would
  execute.
* ``on_cycles_skipped(start, count)`` — optional reconciliation hook:
  after the engine leaps over ``count`` cycles starting at ``start``,
  the component updates any cycle-counted internal state (e.g. P/B
  replenishment counters) to exactly what ``count`` idle ticks would
  have produced.  Components without the hook must guarantee idle
  ticks are pure no-ops.

When **every** registered component is quiescent, :meth:`Engine.run`
leaps the clock directly to the earliest of: the next scheduled event,
the components' next declared activities, and the run horizon.  A
single component lacking ``is_quiescent`` disables the fast path for
the whole run, so legacy components stay bit-for-bit correct.

Determinism is preserved because a leap only spans cycles on which (a)
no event fires, (b) every tick would be a no-op or is reconciled
analytically, and (c) no component declared activity — i.e. cycles
whose execution the slow path could not distinguish from skipping.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol

from repro.errors import ConfigurationError, SimulationError
from repro.sim.clock import Clock
from repro.sim.stats import CycleAccounting

EventCallback = Callable[[int], None]


class TickComponent(Protocol):
    """Anything advanced once per cycle by the engine."""

    def tick(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...


class QuiescentComponent(TickComponent, Protocol):
    """A tick component that participates in the quiescence fast path."""

    def is_quiescent(self) -> bool:  # pragma: no cover - protocol
        ...

    def next_activity_cycle(
        self, cycle: int
    ) -> int | None:  # pragma: no cover - protocol
        ...


class Engine:
    """Deterministic cycle/event hybrid simulation engine."""

    def __init__(
        self,
        clock: Clock | None = None,
        fast_path: bool = True,
        accounting: CycleAccounting | None = None,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.fast_path = fast_path
        self.accounting = accounting
        self._event_queue: list[tuple[int, int, EventCallback]] = []
        self._sequence = 0
        self._tick_components: list[TickComponent] = []
        self._component_names: list[str] = []
        # Reconciliation hooks, collected at registration so a leap
        # does not re-discover them with getattr each time.
        self._skip_hooks: list[Callable[[int, int], None]] = []
        self._stopped = False
        #: cycles actually executed (events fired + components ticked)
        self.cycles_executed = 0
        #: cycles the fast path leapt over
        self.cycles_skipped = 0
        #: number of quiescence leaps taken
        self.leaps = 0
        # adaptive check order: index of the component that most
        # recently vetoed a leap (checked first next time)
        self._last_veto: int | None = None

    # ------------------------------------------------------------------
    # registration / scheduling
    # ------------------------------------------------------------------
    def register(self, component: TickComponent, name: str | None = None) -> None:
        """Register a component ticked every cycle, in registration order."""
        if not hasattr(component, "tick"):
            raise ConfigurationError(
                f"{component!r} has no tick() method; cannot register"
            )
        self._tick_components.append(component)
        self._component_names.append(
            name if name is not None else type(component).__name__
        )
        hook = getattr(component, "on_cycles_skipped", None)
        if hook is not None:
            self._skip_hooks.append(hook)

    def schedule(self, cycle: int, callback: EventCallback) -> None:
        """Schedule ``callback(cycle)`` at an absolute cycle."""
        if cycle < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at cycle {cycle}, now is {self.clock.now}"
            )
        heapq.heappush(self._event_queue, (cycle, self._sequence, callback))
        self._sequence += 1

    def schedule_in(self, delay: int, callback: EventCallback) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self.clock.now + delay, callback)

    def stop(self) -> None:
        """Request the run loop to halt at the end of the current cycle."""
        self._stopped = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _fire_due_events(self, cycle: int) -> None:
        queue = self._event_queue
        while queue and queue[0][0] <= cycle:
            _, _, callback = heapq.heappop(queue)
            callback(cycle)

    def _leap_target(self, now: int, until_cycle: int) -> int:
        """Earliest cycle that must still be executed, given quiescence."""
        target = until_cycle
        if self._event_queue:
            head = self._event_queue[0][0]
            if head < target:
                target = head
        for component in self._tick_components:
            activity = component.next_activity_cycle(now)
            if activity is not None and activity < target:
                target = activity
        return target

    def _try_leap(self, until_cycle: int) -> None:
        """Skip ahead when every component is quiescent."""
        components = self._tick_components
        last_veto = self._last_veto
        if last_veto is not None and not components[last_veto].is_quiescent():
            if self.accounting is not None:
                self.accounting.record_veto(self._component_names[last_veto])
            return
        for index, component in enumerate(components):
            if index == last_veto:
                continue
            if not component.is_quiescent():
                self._last_veto = index
                if self.accounting is not None:
                    self.accounting.record_veto(self._component_names[index])
                return
        now = self.clock.now
        target = self._leap_target(now, until_cycle)
        if target <= now:
            return
        skipped = target - now
        for hook in self._skip_hooks:
            hook(now, skipped)
        self.clock.now = target
        self.cycles_skipped += skipped
        self.leaps += 1
        if self.accounting is not None:
            self.accounting.record_leap(self._component_names, skipped)

    def run(self, until_cycle: int) -> int:
        """Run until ``until_cycle`` (exclusive) or :meth:`stop` is called.

        Returns the cycle at which the run stopped.
        """
        if until_cycle < self.clock.now:
            raise SimulationError(
                f"until_cycle {until_cycle} precedes current cycle {self.clock.now}"
            )
        self._stopped = False
        components = self._tick_components
        # The fast path needs every component to speak the quiescence
        # contract; one legacy component pins the whole run to the
        # cycle-by-cycle slow path.
        fast = (
            self.fast_path
            and bool(components)
            and all(hasattr(c, "is_quiescent") for c in components)
        )
        accounting = self.accounting
        while self.clock.now < until_cycle and not self._stopped:
            cycle = self.clock.now
            self._fire_due_events(cycle)
            for component in components:
                component.tick(cycle)
            self.clock.tick()
            self.cycles_executed += 1
            if accounting is not None:
                accounting.record_executed(self._component_names)
            if fast and not self._stopped and self.clock.now < until_cycle:
                self._try_leap(until_cycle)
        return self.clock.now

    def run_events_only(self, until_cycle: int) -> int:
        """Event-driven run that skips idle cycles (no tick components).

        Useful for pure analytical simulations (e.g. NoC message-level
        models) where per-cycle ticking would waste time.
        """
        if self._tick_components:
            raise SimulationError(
                "run_events_only() is only valid without tick components"
            )
        self._stopped = False
        while self._event_queue and not self._stopped:
            cycle = self._event_queue[0][0]
            if cycle >= until_cycle:
                break
            self.clock.now = cycle
            self._fire_due_events(cycle)
        self.clock.now = max(self.clock.now, until_cycle)
        return self.clock.now

    @property
    def pending_events(self) -> int:
        """Number of events not yet fired."""
        return len(self._event_queue)

    @property
    def skip_ratio(self) -> float:
        """Fraction of simulated cycles the fast path leapt over."""
        total = self.cycles_executed + self.cycles_skipped
        if total == 0:
            return 0.0
        return self.cycles_skipped / total
