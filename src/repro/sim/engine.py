"""A small deterministic discrete-event simulation kernel.

The kernel supports two styles of components:

* **Event processes** — callbacks scheduled at absolute cycles via
  :meth:`Engine.schedule` / :meth:`Engine.schedule_in`.  Used for sparse
  activity such as periodic job releases.
* **Tick components** — objects with a ``tick(cycle)`` method invoked on
  every simulated cycle, in registration order.  Used for pipelined
  hardware (interconnect stages, the memory controller) whose behaviour
  is easiest to express cycle-by-cycle.

Determinism: events scheduled for the same cycle fire in insertion
order (a monotonically increasing sequence number breaks ties), and
tick components run in registration order, so a simulation is a pure
function of its inputs and seeds.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol

from repro.errors import ConfigurationError, SimulationError
from repro.sim.clock import Clock

EventCallback = Callable[[int], None]


class TickComponent(Protocol):
    """Anything advanced once per cycle by the engine."""

    def tick(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...


class Engine:
    """Deterministic cycle/event hybrid simulation engine."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._event_queue: list[tuple[int, int, EventCallback]] = []
        self._sequence = 0
        self._tick_components: list[TickComponent] = []
        self._stopped = False

    # ------------------------------------------------------------------
    # registration / scheduling
    # ------------------------------------------------------------------
    def register(self, component: TickComponent) -> None:
        """Register a component ticked every cycle, in registration order."""
        if not hasattr(component, "tick"):
            raise ConfigurationError(
                f"{component!r} has no tick() method; cannot register"
            )
        self._tick_components.append(component)

    def schedule(self, cycle: int, callback: EventCallback) -> None:
        """Schedule ``callback(cycle)`` at an absolute cycle."""
        if cycle < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at cycle {cycle}, now is {self.clock.now}"
            )
        heapq.heappush(self._event_queue, (cycle, self._sequence, callback))
        self._sequence += 1

    def schedule_in(self, delay: int, callback: EventCallback) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self.clock.now + delay, callback)

    def stop(self) -> None:
        """Request the run loop to halt at the end of the current cycle."""
        self._stopped = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _fire_due_events(self, cycle: int) -> None:
        queue = self._event_queue
        while queue and queue[0][0] <= cycle:
            _, _, callback = heapq.heappop(queue)
            callback(cycle)

    def run(self, until_cycle: int) -> int:
        """Run until ``until_cycle`` (exclusive) or :meth:`stop` is called.

        Returns the cycle at which the run stopped.
        """
        if until_cycle < self.clock.now:
            raise SimulationError(
                f"until_cycle {until_cycle} precedes current cycle {self.clock.now}"
            )
        self._stopped = False
        components = self._tick_components
        while self.clock.now < until_cycle and not self._stopped:
            cycle = self.clock.now
            self._fire_due_events(cycle)
            for component in components:
                component.tick(cycle)
            self.clock.tick()
        return self.clock.now

    def run_events_only(self, until_cycle: int) -> int:
        """Event-driven run that skips idle cycles (no tick components).

        Useful for pure analytical simulations (e.g. NoC message-level
        models) where per-cycle ticking would waste time.
        """
        if self._tick_components:
            raise SimulationError(
                "run_events_only() is only valid without tick components"
            )
        self._stopped = False
        while self._event_queue and not self._stopped:
            cycle = self._event_queue[0][0]
            if cycle >= until_cycle:
                break
            self.clock.now = cycle
            self._fire_due_events(cycle)
        self.clock.now = max(self.clock.now, until_cycle)
        return self.clock.now

    @property
    def pending_events(self) -> int:
        """Number of events not yet fired."""
        return len(self._event_queue)
