"""Transaction trace capture and replay.

Real evaluations often need to (a) archive exactly what traffic a trial
produced and (b) re-run the *same* traffic against a different
interconnect for a paired comparison.  This module provides both:

* :class:`TraceRecord` / :func:`save_trace` / :func:`load_trace` — a
  JSON-lines on-disk format holding each transaction's release, client,
  deadline, kind, address and originating task;
* :class:`TraceReplayClient` — a drop-in client for
  :class:`repro.soc.SoCSimulation` that re-issues a recorded trace
  verbatim (same cycles, same deadlines, same addresses).

Capture happens at the client: :func:`trace_from_clients` extracts the
released transactions of a finished trial from the traffic generators'
job records, in a deterministic order.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import ConfigurationError
from repro.memory.request import MemoryRequest, RequestKind


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One recorded transaction (ordering: release, client, address)."""

    release_cycle: int
    client_id: int
    address: int
    absolute_deadline: int
    kind: str = "read"
    task_name: str = ""

    def __post_init__(self) -> None:
        if self.absolute_deadline <= self.release_cycle:
            raise ConfigurationError(
                f"deadline {self.absolute_deadline} not after release "
                f"{self.release_cycle}"
            )
        if self.kind not in ("read", "write"):
            raise ConfigurationError(f"unknown kind {self.kind!r}")

    def to_request(self) -> MemoryRequest:
        return MemoryRequest(
            client_id=self.client_id,
            release_cycle=self.release_cycle,
            absolute_deadline=self.absolute_deadline,
            kind=RequestKind(self.kind),
            address=self.address,
            task_name=self.task_name,
        )


def save_trace(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records as JSON lines; returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(asdict(record)) + "\n")
            count += 1
    return count


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Read a JSON-lines trace back, preserving order."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(TraceRecord(**json.loads(line)))
            except (json.JSONDecodeError, TypeError) as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: malformed trace line ({exc})"
                ) from exc
    return records


class TraceReplayClient:
    """Replays a recorded per-client trace through the SoC simulator.

    Satisfies the same client contract as
    :class:`repro.clients.traffic_generator.TrafficGenerator`: one
    injection attempt per cycle, EDF order among due transactions,
    deadline bookkeeping per transaction.
    """

    def __init__(
        self,
        client_id: int,
        records: list[TraceRecord],
        pending_capacity: int = 4096,
    ) -> None:
        self.client_id = client_id
        foreign = [r for r in records if r.client_id != client_id]
        if foreign:
            raise ConfigurationError(
                f"trace contains records for client {foreign[0].client_id}, "
                f"expected only {client_id}"
            )
        self.pending_capacity = pending_capacity
        self._future = sorted(records)
        self._future_index = 0
        self._pending: list[tuple[tuple[int, int], MemoryRequest]] = []
        self.released_requests = 0
        self.dropped_requests = 0
        self.completed = 0
        self.missed = 0

    # -- client contract ---------------------------------------------------
    def tick(
        self,
        cycle: int,
        inject,  # noqa: ANN001 - hook
        max_injections: int = 1,
        probe_limit: int | None = None,
    ) -> None:
        """Release due records and offer transactions in EDF order.

        Same multi-injection contract as
        :class:`~repro.clients.traffic_generator.TrafficGenerator`, so
        replays drive multi-channel systems too.
        """
        while (
            self._future_index < len(self._future)
            and self._future[self._future_index].release_cycle <= cycle
        ):
            record = self._future[self._future_index]
            self._future_index += 1
            self.released_requests += 1
            if len(self._pending) >= self.pending_capacity:
                self.dropped_requests += 1
                self.missed += 1
                continue
            request = record.to_request()
            heapq.heappush(self._pending, (request.priority_key, request))
        if not self._pending:
            return
        probes = probe_limit if probe_limit is not None else max_injections
        injected = 0
        skipped = []
        while self._pending and injected < max_injections and probes > 0:
            entry = heapq.heappop(self._pending)
            if inject(entry[1], cycle):
                injected += 1
            else:
                skipped.append(entry)
                probes -= 1
        for entry in skipped:
            heapq.heappush(self._pending, entry)

    def on_response(self, request: MemoryRequest) -> None:
        self.completed += 1
        if not request.met_deadline:
            self.missed += 1

    # -- outcome -------------------------------------------------------------
    def monitored_jobs_judged(self, horizon: int) -> int:
        return self.completed

    def monitored_job_misses(self, horizon: int) -> int:
        return self.missed

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def jobs(self):  # parity with TrafficGenerator introspection
        return []


def trace_from_clients(clients) -> list[TraceRecord]:  # noqa: ANN001
    """Extract every *issued* transaction of a finished trial.

    Reconstructs the records from each traffic generator's released
    jobs; the result replays identically (same releases, deadlines,
    addresses) on any interconnect.
    """
    records: list[TraceRecord] = []
    for client in clients:
        task_index = {task.name: i for i, task in enumerate(client.taskset)}
        for job in client.jobs:
            base = client.address_base + (
                task_index.get(job.task_name, 0) << 16
            )
            wcet = next(
                (t.wcet for t in client.taskset if t.name == job.task_name), 0
            )
            # dropped transactions never entered the fabric; replay the rest
            for burst_index in range(wcet - job.dropped):
                records.append(
                    TraceRecord(
                        release_cycle=job.release,
                        client_id=client.client_id,
                        address=base + burst_index * client.BURST_STRIDE,
                        absolute_deadline=job.deadline,
                        task_name=job.task_name,
                    )
                )
    records.sort()
    return records


def split_by_client(records: list[TraceRecord]) -> dict[int, list[TraceRecord]]:
    """Partition a system trace into per-client traces."""
    result: dict[int, list[TraceRecord]] = {}
    for record in records:
        result.setdefault(record.client_id, []).append(record)
    return result
