"""Runtime verification: invariant monitors for BlueScale simulations.

Simulation bugs in scheduling hardware are notoriously quiet — a
budget leak or a buffer overrun shows up as slightly-wrong latencies,
not crashes.  These monitors watch a live :class:`ScaleElement` (or a
whole :class:`BlueScaleInterconnect`) every cycle and raise
:class:`~repro.errors.SimulationError` the moment a hardware invariant
breaks:

* **StructuralMonitor** — buffer occupancy within capacity, budgets
  within [0, Θ], period counters within [0, Π], at most one forward
  per SE per cycle.
* **SbfComplianceMonitor** — the periodic-resource *contract*: during
  any interval in which a port stays backlogged (and the provider
  accepts), the service it received must be at least ``sbf`` of the
  interval length.  This is the property the whole analysis stands on,
  checked against the actual counters.

Attach with :func:`monitor_interconnect` and call ``check(cycle)``
once per cycle (after ``tick_request_path``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.prm import sbf
from repro.core.interconnect import BlueScaleInterconnect
from repro.core.scale_element import ScaleElement
from repro.errors import SimulationError


class StructuralMonitor:
    """Checks per-cycle structural invariants of one Scale Element."""

    def __init__(self, element: ScaleElement) -> None:
        self.element = element
        self._last_forwarded = element.forwarded
        self.checks = 0

    def check(self, cycle: int) -> None:
        element = self.element
        for port, buffer in enumerate(element.buffers):
            if len(buffer) > buffer.capacity:
                raise SimulationError(
                    f"SE{element.node} port {port}: occupancy {len(buffer)} "
                    f"exceeds capacity {buffer.capacity} at cycle {cycle}"
                )
        for port, server in enumerate(element.scheduler.servers):
            budget = server.counters.remaining_budget
            if not 0 <= budget <= max(server.interface.budget, 0):
                raise SimulationError(
                    f"SE{element.node} port {port}: budget {budget} outside "
                    f"[0, {server.interface.budget}] at cycle {cycle}"
                )
            period_left = server.counters.cycles_to_replenish
            if not 0 <= period_left <= max(server.interface.period, 1):
                raise SimulationError(
                    f"SE{element.node} port {port}: period counter "
                    f"{period_left} out of range at cycle {cycle}"
                )
        forwarded = element.forwarded
        if forwarded - self._last_forwarded > 1:
            raise SimulationError(
                f"SE{element.node}: {forwarded - self._last_forwarded} "
                f"forwards in one cycle at {cycle}"
            )
        self._last_forwarded = forwarded
        self.checks += 1


@dataclass
class _PortServiceState:
    """Tracking for one port's backlogged-interval service."""

    backlog_start: int | None = None
    service_in_interval: int = 0
    stall_in_interval: int = 0
    last_forward_count: int = 0


class SbfComplianceMonitor:
    """Verifies a port's received service against its sbf contract.

    For every maximal interval during which the port stays backlogged
    (non-empty buffer) and the SE is never output-stalled (downstream
    accepted every attempted forward), the number of requests the port
    forwarded must be at least ``sbf(interval_length, interface)``.
    Output stalls void the interval: the contract presumes the provider
    is available, so a backpressured SE cannot be held to it.
    """

    def __init__(self, element: ScaleElement) -> None:
        self.element = element
        self._states = [_PortServiceState() for _ in element.buffers]
        self._port_forwards = [0] * len(element.buffers)
        self._last_stalls = element.stalled_cycles
        self._last_total_forwarded = element.forwarded
        self._port_occupancy = [len(b) for b in element.buffers]
        self.intervals_checked = 0

    def _port_forward_delta(self) -> list[int]:
        """Infer which port forwarded this cycle from buffer movement.

        A port forwarded iff its occupancy dropped without a fetch from
        ingress... occupancy alone is ambiguous (accept + forward in the
        same cycle cancels out), so we track via the buffers'
        total_loaded counters instead.
        """
        deltas = []
        for port, buffer in enumerate(self.element.buffers):
            loaded = buffer.total_loaded
            occupancy = len(buffer)
            previous_occupancy = self._port_occupancy[port]
            # forwarded = previous + newly_loaded - current
            newly_loaded = loaded - self._port_forwards[port]
            del newly_loaded  # tracked differently below
            deltas.append((previous_occupancy, occupancy, loaded))
        return deltas

    def check(self, cycle: int) -> None:
        element = self.element
        stalled_now = element.stalled_cycles > self._last_stalls
        self._last_stalls = element.stalled_cycles
        for port, buffer in enumerate(element.buffers):
            state = self._states[port]
            loaded_total = buffer.total_loaded
            occupancy = len(buffer)
            forwarded_total = loaded_total - occupancy
            forwarded_this_cycle = forwarded_total - self._port_forwards[port]
            self._port_forwards[port] = forwarded_total
            backlogged = occupancy > 0 or forwarded_this_cycle > 0
            interface = element.scheduler.servers[port].interface
            if backlogged and interface.budget > 0:
                if state.backlog_start is None:
                    state.backlog_start = cycle
                    state.service_in_interval = 0
                    state.stall_in_interval = 0
                state.service_in_interval += forwarded_this_cycle
                if stalled_now:
                    state.stall_in_interval += 1
            else:
                self._close_interval(port, state, cycle, interface)

    def _close_interval(self, port, state, cycle, interface):  # noqa: ANN001
        if state.backlog_start is None:
            return
        length = cycle - state.backlog_start
        if length > 0 and state.stall_in_interval == 0:
            guaranteed = sbf(length, interface)
            if state.service_in_interval < guaranteed:
                raise SimulationError(
                    f"SE{self.element.node} port {port}: received "
                    f"{state.service_in_interval} < sbf({length}) = "
                    f"{guaranteed} over backlogged interval ending at "
                    f"{cycle}"
                )
            self.intervals_checked += 1
        state.backlog_start = None
        state.service_in_interval = 0
        state.stall_in_interval = 0

    def finalize(self, cycle: int) -> None:
        """Close any open intervals at the end of a run."""
        for port, state in enumerate(self._states):
            interface = self.element.scheduler.servers[port].interface
            self._close_interval(port, state, cycle, interface)


class InterconnectMonitor:
    """Bundles monitors over every SE of a BlueScale interconnect."""

    def __init__(
        self,
        interconnect: BlueScaleInterconnect,
        check_sbf: bool = True,
    ) -> None:
        self.structural = [
            StructuralMonitor(element)
            for element in interconnect.elements.values()
        ]
        self.sbf_monitors = (
            [
                SbfComplianceMonitor(element)
                for element in interconnect.elements.values()
            ]
            if check_sbf
            else []
        )

    def check(self, cycle: int) -> None:
        for monitor in self.structural:
            monitor.check(cycle)
        for monitor in self.sbf_monitors:
            monitor.check(cycle)

    def finalize(self, cycle: int) -> None:
        for monitor in self.sbf_monitors:
            monitor.finalize(cycle)

    @property
    def intervals_checked(self) -> int:
        return sum(m.intervals_checked for m in self.sbf_monitors)


def monitor_interconnect(
    interconnect: BlueScaleInterconnect, check_sbf: bool = True
) -> InterconnectMonitor:
    """Attach invariant monitors to a BlueScale interconnect."""
    return InterconnectMonitor(interconnect, check_sbf=check_sbf)
