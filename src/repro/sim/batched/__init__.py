"""Batched structure-of-arrays simulator backend.

Advances N structurally-identical trials in lock-step over numpy
arrays; provably bit-identical to the scalar engine (see
``tests/sim/test_batched_equivalence.py`` and the property wall in
``tests/sim/test_batched_properties.py``).  Entry point:
:func:`run_many`; the eligibility envelope is documented in
:mod:`repro.sim.batched.extract`.
"""

from repro.sim.batched.api import run_many
from repro.sim.batched.extract import Ineligible, batched_supported

__all__ = ["run_many", "Ineligible", "batched_supported"]
