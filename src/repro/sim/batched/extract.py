"""Eligibility checks + per-trial plan extraction for the SoA backend.

The batched backend does not reinterpret arbitrary simulations; it
recognizes exactly the configurations the experiment campaigns build
(EDF traffic generators / processor clients / the accelerator client
over one of the six interconnect designs with a fresh FCFS fixed-latency
memory controller) and compiles each into a :class:`TrialPlan`:

* the full request-release schedule, replayed *non-destructively* from
  each client's release heap (so falling back to the scalar engine
  afterwards is always still possible),
* request ids assigned exactly as the scalar engine would — rids are
  handed out in client-list order within a cycle, in heap-pop order
  within a client, and *before* the pending-capacity check (drops do
  not perturb the numbering),
* encoded priority keys ``deadline * 2**24 + rid`` whose int64 ordering
  matches the scalar tuple ``(absolute_deadline, rid)`` — guarded by
  the ``deadline < 2**24`` / ``rid < 2**24`` eligibility bound.

``ROGUE_BURST`` fault plans are part of the envelope: a rogue burst is
just a deterministic batch of extra releases, so each firing compiles
into a pseudo-task job ordered exactly where the scalar
:class:`~repro.faults.injectors.FaultOrchestrator` would release it
(the faults stage ticks *before* the clients within a cycle, and
same-cycle firings pop from the action heap in event order).  Every
other :class:`~repro.faults.plan.FaultKind` perturbs arbitration or
injection attempts and stays ineligible.

Anything outside the envelope raises :class:`Ineligible`; callers
(:func:`repro.sim.batched.run_many`) respond by running that trial on
the scalar engine, which is always bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clients.accelerator import AcceleratorClient
from repro.clients.processor import ProcessorClient
from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.faults.plan import FaultKind
from repro.interconnects.axi_icrt import AxiIcRtInterconnect
from repro.interconnects.bluetree import (
    BlueTreeInterconnect,
    BlueTreeSmoothInterconnect,
)
from repro.interconnects.gsmtree import GsmTreeInterconnect
from repro.memory.controller import ArbitrationPolicy, MemoryController
from repro.memory.dram import FixedLatencyDevice

#: bits reserved for the request id in the encoded priority key
SHIFT = 24
KEY_SCALE = 1 << SHIFT
RID_MASK = KEY_SCALE - 1
#: larger than any encodable key; used as the "empty" sentinel
BIG = np.int64(1) << np.int64(62)

#: client types the batched kernels model (exact types, not subclasses
#: we have never seen — a subclass may override tick()/on_response())
_CLIENT_TYPES = (TrafficGenerator, ProcessorClient, AcceleratorClient)

_MUX_TYPES = (
    BlueTreeInterconnect,
    BlueTreeSmoothInterconnect,
    GsmTreeInterconnect,
)


class Ineligible(Exception):
    """This simulation cannot run on the batched backend (fall back)."""


def _require(condition: bool, reason: str) -> None:
    if not condition:
        raise Ineligible(reason)


def _check_controller(sim) -> None:
    mc = sim.controller
    _require(type(mc) is MemoryController, "non-default memory controller")
    _require(mc.policy is ArbitrationPolicy.FCFS, "non-FCFS controller policy")
    _require(
        not mc.refresh_interval and mc._refresh_remaining == 0,
        "refresh modelling enabled",
    )
    _require(
        not mc._queue and mc._in_service is None, "controller not fresh"
    )
    _require(
        type(mc.device) is FixedLatencyDevice, "non-fixed-latency device"
    )
    _require(mc.device.cycles_per_access >= 1, "bad device latency")


def _check_clients(sim) -> None:
    for client in sim.clients:
        _require(type(client) in _CLIENT_TYPES, "unknown client type")
        _require(client.queue_policy == "edf", "non-EDF client queue")
        _require(client.criticality is None, "criticality-aware client")
        _require(
            not client._pending
            and not client.jobs
            and not client._job_of_request
            and client.released_requests == 0
            and client.dropped_requests == 0,
            "client not fresh",
        )


def _check_interconnect(sim) -> None:
    ic = sim.interconnect
    _require(ic.controller is sim.controller, "controller not attached")
    _require(not ic._responses, "responses in flight")
    if type(ic) in _MUX_TYPES:
        _require(ic._occupancy == 0, "interconnect not fresh")
        _require(
            all(
                not fifo
                for node in ic.nodes.values()
                for fifo in node.fifos
            ),
            "interconnect not fresh",
        )
        if type(ic) is GsmTreeInterconnect:
            _require(
                all(c == ic.CREDIT_CAP for c in ic._credits)
                and ic._last_credit_cycle == -1,
                "GSM credits not fresh",
            )
    elif type(ic) is AxiIcRtInterconnect:
        _require(
            ic._occupancy == 0
            and not ic._pipeline
            and all(not fifo for fifo in ic._fifos),
            "interconnect not fresh",
        )
        if ic.window is not None:
            _require(
                ic._next_refill == 0 and list(ic._tokens) == list(ic._budgets),
                "AXI regulation not fresh",
            )
    elif type(ic) is BlueScaleInterconnect:
        _require(ic._occupancy == 0, "interconnect not fresh")
        for element in ic.elements.values():
            _require(
                all(buffer.empty for buffer in element.buffers),
                "interconnect not fresh",
            )
            for server in element.scheduler.servers:
                period = server.counters.period
                budget = server.counters.budget
                _require(
                    server.counters.p_counter.value == period
                    and server.counters.b_counter.value == budget
                    and server.deadline == period,
                    "scale-element servers not fresh",
                )
    else:
        raise Ineligible("unknown interconnect type")


def check_supported(sim) -> None:
    """Raise :class:`Ineligible` unless ``sim`` fits the SoA envelope."""
    _require(sim.tracer is None, "observability tracing enabled")
    _require(getattr(sim, "accounting", None) is None, "cycle accounting on")
    # Workload churn rewrites the release schedule mid-run (joins,
    # leaves, retasks) and may reprogram SE budgets through its
    # admission gate — none of which the static SoA request schedule
    # can express, so scenario-bearing trials take the scalar engine.
    _require(getattr(sim, "scenario", None) is None, "scenario plan attached")
    if sim.faults is not None:
        # Rogue bursts are pure extra releases and compile into the
        # plan; every other kind perturbs arbitration/injection and
        # falls back to the scalar orchestrator.
        _require(
            all(
                event.kind is FaultKind.ROGUE_BURST
                for event in sim.faults.plan.events
            ),
            "fault plan with non-rogue events",
        )
        _require(
            sim.faults.events_applied == 0
            and sim.faults.events_ignored == 0
            and sim.faults.rogue_requests == 0
            and sim.faults.requests_held == 0,
            "fault orchestrator not fresh",
        )
    _check_controller(sim)
    _check_clients(sim)
    _check_interconnect(sim)
    # constant response latency across clients (holds for all six
    # designs: tree depth is uniform, AXI uses the pipeline latency)
    latencies = {
        sim.interconnect.response_latency(client.client_id)
        for client in sim.clients
    }
    _require(len(latencies) == 1, "non-uniform response latency")


def batched_supported(sim) -> bool:
    """True when this simulation would run on the SoA kernels (rather
    than transparently falling back to the scalar engine)."""
    try:
        check_supported(sim)
        signature_of(sim)
    except Ineligible:
        return False
    return True


def signature_of(sim):
    """Structural grouping key: trials with equal signatures advance in
    lock-step through one kernel instance (per-trial values such as
    budgets, frames, and server parameters become array axes)."""
    check_supported(sim)
    ic = sim.interconnect
    if type(ic) in (BlueTreeInterconnect, BlueTreeSmoothInterconnect):
        design = (
            "mux",
            type(ic).__name__,
            ic.n_clients,
            ic.fifo_capacity,
            getattr(ic, "alpha", 0),
        )
    elif type(ic) is GsmTreeInterconnect:
        design = (
            "gsm",
            ic.n_clients,
            ic.fifo_capacity,
            ic.slot_cycles,
            len(ic.frame),
        )
    elif type(ic) is AxiIcRtInterconnect:
        design = (
            "axi",
            ic.n_clients,
            ic.fifo_capacity,
            ic.pipeline_latency,
            ic.arbitration_interval,
            ic.window,
        )
    else:  # BlueScaleInterconnect — _check_interconnect rejected others
        design = (
            "bluescale",
            ic.n_clients,
            ic.topology.fanout,
            ic.elements[(0, 0)].buffers[0].capacity,
        )
    clients = tuple(
        (
            type(client).__name__,
            client.client_id,
            getattr(client, "_inject_interval", 1),
            client.pending_capacity,
        )
        for client in sim.clients
    )
    mc = sim.controller
    return (
        design,
        clients,
        (mc.device.cycles_per_access, mc.queue_capacity),
        sim.interconnect.response_latency(sim.clients[0].client_id),
    )


@dataclass
class TrialPlan:
    """Everything one trial contributes to the batch: its horizon and
    the fully-resolved release schedule (requests, jobs, drop-free rid
    numbering, per-cycle release buckets).

    Rogue-burst firings appear as jobs of appended *pseudo-tasks*
    (``job_real`` False, one pseudo-task per compiled fault event):
    their releases, capacity drops and completions flow through exactly
    the same arrays as declared work, and the finalizer uses
    ``job_real`` / ``rogue_fired`` / ``rogue_ignored`` to rebuild the
    orchestrator's ledger and keep rogue traffic out of the per-client
    job records."""

    horizon: int
    drain: int
    warmup: int
    n_requests: int
    n_jobs: int
    # per-request tables, indexed by rid
    req_key: np.ndarray  # int64: deadline * KEY_SCALE + rid
    req_release: np.ndarray  # int64
    req_deadline: np.ndarray  # int64
    req_client_id: np.ndarray  # int32: actual port id (trace records)
    req_job: np.ndarray  # int32: global job index
    # per-job tables, indexed by job — jobs are already sorted in
    # scalar release order (cycle, faults stage before clients, client
    # position, heap-pop order)
    job_client_pos: np.ndarray  # int32: position in sim.clients
    job_release: np.ndarray  # int64
    job_deadline: np.ndarray  # int64
    job_monitored: np.ndarray  # bool
    job_wcet: np.ndarray  # int32
    #: request table offsets per job: job j owns rids starts[j]:starts[j+1]
    starts: np.ndarray  # int64, length n_jobs + 1
    #: req_key as a plain Python list (fast slicing for heap pushes)
    key_list: list
    #: task table: names per global task index (pseudo-tasks included)
    task_names: tuple = ()
    #: per-job global task index into ``task_names``
    job_task: np.ndarray = None  # int32
    #: per-job flag: declared workload (True) vs rogue pseudo-job
    job_real: np.ndarray = None  # bool
    #: rogue firings compiled in / ignored (missing target client)
    rogue_fired: int = 0
    rogue_ignored: int = 0

    @property
    def total(self) -> int:
        return self.horizon + self.drain


def extract_plan(sim, horizon: int, drain: int, warmup: int) -> TrialPlan:
    """Replay the release heaps into a complete request schedule.

    Read-only with respect to ``sim``: heaps are copied before popping,
    and no client rng is consumed (the only timing-relevant draw, the
    release phase, already happened at client construction; the
    read/write kind draw affects neither arbitration nor the trace).
    """
    # the heap pops entries in (release, task_index, job_index) order and
    # every task advances by a fixed period, so the full pop sequence is
    # the lexsorted union of per-task arithmetic release trains — no heap
    # needed
    rel_parts: list[np.ndarray] = []
    pos_parts: list[np.ndarray] = []
    gti_parts: list[np.ndarray] = []
    ji_parts: list[np.ndarray] = []
    t_deadline: list[int] = []
    t_wcet: list[int] = []
    t_monitored: list[bool] = []
    t_client_id: list[int] = []
    t_name: list[str] = []
    t_real: list[bool] = []
    for pos, client in enumerate(sim.clients):
        taskset = list(client.taskset)
        base = len(t_deadline)
        for task in taskset:
            t_deadline.append(task.deadline)
            t_wcet.append(task.wcet)
            t_monitored.append(
                client.monitored_tasks is None
                or task.name in client.monitored_tasks
            )
            t_client_id.append(client.client_id)
            t_name.append(task.name)
            t_real.append(True)
        for first, task_index, job_index in client._release_heap:
            if first >= horizon:
                continue
            period = taskset[task_index].period
            count = (horizon - 1 - first) // period + 1
            rel_parts.append(
                np.arange(first, horizon, period, dtype=np.int64)
            )
            pos_parts.append(np.full(count, pos, dtype=np.int64))
            gti_parts.append(
                np.full(count, base + task_index, dtype=np.int64)
            )
            ji_parts.append(
                np.arange(job_index, job_index + count, dtype=np.int64)
            )
    # rogue-burst fault events compile into pseudo-tasks: one per event,
    # one job per firing, wcet = burst magnitude, relative deadline =
    # the burst's deadline slack.  Firings targeting a port with no
    # client are counted (the scalar orchestrator's events_ignored) but
    # release nothing.  check_supported already rejected every other
    # fault kind.
    rogue_fired = 0
    rogue_ignored = 0
    events = () if sim.faults is None else sim.faults.plan.events
    if events:
        total = horizon + drain
        pos_of_id = {
            client.client_id: pos for pos, client in enumerate(sim.clients)
        }
        for event in events:
            firings = [c for c in event.action_cycles() if c < total]
            if not firings:
                continue
            target = pos_of_id.get(event.client_id)
            if target is None:
                rogue_ignored += len(firings)
                continue
            rogue_fired += len(firings)
            pseudo = len(t_deadline)
            t_deadline.append(event.deadline_slack)
            t_wcet.append(event.magnitude)
            t_monitored.append(False)
            t_client_id.append(event.client_id)
            t_name.append("!rogue")
            t_real.append(False)
            count = len(firings)
            rel_parts.append(np.asarray(firings, dtype=np.int64))
            pos_parts.append(np.full(count, target, dtype=np.int64))
            gti_parts.append(np.full(count, pseudo, dtype=np.int64))
            ji_parts.append(np.arange(count, dtype=np.int64))
    if rel_parts:
        release = np.concatenate(rel_parts)
        pos_arr = np.concatenate(pos_parts)
        gti = np.concatenate(gti_parts)
        ji = np.concatenate(ji_parts)
    else:
        release = pos_arr = gti = ji = np.zeros(0, dtype=np.int64)
    t_real_arr = np.asarray(t_real, dtype=bool) if t_real else np.zeros(0, bool)
    job_real = t_real_arr[gti]
    # global rid order: by cycle, then stage (the fault orchestrator is
    # the first tick stage, so same-cycle rogue releases precede every
    # client release; among rogue firings the action heap pops in event
    # order, which is pseudo-task append order), then client-list
    # position, then the client's own heap-pop order ((task, job)
    # within equal releases; base offsets keep the global task index
    # consistent with the local)
    sort_stage = job_real.astype(np.int64)
    sort_pos = np.where(job_real, pos_arr, 0)
    order = np.lexsort((ji, gti, sort_pos, sort_stage, release))
    release = release[order]
    pos_arr = pos_arr[order]
    gti = gti[order]
    job_real = job_real[order]
    t_deadline_arr = np.asarray(t_deadline, dtype=np.int64)
    t_wcet_arr = np.asarray(t_wcet, dtype=np.int64)
    deadline = release + t_deadline_arr[gti]
    if deadline.size and int(deadline.max()) >= KEY_SCALE:
        raise Ineligible("absolute deadline exceeds key range")
    wcet = t_wcet_arr[gti]
    n_jobs = len(release)
    starts = np.zeros(n_jobs + 1, dtype=np.int64)
    np.cumsum(wcet, out=starts[1:])
    n_requests = int(starts[-1])
    if n_requests >= KEY_SCALE:
        raise Ineligible("request count exceeds key range")
    req_job = np.repeat(np.arange(n_jobs, dtype=np.int64), wcet)
    req_deadline = deadline[req_job]
    req_key = req_deadline * KEY_SCALE + np.arange(
        n_requests, dtype=np.int64
    )
    return TrialPlan(
        horizon=horizon,
        drain=drain,
        warmup=warmup,
        n_requests=n_requests,
        n_jobs=n_jobs,
        req_key=req_key,
        req_release=release[req_job],
        req_deadline=req_deadline,
        req_client_id=np.asarray(t_client_id, dtype=np.int32)[gti][req_job],
        req_job=req_job.astype(np.int32),
        job_client_pos=pos_arr.astype(np.int32),
        job_release=release,
        job_deadline=deadline,
        job_monitored=np.asarray(t_monitored, dtype=bool)[gti],
        job_wcet=wcet.astype(np.int32),
        starts=starts,
        key_list=req_key.tolist(),
        task_names=tuple(t_name),
        job_task=gti.astype(np.int32),
        job_real=job_real,
        rogue_fired=rogue_fired,
        rogue_ignored=rogue_ignored,
    )
