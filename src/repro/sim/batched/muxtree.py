"""SoA kernel for the binary mux-tree designs.

Covers the three concrete :class:`~repro.interconnects.mux_tree`
families: BlueTree / BlueTree-Smooth (streak-based alternation) and
GSMTree TDM/FBSP (FCFS inner nodes + a TDM-slotted root with
credit-gated injection).

Layout: a *compact* FIFO per (trial, node, port) — ``buf[level]`` is
``(N, nodes_at_level, 2, fifo_capacity)`` with the head always at slot
0 and ``length`` counting live slots; a pop shifts the (tiny) window
down one slot.  A parallel ``kbuf`` carries each entry's encoded
priority key so blocking charges never gather through the rid table.
Because node order ``o`` feeds port ``o % 2`` of parent ``o // 2``,
the flattened ``(node, port)`` axis makes the parent slot of node
``o`` simply index ``o`` — pushes up the tree are direct writes, no
index arithmetic.  A cycle ticks levels root-first exactly like the
scalar ``_tick_order``; within a level every node forwards into a
*distinct* parent port, so the vectorized read-then-write is identical
to the scalar per-node sequence.
"""

from __future__ import annotations

import numpy as np

from repro.interconnects.gsmtree import GsmTreeInterconnect
from repro.sim.batched.extract import BIG


class MuxTreeKernel:
    """Lock-step tick over a batch of identical binary-tree fabrics."""

    def __init__(self, core, sims) -> None:
        self.core = core
        ic = sims[0].interconnect
        topo = ic.topology
        self.depth = topo.depth
        self.f = ic.fifo_capacity
        n = core.n
        self.n = n
        # per-level node counts (orders are a contiguous prefix)
        counts = [0] * (topo.depth + 1)
        for level, order in topo.all_nodes():
            counts[level] = max(counts[level], order + 1)
        self.counts = counts
        self.buf = [
            np.zeros((n, m, 2, self.f), dtype=np.int64) for m in counts
        ]
        # empty key slots hold the BIG sentinel: charges and head reads
        # then need no occupancy mask at all
        self.kbuf = [
            np.full((n, m, 2, self.f), BIG, dtype=np.int64) for m in counts
        ]
        self.length = [np.zeros((n, m, 2), dtype=np.int64) for m in counts]
        # flattened (node, port) views sharing memory with the above:
        # flat index o at level l is port o % 2 of node o // 2, i.e.
        # exactly where level l+1's node order o forwards to
        self.fbuf = [b.reshape(n, -1, self.f) for b in self.buf]
        self.fkbuf = [b.reshape(n, -1, self.f) for b in self.kbuf]
        self.flen = [le.reshape(n, -1) for le in self.length]
        #: scalar request count per level — skips empty levels without
        #: an array scan (matters for the drain tail)
        self.occ = [0] * (topo.depth + 1)
        self._n_idx = np.arange(n)
        self._off = np.arange(self.f, dtype=np.int64)
        if isinstance(ic, GsmTreeInterconnect):
            self.variant = "fcfs"
            self.alpha = 0
            self.streak = None
            self.slot = ic.slot_cycles
            self.flen_frame = len(ic.frame)
            self.cap = ic.CREDIT_CAP
            self.frame = np.asarray(
                [sim.interconnect.frame for sim in sims], dtype=np.int64
            )
            self.credits = np.full(
                (n, core.n_ports), self.cap, dtype=np.int64
            )
        else:
            self.variant = "streak"
            self.alpha = ic.alpha
            self.streak = [np.zeros((n, m), dtype=np.int64) for m in counts]
            self.frame = None
            self.credits = None

    # -- client ingress ------------------------------------------------------

    def begin_cycle(self, cycle: int, active: np.ndarray) -> None:
        if self.credits is None or cycle % self.slot:
            return
        # one credit (capped) to the owner of the slot starting now —
        # the dense form of the scalar's lazy _refresh_credits
        owner = self.frame[
            self._n_idx, (cycle // self.slot) % self.flen_frame
        ]
        current = self.credits[self._n_idx, owner]
        self.credits[self._n_idx, owner] = np.minimum(self.cap, current + 1)

    def inject_space(self, cycle: int) -> np.ndarray:
        space = self.flen[self.depth][:, self.core.client_ids] < self.f
        if self.credits is not None:
            space = space & (self.credits[:, self.core.client_ids] >= 1)
        return space

    def accept(self, cycle, trials, cols, rids) -> None:
        level = self.depth
        ids = self.core.client_ids[cols]
        length = self.flen[level]
        at = length[trials, ids]
        self.fbuf[level][trials, ids, at] = rids
        self.fkbuf[level][trials, ids, at] = self.core.key[trials, rids]
        length[trials, ids] += 1
        self.occ[level] += len(trials)
        if self.credits is not None:
            self.credits[trials, ids] -= 1

    # -- fabric tick ---------------------------------------------------------

    def tick(self, cycle: int, active: np.ndarray) -> None:
        for level in range(self.depth + 1):
            if not self.occ[level]:
                continue
            if level == 0 and self.variant == "fcfs":
                self._tick_tdm_root(cycle, active)
            else:
                self._tick_level(cycle, active, level)

    def _tick_level(self, cycle: int, active: np.ndarray, level: int) -> None:
        buf = self.buf[level]
        length = self.length[level]
        has0 = length[..., 0] > 0
        has1 = length[..., 1] > 0
        occupied = has0 | has1
        heads = buf[..., 0]
        if self.variant == "streak":
            alt = (self.streak[level] >= self.alpha).astype(np.int64)
        else:
            # FCFS: older (lower-rid) head wins when both sides wait
            alt = (heads[..., 0] > heads[..., 1]).astype(np.int64)
        port = np.where(has0 & has1, alt, np.where(has0, 0, 1))
        m = self.counts[level]
        if level > 0:
            space = self.flen[level - 1][:, :m] < self.f
        else:
            space = self.core.provider_space()[:, None]
        tt, nn = np.nonzero(occupied & active[:, None] & space)
        if not len(tt):
            return
        pp = port[tt, nn]
        kbuf = self.kbuf[level]
        rids = buf[tt, nn, pp, 0]
        keys = kbuf[tt, nn, pp, 0]
        buf[tt, nn, pp, : self.f - 1] = buf[tt, nn, pp, 1:]
        kbuf[tt, nn, pp, : self.f - 1] = kbuf[tt, nn, pp, 1:]
        kbuf[tt, nn, pp, self.f - 1] = BIG
        length[tt, nn, pp] -= 1
        self.occ[level] -= len(tt)
        if self.variant == "streak":
            streak = self.streak[level]
            streak[tt, nn] = np.where(pp == 0, streak[tt, nn] + 1, 0)
        if level > 0:
            up_length = self.flen[level - 1]
            at = up_length[tt, nn]
            self.fbuf[level - 1][tt, nn, at] = rids
            self.fkbuf[level - 1][tt, nn, at] = keys
            up_length[tt, nn] += 1
            self.occ[level - 1] += len(tt)
        else:
            self.core.enqueue_provider(tt, rids, keys)
        self._charge(level, tt, nn, keys)

    def _tick_tdm_root(self, cycle: int, active: np.ndarray) -> None:
        f = self.f
        buf = self.buf[0][:, 0]
        kbuf = self.kbuf[0][:, 0]
        length = self.length[0][:, 0]
        n_idx = self._n_idx
        owner = self.frame[n_idx, (cycle // self.slot) % self.flen_frame]
        off = self._off
        valid = off[None, None, :] < length[..., None]
        cid = self.core.rclient[
            n_idx[:, None, None], np.where(valid, buf, 0)
        ]
        match = valid & (cid == owner[:, None, None])
        encoded = np.where(match, buf, BIG)
        flat = encoded.reshape(self.n, 2 * f)
        pos = np.argmin(flat, axis=1)
        winner = flat[n_idx, pos]
        found = winner < BIG
        tt = np.nonzero(found & active & self.core.provider_space())[0]
        if len(tt):
            fifo = pos[tt] // f
            at = pos[tt] % f
            rids = winner[tt]
            keys = kbuf[tt, fifo, at]
            # middle removal: close the gap by shifting the tail down
            take = np.minimum(
                off[None, :] + (off[None, :] >= at[:, None]), f - 1
            )
            buf[tt, fifo] = np.take_along_axis(buf[tt, fifo], take, axis=1)
            kbuf[tt, fifo] = np.take_along_axis(
                kbuf[tt, fifo], take, axis=1
            )
            kbuf[tt, fifo, f - 1] = BIG
            length[tt, fifo] -= 1
            self.occ[0] -= len(tt)
            self.core.enqueue_provider(tt, rids, keys)
            self._charge(0, tt, np.zeros(len(tt), dtype=np.int64), keys)
        # trials whose slot owner has nothing queued fall back to plain
        # FCFS arbitration; an owner match that failed to forward
        # (controller full) is a complete no-op, exactly like the scalar
        fallback = active & ~found
        if fallback.any() and self.occ[0]:
            self._tick_level(cycle, fallback, 0)

    def _charge(self, level, tt, nn, winner_key) -> None:
        keys = self.kbuf[level][tt, nn]  # (K, 2, F); empty slots = BIG
        charge = keys < winner_key[:, None, None]
        if charge.any():
            window = self.buf[level][tt, nn]
            tb = np.broadcast_to(tt[:, None, None], charge.shape)
            self.core.blocking[tb[charge], window[charge]] += 1
