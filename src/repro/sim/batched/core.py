"""The lock-step batch driver shared by all interconnect kernels.

`BatchCore` owns everything that is *not* the interconnect fabric:

* per-request tables padded to ``(N, Rmax)`` — encoded priority keys,
  accumulated blocking cycles, completion cycles,
* the per-(trial, client) pending queues — a hybrid layout with Python
  heaps holding the encoded keys (mutated only at releases and accepted
  injections) mirrored by dense ``head_key`` / ``pending_len`` arrays
  for vectorized injection gating,
* the FCFS fixed-latency memory controller as a ring queue over the
  trial axis, and
* the response path as a modular ring of size ``latency + 2`` (at most
  one completion per cycle per trial, constant per-design latency, so
  at most one delivery per cycle per trial).

Each cycle replays the scalar engine's stage order exactly: client
releases + injections (rogue-burst releases compiled into the plan
land *before* client releases of the same cycle, like the scalar
faults stage), fabric (root-first, delegated to the kernel),
controller, response delivery.  The result assembly mirrors
``SoCSimulation._collect`` bit for bit — same trace-record bytes into
the same sha256, same recorder streams, same job-outcome fold, same
conservation check — and additionally writes the per-client job
ledgers (``client.jobs``, ``max_response_by_task``, ``max_blocking``,
release/drop counters) and the fault orchestrator's rogue counters
back onto the simulation objects, so downstream consumers that read
clients directly (the isolation experiment's
:func:`~repro.faults.verify.verify_isolation`) see the same state a
scalar run would leave behind.  Issue-queue internals
(``client._pending`` / ``_job_of_request``) are *not* reconstructed:
requests still in flight at the end of a trial stay accounted in
``TrialResult.requests_in_flight`` only.
"""

from __future__ import annotations

import hashlib
import heapq

import numpy as np

from repro.clients.traffic_generator import JobRecord
from repro.errors import SimulationError
from repro.sim.batched.extract import BIG, RID_MASK, TrialPlan
from repro.soc import TrialResult

#: ``head_key`` sentinel for an empty pending queue
EMPTY = np.int64(BIG)


class BatchCore:
    """State and driver for one group of structurally-identical trials."""

    def __init__(self, sims, plans: list[TrialPlan]) -> None:
        self.sims = sims
        self.plans = plans
        n = len(sims)
        self.n = n
        clients = sims[0].clients
        self.n_ports = sims[0].interconnect.n_clients
        c = len(clients)
        self.n_clients = c
        self.client_ids = np.asarray(
            [client.client_id for client in clients], dtype=np.int64
        )
        self.intervals = np.asarray(
            [getattr(client, "_inject_interval", 1) for client in clients],
            dtype=np.int64,
        )
        self.pending_caps = [client.pending_capacity for client in clients]
        rmax = max(1, max(plan.n_requests for plan in plans))
        self.rmax = rmax
        # padded request tables (rows beyond a trial's own request count
        # are never addressed: every rid flowing through the arrays was
        # released by its own trial)
        self.key = np.zeros((n, rmax), dtype=np.int64)
        self.rclient = np.zeros((n, rmax), dtype=np.int64)
        for t, plan in enumerate(plans):
            r = plan.n_requests
            self.key[t, :r] = plan.req_key
            self.rclient[t, :r] = plan.req_client_id
        self.blocking = np.zeros((n, rmax), dtype=np.int64)
        self.complete = np.full((n, rmax), -1, dtype=np.int64)
        self.horizon = np.asarray([plan.horizon for plan in plans], np.int64)
        self.total = np.asarray([plan.total for plan in plans], np.int64)
        self.max_total = int(self.total.max())
        # pending queues
        self.heaps = [[[] for _ in range(c)] for _ in range(n)]
        self.head_key = np.full((n, c), EMPTY, dtype=np.int64)
        self.pending_len = np.zeros((n, c), dtype=np.int64)
        self.last_inject = np.full((n, c), -1, dtype=np.int64)
        for j, client in enumerate(clients):
            last = getattr(client, "_last_inject", None)
            if last is not None:
                self.last_inject[:, j] = last
        self.live = np.zeros(n, dtype=np.int64)
        self.live_total = 0
        self.total_pending = 0
        self.hmin = int(self.horizon.min())
        self.hmax = int(self.horizon.max())
        self.all_interval1 = bool(
            (self.intervals == 1).all() and (self.last_inject < 0).all()
        )
        self.dropped = np.zeros(n, dtype=np.int64)
        self.delivered = np.zeros(n, dtype=np.int64)
        self.job_dropped = [
            np.zeros(plan.n_jobs, dtype=np.int64) for plan in plans
        ]
        # merged release schedule: all trials' jobs, stably sorted by
        # release cycle (per-trial order is preserved; trials are
        # independent so the cross-trial order is immaterial), consumed
        # by a single advancing pointer
        all_rel = np.concatenate(
            [plan.job_release for plan in plans]
        )
        all_t = np.concatenate(
            [
                np.full(plan.n_jobs, t, dtype=np.int64)
                for t, plan in enumerate(plans)
            ]
        )
        all_pos = np.concatenate(
            [plan.job_client_pos.astype(np.int64) for plan in plans]
        )
        all_job = np.concatenate(
            [np.arange(plan.n_jobs, dtype=np.int64) for plan in plans]
        )
        all_s = np.concatenate([plan.starts[:-1] for plan in plans])
        all_e = np.concatenate([plan.starts[1:] for plan in plans])
        order = np.argsort(all_rel, kind="stable")
        self.ev_rel = all_rel[order].tolist()
        self.ev_t = all_t[order].tolist()
        self.ev_pos = all_pos[order].tolist()
        self.ev_job = all_job[order].tolist()
        self.ev_s = all_s[order].tolist()
        self.ev_e = all_e[order].tolist()
        self.ev_ptr = 0
        self.pending_events = len(self.ev_rel)
        self.key_lists = [plan.key_list for plan in plans]
        # memory controller (FCFS compact queue, fixed service cost; a
        # parallel key column avoids gathers for the blocking charge)
        mc = sims[0].controller
        self.mc_cost = mc.device.cycles_per_access
        self.qcap = mc.queue_capacity
        self.queue = np.zeros((n, self.qcap), dtype=np.int64)
        self.qkeys = np.full((n, self.qcap), EMPTY, dtype=np.int64)
        self.q_len = np.zeros(n, dtype=np.int64)
        self.total_queued = 0
        self.serving = np.full(n, -1, dtype=np.int64)
        self.serving_key = np.full(n, EMPTY, dtype=np.int64)
        self.serving_count = 0
        self.remaining = np.zeros(n, dtype=np.int64)
        # response ring
        self.latency = sims[0].interconnect.response_latency(
            clients[0].client_id
        )
        self.ring_size = self.latency + 2
        self.ring = np.full((n, self.ring_size), -1, dtype=np.int64)

    # -- provider interface for the kernels ---------------------------------

    def provider_space(self) -> np.ndarray:
        """(N,) bool — can the controller accept a request this cycle?"""
        return self.q_len < self.qcap

    def enqueue_provider(self, trials, rids, keys) -> None:
        """Root forward into the controller queue (at most one/trial)."""
        pos = self.q_len[trials]
        self.queue[trials, pos] = rids
        self.qkeys[trials, pos] = keys
        self.q_len[trials] += 1
        self.total_queued += len(trials)

    # -- per-cycle stages ----------------------------------------------------

    def _stage_releases(self, cycle: int) -> None:
        ptr = self.ev_ptr
        ev_rel = self.ev_rel
        if ptr >= len(ev_rel) or ev_rel[ptr] != cycle:
            return
        ev_t, ev_pos = self.ev_t, self.ev_pos
        ev_s, ev_e, ev_job = self.ev_s, self.ev_e, self.ev_job
        head_key = self.head_key
        pending_len = self.pending_len
        heappush = heapq.heappush
        while ptr < len(ev_rel) and ev_rel[ptr] == cycle:
            t = ev_t[ptr]
            pos = ev_pos[ptr]
            heap = self.heaps[t][pos]
            keys = self.key_lists[t][ev_s[ptr] : ev_e[ptr]]
            free = self.pending_caps[pos] - len(heap)
            accepted = len(keys) if len(keys) <= free else max(0, free)
            dropped = len(keys) - accepted
            for key in keys[:accepted]:
                heappush(heap, key)
            if dropped:
                self.dropped[t] += dropped
                self.job_dropped[t][ev_job[ptr]] += dropped
            self.total_pending += accepted
            if heap:
                head_key[t, pos] = heap[0]
                pending_len[t, pos] = len(heap)
            ptr += 1
        self.pending_events -= ptr - self.ev_ptr
        self.ev_ptr = ptr

    def _stage_injections(self, cycle: int, kernel) -> None:
        if not self.total_pending or cycle >= self.hmax:
            return
        mask = self.head_key != EMPTY
        if cycle >= self.hmin:
            mask &= (cycle < self.horizon)[:, None]
        if not self.all_interval1:
            mask &= cycle - self.last_inject >= self.intervals
        mask &= kernel.inject_space(cycle)
        trials, cols = np.nonzero(mask)
        if not len(trials):
            return
        heaps = self.heaps
        heappop = heapq.heappop
        empty = int(EMPTY)
        popped = []
        new_heads = []
        for t, j in zip(trials.tolist(), cols.tolist()):
            heap = heaps[t][j]
            popped.append(heappop(heap))
            new_heads.append(heap[0] if heap else empty)
        rids = np.asarray(popped, dtype=np.int64) & RID_MASK
        # unique (trial, col) pairs — plain fancy scatters are safe
        self.head_key[trials, cols] = new_heads
        self.pending_len[trials, cols] -= 1
        if not self.all_interval1:
            self.last_inject[trials, cols] = cycle
        self.total_pending -= len(trials)
        self.live_total += len(trials)
        # several clients of one trial may inject in the same cycle —
        # accumulate, don't fancy-assign
        np.add.at(self.live, trials, 1)
        kernel.accept(cycle, trials, cols, rids)

    def _stage_controller(self, cycle: int, active: np.ndarray) -> None:
        if not self.total_queued and not self.serving_count:
            return
        # pick: idle controller with a queued request starts service
        if self.total_queued:
            t = np.nonzero(active & (self.serving < 0) & (self.q_len > 0))[0]
            if len(t):
                self.serving[t] = self.queue[t, 0]
                self.serving_key[t] = self.qkeys[t, 0]
                self.queue[t, : self.qcap - 1] = self.queue[t, 1:]
                self.qkeys[t, : self.qcap - 1] = self.qkeys[t, 1:]
                self.qkeys[t, self.qcap - 1] = EMPTY
                self.q_len[t] -= 1
                self.total_queued -= len(t)
                self.remaining[t] = self.mc_cost
                self.serving_count += len(t)
        if not self.serving_count:
            return
        busy = active & (self.serving >= 0)
        # queued requests with a smaller key than the one in service
        # accrue one blocking cycle (the scalar controller's charge);
        # empty queue slots hold the EMPTY sentinel and never charge
        if self.total_queued:
            t = np.nonzero(busy & (self.q_len > 0))[0]
            if len(t):
                charge = self.qkeys[t] < self.serving_key[t][:, None]
                if charge.any():
                    tb = np.broadcast_to(t[:, None], charge.shape)
                    self.blocking[tb[charge], self.queue[t][charge]] += 1
        self.remaining[busy] -= 1
        done = busy & (self.remaining == 0)
        if done.any():
            t = np.nonzero(done)[0]
            slot = (cycle + 1 + self.latency) % self.ring_size
            self.ring[t, slot] = self.serving[t]
            self.serving[t] = -1
            self.serving_key[t] = EMPTY
            self.serving_count -= len(t)

    def _stage_responses(self, cycle: int, active: np.ndarray) -> None:
        if not self.live_total:
            return
        slot = cycle % self.ring_size
        rids = self.ring[:, slot]
        t = np.nonzero(active & (rids >= 0))[0]
        if not len(t):
            return
        self.complete[t, rids[t]] = cycle
        self.ring[t, slot] = -1
        self.live[t] -= 1
        self.live_total -= len(t)
        self.delivered[t] += 1

    # -- driver --------------------------------------------------------------

    def run(self, kernel) -> None:
        total = self.total
        for cycle in range(self.max_total):
            active = cycle < total
            kernel.begin_cycle(cycle, active)
            self._stage_releases(cycle)
            self._stage_injections(cycle, kernel)
            kernel.tick(cycle, active)
            self._stage_controller(cycle, active)
            self._stage_responses(cycle, active)
            if (
                self.pending_events == 0
                and not self.live_total
                and not self.total_pending
            ):
                break

    # -- result assembly -----------------------------------------------------

    def finalize(self, t: int) -> TrialResult:
        sim = self.sims[t]
        plan = self.plans[t]
        r = plan.n_requests
        complete = self.complete[t, :r]
        done = np.nonzero(complete >= 0)[0]
        # delivery order == completion-cycle order (one per cycle)
        order = done[np.argsort(complete[done], kind="stable")]
        complete_cycles = complete[order]
        blocking = self.blocking[t, order]
        release = plan.req_release[order]
        deadline = plan.req_deadline[order]
        client_id = plan.req_client_id[order]
        hasher = hashlib.sha256()
        hasher.update(
            "".join(
                f"{rid},{cid},{rel},{comp},{blk};"
                for rid, cid, rel, comp, blk in zip(
                    order.tolist(),
                    client_id.tolist(),
                    release.tolist(),
                    complete_cycles.tolist(),
                    blocking.tolist(),
                )
            ).encode()
        )
        recorder = sim.recorder
        kept = complete_cycles >= plan.warmup
        met = complete_cycles <= deadline
        recorder.response_times.extend((complete_cycles - release)[kept].tolist())
        recorder.blocking_times.extend(blocking[kept].tolist())
        recorder.completed += int(kept.sum())
        recorder.missed += int((~met[kept]).sum())
        dropped = int(self.dropped[t])
        for _ in range(dropped):
            recorder.record_drop()
        # conservation (mirrors SoCSimulation._collect)
        released = plan.n_requests
        completed = len(order)
        in_flight = int(self.live[t]) + int(self.pending_len[t].sum())
        if completed + dropped + in_flight != released:
            raise SimulationError(
                "request conservation violated: "
                f"released={released}, completed={completed}, "
                f"dropped={dropped}, in_flight={in_flight}"
            )
        # job outcomes
        jobs = plan.n_jobs
        completed_per_job = np.bincount(
            plan.req_job[order], minlength=jobs
        ).astype(np.int64)
        last_completion = np.full(jobs, -1, dtype=np.int64)
        np.maximum.at(last_completion, plan.req_job[order], complete_cycles)
        outstanding = (
            plan.job_wcet.astype(np.int64)
            - completed_per_job
            - self.job_dropped[t]
        )
        met_job = (
            (outstanding == 0)
            & (self.job_dropped[t] == 0)
            & (last_completion <= plan.job_deadline)
        )
        judged = plan.job_monitored & (plan.job_deadline <= plan.horizon)
        judged_per = np.bincount(
            plan.job_client_pos[judged], minlength=self.n_clients
        )
        missed_per = np.bincount(
            plan.job_client_pos[judged & ~met_job], minlength=self.n_clients
        )
        job_outcomes = {
            client.client_id: (int(judged_per[pos]), int(missed_per[pos]))
            for pos, client in enumerate(sim.clients)
        }
        self._write_back_ledgers(
            sim, plan, t, order, complete_cycles, blocking,
            outstanding, last_completion,
        )
        total = plan.total
        sim.cycles_executed = total
        sim.cycles_skipped = 0
        sim.leaps = 0
        sim.clock.now = total
        fault_counters = self._fault_counters(sim, plan, t)
        return TrialResult(
            horizon=plan.horizon,
            recorder=recorder,
            job_outcomes=job_outcomes,
            requests_released=released,
            requests_completed=completed,
            requests_dropped=dropped,
            requests_in_flight=in_flight,
            cycles_executed=total,
            cycles_skipped=0,
            trace_digest=hasher.hexdigest(),
            fault_counters=fault_counters,
        )

    def _fault_counters(self, sim, plan: TrialPlan, t: int) -> dict:
        """Rebuild the orchestrator's ledger for compiled rogue plans.

        The orchestrator never executed (its bursts were compiled into
        the release schedule), so its counters would read zero; the
        batch knows exactly what the scalar run would have recorded:
        every firing applied (or ignored for a missing target), and
        every burst transaction released with capacity overflows
        dropped.  The counts are written back onto ``sim.faults`` so
        the object reads like a post-run scalar orchestrator.
        """
        fo = sim.faults
        if fo is None:
            return {}
        if not fo.plan.empty:
            rogue = ~plan.job_real
            attempted = int(plan.job_wcet[rogue].sum())
            dropped = int(self.job_dropped[t][rogue].sum())
            fo.rogue_requests = attempted - dropped
            fo.events_applied = plan.rogue_fired
            fo.events_ignored = plan.rogue_ignored
        return fo.counters()

    def _write_back_ledgers(
        self,
        sim,
        plan: TrialPlan,
        t: int,
        order: np.ndarray,
        complete_cycles: np.ndarray,
        blocking: np.ndarray,
        outstanding: np.ndarray,
        last_completion: np.ndarray,
    ) -> None:
        """Leave each client looking like the scalar run finished on it.

        Reconstructs the per-client job ledgers the scalar response
        path and release loop maintain incrementally: ``jobs`` (one
        :class:`JobRecord` per *declared* job, in release order —
        rogue pseudo-jobs carry no record, exactly like
        ``inject_rogue_burst``), the release/drop counters, and the
        worst-case observables ``max_response_by_task`` /
        ``max_blocking`` the isolation harness compares against the
        analytical bounds.  Client rng state and issue-queue internals
        (``_pending`` / ``_job_of_request``) are not touched — neither
        affects any recorded outcome.
        """
        c = self.n_clients
        job_dropped = self.job_dropped[t]
        released = np.zeros(c, dtype=np.int64)
        np.add.at(released, plan.job_client_pos, plan.job_wcet)
        dropped = np.zeros(c, dtype=np.int64)
        np.add.at(dropped, plan.job_client_pos, job_dropped)
        # worst observed response per task / blocking per client, over
        # every completion (the scalar hooks ignore the warmup window)
        req_job_done = plan.req_job[order]
        task_resp = np.full(len(plan.task_names), -1, dtype=np.int64)
        blk_max = np.zeros(c, dtype=np.int64)
        if len(order):
            responses = complete_cycles - plan.req_release[order]
            np.maximum.at(task_resp, plan.job_task[req_job_done], responses)
            np.maximum.at(
                blk_max, plan.job_client_pos[req_job_done], blocking
            )
        task_pos = np.zeros(len(plan.task_names), dtype=np.int64)
        task_pos[plan.job_task] = plan.job_client_pos
        per_client_jobs: list[list[JobRecord]] = [[] for _ in range(c)]
        jpos = plan.job_client_pos.tolist()
        jtask = plan.job_task.tolist()
        jrel = plan.job_release.tolist()
        jdl = plan.job_deadline.tolist()
        jmon = plan.job_monitored.tolist()
        jout = outstanding.tolist()
        jlast = last_completion.tolist()
        jdrop = job_dropped.tolist()
        names = plan.task_names
        for j in np.nonzero(plan.job_real)[0].tolist():
            per_client_jobs[jpos[j]].append(
                JobRecord(
                    task_name=names[jtask[j]],
                    release=jrel[j],
                    deadline=jdl[j],
                    outstanding=jout[j],
                    monitored=jmon[j],
                    last_completion=jlast[j],
                    dropped=jdrop[j],
                )
            )
        clients = sim.clients
        for pos, client in enumerate(clients):
            client.jobs = per_client_jobs[pos]
            client.released_jobs = len(per_client_jobs[pos])
            client.released_requests = int(released[pos])
            client.dropped_requests = int(dropped[pos])
            client.max_blocking = int(blk_max[pos])
        for k in np.nonzero(task_resp >= 0)[0].tolist():
            # distinct rogue pseudo-tasks of one client share the
            # "!rogue" name; merge via max like the scalar dict update
            table = clients[task_pos[k]].max_response_by_task
            name = names[k]
            if int(task_resp[k]) > table.get(name, -1):
                table[name] = int(task_resp[k])
