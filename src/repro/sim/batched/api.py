"""`run_many`: the public entry point of the batched SoA backend.

Groups structurally-identical simulations (same design, geometry and
client roster — per-trial workloads, budgets and horizons may differ),
compiles each into a :class:`~repro.sim.batched.extract.TrialPlan` and
advances the whole group in lock-step.  Anything the kernels cannot
represent — tracing, fault plans beyond pure rogue bursts, exotic
controllers or clients — transparently falls back to ``sim.run`` on
the scalar engine, so callers always get the full result list in
input order, bit-identical to running each trial on the scalar engine.
"""

from __future__ import annotations

import numbers
from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.backend import resolve_sim_backend
from repro.sim.batched.extract import (
    Ineligible,
    extract_plan,
    signature_of,
)
from repro.soc import SoCSimulation, TrialResult

#: lock-step group size cap — bounds the (N, Rmax) array footprint
MAX_GROUP = 512


def _coerce_cycles(value):
    """Normalise one horizon/drain/warmup value to a plain int.

    Campaign grids routinely hand over numpy scalars (``np.int64``),
    which are Integral but not ``int``; ``bool`` is Integral too but a
    True/False cycle count is always a bug, so it is rejected.
    """
    if isinstance(value, bool):
        raise ConfigurationError(
            f"cycle counts must be integers, got bool {value!r}"
        )
    if isinstance(value, numbers.Integral):
        return int(value)
    return value


def _per_trial(value, n: int, default=None) -> list:
    if value is None:
        return [default] * n
    value = _coerce_cycles(value)
    if isinstance(value, int):
        return [value] * n
    values = [None if v is None else _coerce_cycles(v) for v in value]
    if len(values) != n:
        raise ConfigurationError(
            f"expected {n} per-trial values, got {len(values)}"
        )
    return values


def _make_kernel(core, sims):
    ic = sims[0].interconnect
    from repro.core.interconnect import BlueScaleInterconnect
    from repro.interconnects.axi_icrt import AxiIcRtInterconnect

    if isinstance(ic, AxiIcRtInterconnect):
        from repro.sim.batched.axi import AxiKernel

        return AxiKernel(core, sims)
    if isinstance(ic, BlueScaleInterconnect):
        from repro.sim.batched.bluescale import BlueScaleKernel

        return BlueScaleKernel(core, sims)
    from repro.sim.batched.muxtree import MuxTreeKernel

    return MuxTreeKernel(core, sims)


def _run_group(sims, plans) -> list[TrialResult]:
    from repro.sim.batched.core import BatchCore

    core = BatchCore(sims, plans)
    kernel = _make_kernel(core, sims)
    core.run(kernel)
    return [core.finalize(t) for t in range(len(sims))]


def run_many(
    sims: Sequence[SoCSimulation],
    horizon,
    drain=None,
    warmup=0,
    backend: str | None = None,
) -> list[TrialResult]:
    """Run many independent simulations; results in input order.

    ``horizon``/``drain``/``warmup`` accept a single int applied to
    every trial or one value per trial (ragged batches are fine —
    shorter trials simply freeze while the rest drain).
    """
    sims = list(sims)
    n = len(sims)
    horizons = _per_trial(horizon, n)
    drains = _per_trial(drain, n)
    warmups = _per_trial(warmup, n, default=0)
    for i in range(n):
        if horizons[i] is None or horizons[i] <= 0:
            raise ConfigurationError(
                f"horizon must be positive, got {horizons[i]}"
            )
        if not 0 <= warmups[i] < horizons[i]:
            raise ConfigurationError(
                f"warmup must lie within [0, horizon), got {warmups[i]}"
            )
        if drains[i] is None:
            drains[i] = min(4 * horizons[i], 20_000)
    if resolve_sim_backend(backend) == "scalar":
        return [
            sim.run(horizons[i], drain=drains[i], warmup=warmups[i])
            for i, sim in enumerate(sims)
        ]
    results: list[TrialResult | None] = [None] * n
    groups: dict[tuple, list[int]] = {}
    for i, sim in enumerate(sims):
        try:
            signature = signature_of(sim)
        except Ineligible:
            results[i] = sim.run(
                horizons[i], drain=drains[i], warmup=warmups[i]
            )
            continue
        groups.setdefault(signature, []).append(i)
    for indices in groups.values():
        for lo in range(0, len(indices), MAX_GROUP):
            chunk = indices[lo : lo + MAX_GROUP]
            members: list[int] = []
            plans = []
            for i in chunk:
                try:
                    plans.append(
                        extract_plan(
                            sims[i], horizons[i], drains[i], warmups[i]
                        )
                    )
                    members.append(i)
                except Ineligible:
                    results[i] = sims[i].run(
                        horizons[i], drain=drains[i], warmup=warmups[i]
                    )
            if members:
                batch = _run_group([sims[i] for i in members], plans)
                for i, result in zip(members, batch):
                    results[i] = result
    return results
