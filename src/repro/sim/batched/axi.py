"""SoA kernel for the AXI IC^RT baseline.

Compact per-client FIFOs ``(N, ports, fifo_capacity)`` (head at slot
0), a shared-bus pipeline ring per trial, and per-(trial, client)
token pools for the optional bandwidth regulation.  The scalar
engine's lazy token refill (``cycle >= _next_refill``) ticks every
cycle on the slow path, which is exactly the dense
``cycle % window == 0`` refill used here.
"""

from __future__ import annotations

import numpy as np

from repro.sim.batched.extract import BIG


class AxiKernel:
    def __init__(self, core, sims) -> None:
        self.core = core
        ic = sims[0].interconnect
        n = core.n
        ports = core.n_ports
        self.ports = ports
        self.f = ic.fifo_capacity
        self.lat = ic.pipeline_latency
        self.interval = ic.arbitration_interval
        self.window = ic._window
        self.fbuf = np.zeros((n, ports, self.f), dtype=np.int64)
        # empty key slots hold the BIG sentinel: arbitration and charges
        # then need no occupancy mask at all
        self.kbuf = np.full((n, ports, self.f), BIG, dtype=np.int64)
        self.f_len = np.zeros((n, ports), dtype=np.int64)
        self.occ = 0
        self.pcap = core.rmax + 1
        self.rid_ring = np.zeros((n, self.pcap), dtype=np.int64)
        self.key_ring = np.zeros((n, self.pcap), dtype=np.int64)
        self.exit_ring = np.zeros((n, self.pcap), dtype=np.int64)
        self.p_start = np.zeros(n, dtype=np.int64)
        self.p_len = np.zeros(n, dtype=np.int64)
        if self.window is not None:
            self.budgets = np.asarray(
                [sim.interconnect._budgets for sim in sims], dtype=np.int64
            )
            self.tokens = self.budgets.copy()
        else:
            self.budgets = self.tokens = None
        self._n_idx = np.arange(n)

    def begin_cycle(self, cycle: int, active: np.ndarray) -> None:
        pass

    def inject_space(self, cycle: int) -> np.ndarray:
        return self.f_len[:, self.core.client_ids] < self.f

    def accept(self, cycle, trials, cols, rids) -> None:
        ports = self.core.client_ids[cols]
        at = self.f_len[trials, ports]
        self.fbuf[trials, ports, at] = rids
        self.kbuf[trials, ports, at] = self.core.key[trials, rids]
        self.f_len[trials, ports] += 1
        self.occ += len(trials)

    def tick(self, cycle: int, active: np.ndarray) -> None:
        if self.window is not None and cycle % self.window == 0:
            np.copyto(self.tokens, self.budgets, where=active[:, None])
        # pipeline exit: one head per cycle, gated on controller space
        if self.p_len.any():
            exits = (
                (self.p_len > 0)
                & (self.exit_ring[self._n_idx, self.p_start] <= cycle)
                & self.core.provider_space()
                & active
            )
            tt = np.nonzero(exits)[0]
            if len(tt):
                at = self.p_start[tt]
                rids = self.rid_ring[tt, at]
                keys = self.key_ring[tt, at]
                self.p_start[tt] = (at + 1) % self.pcap
                self.p_len[tt] -= 1
                self.core.enqueue_provider(tt, rids, keys)
        if self.interval > 1 and cycle % self.interval:
            return
        if not self.occ:
            return
        heads = self.fbuf[..., 0]
        if self.window is not None:
            encoded = np.where(self.tokens > 0, self.kbuf[..., 0], BIG)
        else:
            encoded = self.kbuf[..., 0]
        best = np.argmin(encoded, axis=1)
        best_key = encoded[self._n_idx, best]
        tt = np.nonzero((best_key < BIG) & active)[0]
        if not len(tt):
            return
        port = best[tt]
        rids = heads[tt, port]
        self.fbuf[tt, port, : self.f - 1] = self.fbuf[tt, port, 1:]
        self.kbuf[tt, port, : self.f - 1] = self.kbuf[tt, port, 1:]
        self.kbuf[tt, port, self.f - 1] = BIG
        self.f_len[tt, port] -= 1
        self.occ -= len(tt)
        if self.window is not None:
            self.tokens[tt, port] -= 1
        pos = (self.p_start[tt] + self.p_len[tt]) % self.pcap
        self.rid_ring[tt, pos] = rids
        self.key_ring[tt, pos] = best_key[tt]
        self.exit_ring[tt, pos] = cycle + self.lat
        self.p_len[tt] += 1
        self._charge(tt, best_key[tt])

    def _charge(self, tt, winner_key) -> None:
        # eligibility is evaluated *after* the winner's token was spent
        keys = self.kbuf[tt]  # (K, ports, F); empty slots = BIG
        charge = keys < winner_key[:, None, None]
        if self.window is not None:
            charge &= (self.tokens[tt] > 0)[..., None]
        if charge.any():
            window = self.fbuf[tt]
            tb = np.broadcast_to(tt[:, None, None], charge.shape)
            self.core.blocking[tb[charge], window[charge]] += 1
